#include "datasets/eqsat_grown.hpp"

#include <string>

#include "check/contracts.hpp"
#include "eqsat/mut_egraph.hpp"
#include "eqsat/rules.hpp"

namespace smoothe::datasets {

using eqsat::TermPtr;

namespace {

/**
 * "v<index>", built by append rather than `"v" + std::to_string(...)`:
 * the operator+(const char*, string&&) insert path trips GCC 12's
 * -Wrestrict false positive (GCC PR 105329) under -O2 -Werror.
 */
std::string
varName(std::size_t index)
{
    std::string name = "v";
    name += std::to_string(index);
    return name;
}

TermPtr
randomArithTerm(std::size_t depth, std::size_t num_vars, util::Rng& rng)
{
    if (depth == 0 || rng.bernoulli(0.25)) {
        // Leaf: variable or small constant.
        const double pick = rng.uniform();
        if (pick < 0.6) {
            return eqsat::leaf(varName(rng.uniformIndex(num_vars)));
        }
        if (pick < 0.75)
            return eqsat::leaf("zero");
        if (pick < 0.9)
            return eqsat::leaf("one");
        return eqsat::leaf("two");
    }
    const double pick = rng.uniform();
    if (pick < 0.45) {
        return eqsat::app("+", {randomArithTerm(depth - 1, num_vars, rng),
                                randomArithTerm(depth - 1, num_vars, rng)});
    }
    if (pick < 0.85) {
        return eqsat::app("*", {randomArithTerm(depth - 1, num_vars, rng),
                                randomArithTerm(depth - 1, num_vars, rng)});
    }
    return eqsat::app("<<", {randomArithTerm(depth - 1, num_vars, rng),
                             eqsat::leaf("one")});
}

TermPtr
randomDatapathTerm(std::size_t depth, std::size_t num_vars, util::Rng& rng)
{
    if (depth == 0 || rng.bernoulli(0.3)) {
        const double pick = rng.uniform();
        if (pick < 0.7) {
            return eqsat::leaf(varName(rng.uniformIndex(num_vars)));
        }
        if (pick < 0.85)
            return eqsat::leaf("three");
        return eqsat::leaf("five");
    }
    const double pick = rng.uniform();
    if (pick < 0.5) {
        return eqsat::app(
            "+", {randomDatapathTerm(depth - 1, num_vars, rng),
                  randomDatapathTerm(depth - 1, num_vars, rng)});
    }
    return eqsat::app("*", {randomDatapathTerm(depth - 1, num_vars, rng),
                            randomDatapathTerm(depth - 1, num_vars, rng)});
}

TermPtr
randomCaviarTerm(std::size_t depth, std::size_t num_vars, util::Rng& rng)
{
    if (depth == 0 || rng.bernoulli(0.25)) {
        const double pick = rng.uniform();
        if (pick < 0.7) {
            return eqsat::leaf(varName(rng.uniformIndex(num_vars)));
        }
        if (pick < 0.85)
            return eqsat::leaf("zero");
        return eqsat::leaf("one");
    }
    const double pick = rng.uniform();
    if (pick < 0.3) {
        return eqsat::app("+", {randomCaviarTerm(depth - 1, num_vars, rng),
                                randomCaviarTerm(depth - 1, num_vars,
                                                 rng)});
    }
    if (pick < 0.5) {
        return eqsat::app("-", {randomCaviarTerm(depth - 1, num_vars, rng),
                                randomCaviarTerm(depth - 1, num_vars,
                                                 rng)});
    }
    if (pick < 0.65) {
        return eqsat::app("*", {randomCaviarTerm(depth - 1, num_vars, rng),
                                randomCaviarTerm(depth - 1, num_vars,
                                                 rng)});
    }
    if (pick < 0.85) {
        return eqsat::app("min",
                          {randomCaviarTerm(depth - 1, num_vars, rng),
                           randomCaviarTerm(depth - 1, num_vars, rng)});
    }
    return eqsat::app("max", {randomCaviarTerm(depth - 1, num_vars, rng),
                              randomCaviarTerm(depth - 1, num_vars, rng)});
}

double
operatorCost(const std::string& op)
{
    if (op == "zero" || op == "one" || op == "two" || op == "three" ||
        op == "five" || op.rfind("v", 0) == 0)
        return 0.0;
    if (op == "+" || op == "-")
        return 4.0;
    if (op == "<<" || op == "neg")
        return 1.0;
    if (op == "min" || op == "max")
        return 2.0;
    if (op == "*" || op == "square")
        return 16.0;
    if (op == "mac")
        return 17.0; // fused: cheaper than separate * then +
    return 8.0;
}

} // namespace

TermPtr
randomTerm(TermFlavor flavor, std::size_t depth, std::size_t num_vars,
           util::Rng& rng)
{
    switch (flavor) {
      case TermFlavor::Arithmetic:
        return randomArithTerm(depth, num_vars, rng);
      case TermFlavor::Datapath:
        return randomDatapathTerm(depth, num_vars, rng);
      case TermFlavor::Caviar:
        return randomCaviarTerm(depth, num_vars, rng);
    }
    return eqsat::leaf("v0");
}

eg::EGraph
growEGraph(TermFlavor flavor, std::size_t depth, std::size_t max_nodes,
           util::Rng& rng)
{
    if (flavor == TermFlavor::Caviar)
        return growCaviarEGraph(depth, max_nodes, rng);
    const TermPtr term = randomTerm(flavor, depth, 4, rng);
    eqsat::MutEGraph mut;
    const eqsat::Id root = mut.addTerm(*term);

    const auto& rules = flavor == TermFlavor::Arithmetic
                            ? eqsat::arithmeticRules()
                            : eqsat::datapathRules();
    eqsat::RunLimits limits;
    limits.maxIterations = 8;
    limits.maxNodes = max_nodes;
    limits.maxMatchesPerRule = 2000;
    mut.run(rules, limits);

    return mut.exportGraph(root, [](const std::string& op, std::size_t) {
        return operatorCost(op);
    });
}

eg::EGraph
growFirEGraph(std::size_t taps, std::size_t max_nodes, util::Rng& rng)
{
    // sum_k c_k * x_k with small-constant coefficients, like the rover
    // fir_* kernels.
    SMOOTHE_CHECK(taps >= 1, "FIR kernel needs at least one tap");
    const char* coefficients[] = {"two", "three", "five", "one"};
    TermPtr acc;
    for (std::size_t k = 0; k < taps; ++k) {
        TermPtr tap = eqsat::app(
            "*", {eqsat::leaf(coefficients[k % 4]),
                  eqsat::leaf(varName(k))});
        acc = acc ? eqsat::app("+", {acc, tap}) : tap;
    }
    eqsat::MutEGraph mut;
    const eqsat::Id root = mut.addTerm(*acc);
    eqsat::RunLimits limits;
    limits.maxIterations = 7;
    limits.maxNodes = max_nodes;
    limits.maxMatchesPerRule = 2000;
    mut.run(eqsat::datapathRules(), limits);
    (void)rng;
    return mut.exportGraph(root, [](const std::string& op, std::size_t) {
        return operatorCost(op);
    });
}

eg::EGraph
growCaviarEGraph(std::size_t depth, std::size_t max_nodes, util::Rng& rng)
{
    const TermPtr term = randomTerm(TermFlavor::Caviar, depth, 4, rng);
    eqsat::MutEGraph mut;
    const eqsat::Id root = mut.addTerm(*term);

    // Phased scheduling (Caviar): each phase gets a growing slice of
    // the node budget — normalization barely grows the graph, the
    // min/max lemma phase takes whatever is left.
    const auto& phases = eqsat::caviarRulePhases();
    std::size_t phaseIndex = 0;
    for (const auto& phase : phases) {
        ++phaseIndex;
        eqsat::RunLimits limits;
        limits.maxIterations = 4;
        limits.maxNodes = max_nodes * phaseIndex / phases.size();
        limits.maxMatchesPerRule = 1500;
        mut.run(phase, limits);
    }

    return mut.exportGraph(root, [](const std::string& op, std::size_t) {
        return operatorCost(op);
    });
}

std::vector<NamedEGraph>
generateCaviarFamily(double scale, std::uint64_t seed)
{
    // Ten instances like the upstream caviar benchmark buckets; depth
    // steps through the jitter range so the family spans small to
    // saturation-bounded graphs. `scale` moves the node budget, like
    // the structured families' class-count scaling.
    constexpr std::size_t kGraphs = 10;
    std::vector<NamedEGraph> out;
    out.reserve(kGraphs);
    const std::size_t budget = std::max<std::size_t>(
        200, static_cast<std::size_t>(4000 * scale));
    for (std::size_t i = 0; i < kGraphs; ++i) {
        util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        const std::size_t depth = 3 + (i % 4);
        NamedEGraph named;
        named.family = "caviar";
        named.name = "caviar_" + std::to_string(i);
        named.graph = growCaviarEGraph(depth, budget, rng);
        out.push_back(std::move(named));
    }
    return out;
}

} // namespace smoothe::datasets
