#include "datasets/nphard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "check/contracts.hpp"

namespace smoothe::datasets {

using eg::ClassId;
using eg::EGraph;

SetCoverInstance
randomSetCover(std::size_t num_elements, std::size_t num_sets,
               double sets_per_element, util::Rng& rng)
{
    SetCoverInstance instance;
    instance.numElements = num_elements;
    instance.sets.assign(num_sets, {});
    instance.weights.assign(num_sets, 0.0);

    std::vector<std::set<std::uint32_t>> members(num_sets);
    for (std::uint32_t element = 0; element < num_elements; ++element) {
        // Guarantee coverage, then add extra memberships. Clamp before
        // the cast: a negative normal sample must not wrap around.
        const double drawn = rng.normal(sets_per_element,
                                        std::sqrt(sets_per_element));
        const double clamped =
            std::clamp(drawn, 1.0, static_cast<double>(2 * num_sets));
        const std::size_t copies =
            static_cast<std::size_t>(clamped + 0.5);
        for (std::size_t c = 0; c < copies; ++c)
            members[rng.uniformIndex(num_sets)].insert(element);
    }
    for (std::size_t s = 0; s < num_sets; ++s) {
        instance.sets[s].assign(members[s].begin(), members[s].end());
        // Weight loosely proportional to coverage so greedy choices are
        // non-trivial.
        instance.weights[s] =
            1.0 + std::floor(rng.uniform(0.0, 4.0)) +
            0.5 * static_cast<double>(instance.sets[s].size());
    }
    return instance;
}

EGraph
setCoverToEGraph(const SetCoverInstance& instance)
{
    EGraph graph;
    const ClassId root = graph.addClass();
    std::vector<ClassId> elementClass(instance.numElements);
    for (std::size_t e = 0; e < instance.numElements; ++e)
        elementClass[e] = graph.addClass();
    std::vector<ClassId> setClass(instance.sets.size(), eg::kNoClass);

    std::vector<ClassId> rootChildren;
    for (std::size_t e = 0; e < instance.numElements; ++e)
        rootChildren.push_back(elementClass[e]);
    graph.addNode(root, "cover-all", std::move(rootChildren), 0.0);

    for (std::size_t s = 0; s < instance.sets.size(); ++s) {
        if (instance.sets[s].empty())
            continue;
        setClass[s] = graph.addClass();
        graph.addNode(setClass[s], "set_" + std::to_string(s), {},
                      instance.weights[s]);
        for (std::uint32_t element : instance.sets[s]) {
            graph.addNode(elementClass[element],
                          "via_set_" + std::to_string(s), {setClass[s]},
                          0.0);
        }
    }
    graph.setRoot(root);
    // Elements covered by no set make the instance infeasible; the caller
    // guarantees coverage, so finalize must succeed.
    const auto err = graph.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "set-cover e-graph must finalize: %s",
                   err ? err->c_str() : "");
    return graph;
}

double
bruteForceSetCover(const SetCoverInstance& instance)
{
    const std::size_t numSets = instance.sets.size();
    SMOOTHE_CHECK(numSets <= 24,
                  "exact set-cover enumerates 2^sets; %zu sets is too many",
                  numSets);
    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t mask = 0; mask < (1ULL << numSets); ++mask) {
        std::vector<bool> covered(instance.numElements, false);
        double cost = 0.0;
        for (std::size_t s = 0; s < numSets; ++s) {
            if (!(mask & (1ULL << s)))
                continue;
            cost += instance.weights[s];
            for (std::uint32_t element : instance.sets[s])
                covered[element] = true;
        }
        if (cost >= best)
            continue;
        bool all = true;
        for (bool c : covered)
            all = all && c;
        if (all)
            best = cost;
    }
    return best;
}

MaxSatInstance
randomMaxSat(std::size_t num_variables, std::size_t num_clauses,
             std::size_t clause_size, util::Rng& rng)
{
    MaxSatInstance instance;
    instance.numVariables = num_variables;
    instance.clauses.reserve(num_clauses);
    for (std::size_t c = 0; c < num_clauses; ++c) {
        std::set<int> literals;
        while (literals.size() < clause_size) {
            const int var =
                1 + static_cast<int>(rng.uniformIndex(num_variables));
            const int literal = rng.bernoulli(0.5) ? var : -var;
            // Avoid tautological clauses (x OR NOT x).
            if (!literals.count(-literal))
                literals.insert(literal);
        }
        instance.clauses.emplace_back(literals.begin(), literals.end());
    }
    return instance;
}

EGraph
maxSatToEGraph(const MaxSatInstance& instance)
{
    EGraph graph;
    const ClassId root = graph.addClass();

    // Literal classes: (variable, polarity) -> class with one unit-cost
    // node. Shared by every clause choosing that literal (the CSE trap
    // for tree-cost heuristics).
    std::vector<ClassId> literalClass(2 * instance.numVariables);
    for (std::size_t v = 0; v < instance.numVariables; ++v) {
        for (int polarity = 0; polarity < 2; ++polarity) {
            const ClassId cls = graph.addClass();
            literalClass[2 * v + polarity] = cls;
            graph.addNode(cls,
                          (polarity ? "x" : "!x") + std::to_string(v), {},
                          1.0);
        }
    }

    std::vector<ClassId> clauseClasses;
    for (std::size_t c = 0; c < instance.clauses.size(); ++c) {
        const ClassId cls = graph.addClass();
        clauseClasses.push_back(cls);
        for (int literal : instance.clauses[c]) {
            const std::size_t var =
                static_cast<std::size_t>(std::abs(literal)) - 1;
            const std::size_t polarity = literal > 0 ? 1 : 0;
            graph.addNode(cls, "sat_by_" + std::to_string(literal),
                          {literalClass[2 * var + polarity]}, 0.0);
        }
        graph.addNode(cls, "violated", {}, instance.violationPenalty);
    }
    graph.addNode(root, "all-clauses", std::move(clauseClasses), 0.0);
    graph.setRoot(root);
    const auto err = graph.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "max-sat e-graph must finalize: %s",
                   err ? err->c_str() : "");
    return graph;
}

double
bruteForceMaxSatCost(const MaxSatInstance& instance)
{
    // Each clause independently picks one of its literals or "violated";
    // the extraction DAG cost is |distinct literals used| + penalty *
    // #violated. That equals min over literal subsets L of
    //   |L| + penalty * #{clauses with no literal in L},
    // so enumerating all 2^(2V) literal subsets is exact.
    SMOOTHE_CHECK(2 * instance.numVariables <= 20,
                  "exact max-sat enumerates 2^(2V); V=%zu is too many",
                  instance.numVariables);
    const std::size_t bits = 2 * instance.numVariables;
    auto literalBit = [](int literal) {
        const std::size_t var =
            static_cast<std::size_t>(std::abs(literal)) - 1;
        return 2 * var + (literal > 0 ? 1 : 0);
    };
    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t mask = 0; mask < (1ULL << bits); ++mask) {
        double cost = static_cast<double>(__builtin_popcountll(mask));
        if (cost >= best)
            continue;
        for (const auto& clause : instance.clauses) {
            bool satisfied = false;
            for (int literal : clause) {
                if (mask & (1ULL << literalBit(literal))) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied)
                cost += instance.violationPenalty;
        }
        best = std::min(best, cost);
    }
    return best;
}

std::vector<NamedEGraph>
generateSetFamily(double scale, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<NamedEGraph> out;
    const std::size_t sizes[][2] = {
        {600, 90}, {800, 110}, {1000, 130}, {1200, 150}};
    for (std::size_t g = 0; g < 4; ++g) {
        const std::size_t elements = std::max<std::size_t>(
            12, static_cast<std::size_t>(sizes[g][0] * scale));
        const std::size_t sets = std::max<std::size_t>(
            6, static_cast<std::size_t>(sizes[g][1] * scale));
        auto instance = randomSetCover(elements, sets, 6.0, rng);
        NamedEGraph named;
        named.family = "set";
        named.name = "set_" + std::to_string(g);
        named.graph = setCoverToEGraph(instance);
        out.push_back(std::move(named));
    }
    return out;
}

std::vector<NamedEGraph>
generateMaxSatFamily(double scale, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<NamedEGraph> out;
    const std::size_t sizes[][2] = {{120, 300}, {160, 420}, {200, 520},
                                    {240, 650}, {280, 760}, {320, 900}};
    for (std::size_t g = 0; g < 6; ++g) {
        const std::size_t vars = std::max<std::size_t>(
            8, static_cast<std::size_t>(sizes[g][0] * scale));
        const std::size_t clauses = std::max<std::size_t>(
            12, static_cast<std::size_t>(sizes[g][1] * scale));
        auto instance = randomMaxSat(vars, clauses, 3, rng);
        NamedEGraph named;
        named.family = "maxsat";
        named.name = "maxsat_" + std::to_string(g);
        named.graph = maxSatToEGraph(instance);
        out.push_back(std::move(named));
    }
    return out;
}

} // namespace smoothe::datasets
