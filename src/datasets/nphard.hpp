/**
 * @file
 * Adversarial datasets: NP-hard problems reduced to e-graph extraction
 * (Section 5.3), following the reductions of Stepp's thesis and Zhang's
 * NP-completeness note. These e-graphs are rich in common subexpressions
 * and nearly free of other graphical structure, which makes them easy for
 * ILP and hard for the tree-cost heuristics — exactly the paper's point.
 */

#ifndef SMOOTHE_DATASETS_NPHARD_HPP
#define SMOOTHE_DATASETS_NPHARD_HPP

#include <cstdint>
#include <vector>

#include "datasets/generators.hpp"
#include "egraph/egraph.hpp"
#include "util/rng.hpp"

namespace smoothe::datasets {

/** A weighted minimum set-cover instance. */
struct SetCoverInstance
{
    std::size_t numElements = 0;
    /** sets[s] = sorted element ids covered by set s. */
    std::vector<std::vector<std::uint32_t>> sets;
    /** weights[s] = cost of picking set s. */
    std::vector<double> weights;
};

/**
 * Generates a random feasible instance (every element covered by at least
 * one set; average membership ~ sets_per_element).
 */
SetCoverInstance randomSetCover(std::size_t num_elements,
                                std::size_t num_sets,
                                double sets_per_element,
                                util::Rng& rng);

/**
 * Exact reduction to e-graph extraction:
 * root node's children are one e-class per element; element class e holds
 * one zero-cost e-node per covering set s whose single child is the
 * "use set s" class; that class holds one e-node of cost weights[s].
 * The minimum DAG-cost extraction equals the minimum-weight set cover
 * (shared set classes are paid once).
 */
eg::EGraph setCoverToEGraph(const SetCoverInstance& instance);

/** Brute-force optimum (num_sets <= ~20 only); used in tests. */
double bruteForceSetCover(const SetCoverInstance& instance);

/** A weighted MaxSAT instance in CNF. */
struct MaxSatInstance
{
    std::size_t numVariables = 0;
    /** clauses[c] = literals; +v means variable v-1 true, -v false. */
    std::vector<std::vector<int>> clauses;
    /** Penalty for leaving a clause unsatisfied. */
    double violationPenalty = 10.0;
};

/** Random k-SAT-style instance. */
MaxSatInstance randomMaxSat(std::size_t num_variables,
                            std::size_t num_clauses,
                            std::size_t clause_size, util::Rng& rng);

/**
 * Reduction to extraction: one "literal" class per (variable, polarity)
 * holding a unit-cost e-node; each clause class holds one zero-cost
 * e-node per literal (child = that literal class) plus a "violated"
 * e-node of cost violationPenalty; the root depends on every clause
 * class. Using both polarities of a variable costs 2 instead of 1, so the
 * minimum extraction corresponds to a (soft) consistent assignment
 * maximizing satisfied clauses: cost = #variables-used + penalty *
 * #violated, with inconsistent choices strictly dominated when the
 * penalty outweighs the extra literal.
 */
eg::EGraph maxSatToEGraph(const MaxSatInstance& instance);

/** Brute-force optimal extraction cost (num_variables <= ~20); tests. */
double bruteForceMaxSatCost(const MaxSatInstance& instance);

/** The `set` family at the given scale (4 graphs, Table 1). */
std::vector<NamedEGraph> generateSetFamily(double scale,
                                           std::uint64_t seed);

/** The `maxsat` family at the given scale (6 graphs, Table 1). */
std::vector<NamedEGraph> generateMaxSatFamily(double scale,
                                              std::uint64_t seed);

} // namespace smoothe::datasets

#endif // SMOOTHE_DATASETS_NPHARD_HPP
