/**
 * @file
 * E-graphs grown by actual equality saturation (as the paper's real
 * corpora were), complementing the structure-matched synthetic
 * generators: random expression trees in a family-specific term language
 * are saturated under that family's rewrite rules, then exported with a
 * family-specific operator cost model.
 *
 * These are smaller than the structured synthetics (saturation is
 * expensive) but exercise the exact pipeline the upstream projects used,
 * so they serve as a fidelity cross-check in tests and examples.
 */

#ifndef SMOOTHE_DATASETS_EQSAT_GROWN_HPP
#define SMOOTHE_DATASETS_EQSAT_GROWN_HPP

#include "datasets/generators.hpp"
#include "eqsat/term.hpp"
#include "util/rng.hpp"

namespace smoothe::datasets {

/** Term-language flavor for random expression generation. */
enum class TermFlavor {
    Arithmetic, ///< +/*/shift over variables and small constants
    Datapath,   ///< FIR-like multiply-accumulate chains (rover-flavored)
    Caviar,     ///< Halide-style +/-/*/min/max exprs (caviar-flavored)
};

/**
 * Generates a random expression tree.
 * @param depth maximum tree depth
 * @param num_vars number of distinct leaf variables
 */
eqsat::TermPtr randomTerm(TermFlavor flavor, std::size_t depth,
                          std::size_t num_vars, util::Rng& rng);

/**
 * Grows an e-graph from a random term by equality saturation.
 * @param flavor term language and rule set
 * @param depth expression depth (graph size grows quickly with it)
 * @param max_nodes saturation node budget
 * @return finalized extraction e-graph with family-flavored costs
 */
eg::EGraph growEGraph(TermFlavor flavor, std::size_t depth,
                      std::size_t max_nodes, util::Rng& rng);

/**
 * An eqsat-grown FIR filter e-graph (rover-style): sum of k coefficient
 * taps, saturated under the datapath rules.
 */
eg::EGraph growFirEGraph(std::size_t taps, std::size_t max_nodes,
                         util::Rng& rng);

/**
 * Grows a caviar-style e-graph with phased scheduling: the TRS phases
 * of eqsat::caviarRulePhases() run in order (normalize, expand, min/max
 * lemmas), each with its own slice of the node budget — the schedule
 * Caviar uses to keep Halide-style rule sets from blowing up the graph
 * before the interesting lemmas fire.
 */
eg::EGraph growCaviarEGraph(std::size_t depth, std::size_t max_nodes,
                            util::Rng& rng);

/**
 * The eighth dataset family: caviar-flavored e-graphs grown by phased
 * equality saturation from random Halide-style expressions. Unlike the
 * structure-matched synthetics this family exercises the real rewrite
 * pipeline, which is what the anytime/incremental benchmarks replay
 * epoch by epoch. Deterministic in (scale, seed).
 */
std::vector<NamedEGraph> generateCaviarFamily(double scale,
                                              std::uint64_t seed);

} // namespace smoothe::datasets

#endif // SMOOTHE_DATASETS_EQSAT_GROWN_HPP
