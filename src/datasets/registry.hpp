/**
 * @file
 * One-stop dataset registry for tests, examples, and the bench harness.
 */

#ifndef SMOOTHE_DATASETS_REGISTRY_HPP
#define SMOOTHE_DATASETS_REGISTRY_HPP

#include <string>
#include <vector>

#include "datasets/generators.hpp"

namespace smoothe::datasets {

/** All family names: the seven of Table 1 plus the eqsat-grown
 *  "caviar" extension (TRS rules with phased scheduling). */
const std::vector<std::string>& allFamilies();

/**
 * Generates the named family at the given scale.
 * Realistic families use the structured generator; "set" and "maxsat" use
 * the NP-hard reductions. Deterministic in (family, scale, seed).
 */
std::vector<NamedEGraph> loadFamily(const std::string& family, double scale,
                                    std::uint64_t seed);

} // namespace smoothe::datasets

#endif // SMOOTHE_DATASETS_REGISTRY_HPP
