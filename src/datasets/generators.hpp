/**
 * @file
 * Dataset generators reproducing the structural statistics of the paper's
 * seven e-graph families (Table 1).
 *
 * The real corpora (diospyros, flexc, impress, rover, tensat) are grown by
 * equality saturation inside each upstream project; since those artifacts
 * are not available offline, this module generates e-graphs that match the
 * published *structural* statistics per family — average e-node degree
 * d(v), e-nodes-per-class ratio N/M, edge density, common-subexpression
 * richness, and cyclicity — because extraction difficulty is a function of
 * that structure, not of operator spellings (see DESIGN.md substitutions).
 * Sizes are scaled down for a single-core machine; `scale` restores larger
 * instances.
 *
 * The adversarial `set` and `maxsat` families use exact NP-hard-problem
 * reductions and live in nphard.hpp.
 */

#ifndef SMOOTHE_DATASETS_GENERATORS_HPP
#define SMOOTHE_DATASETS_GENERATORS_HPP

#include <string>
#include <vector>

#include "egraph/egraph.hpp"
#include "util/rng.hpp"

namespace smoothe::datasets {

/** A generated e-graph with its identity. */
struct NamedEGraph
{
    std::string family;
    std::string name;
    eg::EGraph graph;
};

/** Structural knobs for the generic layered generator. */
struct FamilyParams
{
    std::string name;

    std::size_t numClasses = 500;   ///< M at scale 1
    double nodesPerClass = 2.0;     ///< N / M ratio
    double classSizeSpread = 0.8;   ///< geometric spread of class sizes
    double avgArity = 2.0;          ///< d(v)
    std::size_t maxArity = 4;
    double leafFraction = 0.25;     ///< classes that are pure leaves
    double shareProbability = 0.3;  ///< CSE richness: reuse of hub classes
    double cycleFraction = 0.0;     ///< nodes pointing at ancestor classes
    double minCost = 1.0;
    double maxCost = 10.0;
    double zeroCostFraction = 0.05; ///< free ops (constants, wires)
    std::size_t numGraphs = 5;      ///< #G in Table 1
    double sizeJitter = 0.5;        ///< per-graph size variation
};

/** The five realistic families with paper-matched parameters. */
FamilyParams diospyrosParams();
FamilyParams flexcParams();
FamilyParams impressParams();
FamilyParams roverParams();
FamilyParams tensatParams();

/** All realistic family names in canonical order. */
const std::vector<std::string>& realisticFamilies();

/** Looks up family parameters by name; aborts on unknown name. */
FamilyParams familyParams(const std::string& family);

/**
 * Generates one e-graph with the given structural parameters.
 * @param params family parameters (numClasses already scaled if desired)
 * @param seed generator seed (each named instance uses its own)
 * @return a finalized, feasible, root-reachable e-graph
 */
eg::EGraph generateStructured(const FamilyParams& params,
                              std::uint64_t seed);

/**
 * Generates the whole family: params.numGraphs e-graphs with jittered
 * sizes, named "<family>_<index>".
 * @param scale multiplies numClasses (0.1 = ten times smaller)
 */
std::vector<NamedEGraph> generateFamily(const FamilyParams& params,
                                        double scale, std::uint64_t seed);

/**
 * The named tensat instances of Table 3 (NASNet-A, NASRNN, BERT, VGG,
 * ResNet-50), sized per the relative sizes reported in the paper.
 */
std::vector<NamedEGraph> tensatNamedInstances(double scale,
                                              std::uint64_t seed);

/**
 * The named rover instances of Table 3 (fir_5..fir_8, box_3..box_5,
 * mcm_8, mcm_9).
 */
std::vector<NamedEGraph> roverNamedInstances(double scale,
                                             std::uint64_t seed);

/**
 * The paper's running example (Figures 1-3): sec^2(a) + tan(a) grown with
 * the two rewrites, with the paper's node costs. The optimal extraction
 * costs 19, the bottom-up heuristic returns 27 (Figure 2).
 */
eg::EGraph paperExampleEGraph();

} // namespace smoothe::datasets

#endif // SMOOTHE_DATASETS_GENERATORS_HPP
