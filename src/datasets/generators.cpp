#include "datasets/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "check/contracts.hpp"

namespace smoothe::datasets {

using eg::ClassId;
using eg::EGraph;
using eg::NodeId;

namespace {

/** Knuth's Poisson sampler (fine for the small lambdas used here). */
std::size_t
poisson(util::Rng& rng, double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda > 30.0) {
        // Normal approximation for large lambda.
        const double sample = rng.normal(lambda, std::sqrt(lambda));
        return sample < 0.0 ? 0 : static_cast<std::size_t>(sample + 0.5);
    }
    const double limit = std::exp(-lambda);
    double product = rng.uniform();
    std::size_t count = 0;
    while (product > limit) {
        ++count;
        product *= rng.uniform();
    }
    return count;
}

/** Operator vocabulary per family for realistic-looking labels. */
const char* const kOps[] = {"add", "mul", "sub", "shl",  "mac",  "ld",
                            "st",  "phi", "vec", "conv", "gemm", "relu"};

} // namespace

FamilyParams
diospyrosParams()
{
    FamilyParams params;
    params.name = "diospyros";
    // Paper: N/M ~ 22.8, d(v) = 2.5, 12 graphs. Huge e-classes (many
    // equivalent vectorizations of the same value).
    params.numClasses = 400;
    params.nodesPerClass = 12.0; // scaled-down but still class-heavy
    params.classSizeSpread = 1.0;
    params.avgArity = 2.5;
    params.maxArity = 4;
    params.leafFraction = 0.2;
    params.shareProbability = 0.35;
    params.cycleFraction = 0.01;
    params.minCost = 1.0;
    params.maxCost = 20.0;
    params.zeroCostFraction = 0.1;
    params.numGraphs = 12;
    params.sizeJitter = 0.6;
    return params;
}

FamilyParams
flexcParams()
{
    FamilyParams params;
    params.name = "flexc";
    // Paper: N/M ~ 4.05, d(v) = 1.8, density 2.5e-4, 14 graphs.
    params.numClasses = 900;
    params.nodesPerClass = 4.0;
    params.classSizeSpread = 0.7;
    params.avgArity = 1.8;
    params.maxArity = 3;
    params.leafFraction = 0.3;
    params.shareProbability = 0.15;
    params.cycleFraction = 0.005;
    params.minCost = 1.0;
    params.maxCost = 8.0;
    params.zeroCostFraction = 0.05;
    params.numGraphs = 14;
    params.sizeJitter = 0.5;
    return params;
}

FamilyParams
impressParams()
{
    FamilyParams params;
    params.name = "impress";
    // Paper: N/M ~ 1.13 (nearly singleton classes), d(v) = 2.0, only 3
    // graphs, very low density. Deep multiplier decompositions.
    params.numClasses = 3600;
    params.nodesPerClass = 1.15;
    params.classSizeSpread = 0.3;
    params.avgArity = 2.0;
    params.maxArity = 3;
    params.leafFraction = 0.15;
    params.shareProbability = 0.4; // karatsuba-style heavy sharing
    params.cycleFraction = 0.0;
    params.minCost = 1.0;
    params.maxCost = 50.0;
    params.zeroCostFraction = 0.05;
    params.numGraphs = 3;
    params.sizeJitter = 0.3;
    return params;
}

FamilyParams
roverParams()
{
    FamilyParams params;
    params.name = "rover";
    // Paper: N/M ~ 5.9, d(v) = 5.5 (wide datapath operators), 9 graphs.
    params.numClasses = 420;
    params.nodesPerClass = 5.5;
    params.classSizeSpread = 0.8;
    params.avgArity = 5.5;
    params.maxArity = 9;
    params.leafFraction = 0.18;
    params.shareProbability = 0.35;
    params.cycleFraction = 0.01;
    params.minCost = 1.0;
    params.maxCost = 40.0;
    params.zeroCostFraction = 0.08;
    params.numGraphs = 9;
    params.sizeJitter = 0.4;
    return params;
}

FamilyParams
tensatParams()
{
    FamilyParams params;
    params.name = "tensat";
    // Paper: N/M ~ 1.66, d(v) = 2.3, 5 graphs, cycles present.
    params.numClasses = 2200;
    params.nodesPerClass = 1.7;
    params.classSizeSpread = 0.5;
    params.avgArity = 2.3;
    params.maxArity = 4;
    params.leafFraction = 0.2;
    params.shareProbability = 0.3;
    params.cycleFraction = 0.02;
    params.minCost = 0.1;
    params.maxCost = 5.0;
    params.zeroCostFraction = 0.12;
    params.numGraphs = 5;
    params.sizeJitter = 0.5;
    return params;
}

const std::vector<std::string>&
realisticFamilies()
{
    static const std::vector<std::string> families = {
        "diospyros", "flexc", "impress", "rover", "tensat"};
    return families;
}

FamilyParams
familyParams(const std::string& family)
{
    if (family == "diospyros")
        return diospyrosParams();
    if (family == "flexc")
        return flexcParams();
    if (family == "impress")
        return impressParams();
    if (family == "rover")
        return roverParams();
    if (family == "tensat")
        return tensatParams();
    std::fprintf(stderr, "unknown dataset family: %s\n", family.c_str());
    std::abort();
}

EGraph
generateStructured(const FamilyParams& params, std::uint64_t seed)
{
    util::Rng rng(seed);
    const std::size_t m = std::max<std::size_t>(4, params.numClasses);
    const std::size_t leafStart = m - std::max<std::size_t>(
        1, static_cast<std::size_t>(params.leafFraction * m));

    // In-memory node specs so we can patch parents before materializing.
    struct NodeSpec
    {
        std::string op;
        std::vector<ClassId> children;
        double cost;
    };
    std::vector<std::vector<NodeSpec>> classes(m);

    // Hubs: popular shared classes scattered through the middle/lower
    // graph; sharing them creates the common subexpressions that separate
    // DAG-aware extractors from tree-cost heuristics.
    std::vector<ClassId> hubs;
    const std::size_t hubCount = std::max<std::size_t>(3, m / 40);
    for (std::size_t h = 0; h < hubCount; ++h) {
        hubs.push_back(static_cast<ClassId>(
            m / 3 + rng.uniformIndex(m - m / 3)));
    }
    std::sort(hubs.begin(), hubs.end());

    std::vector<bool> referenced(m, false);
    referenced[0] = true;
    std::size_t nextUnreferenced = 1;

    const double nonLeafArity =
        params.avgArity / std::max(0.05, 1.0 - params.leafFraction);
    const std::size_t window = std::max<std::size_t>(8, m / 10);

    auto drawCost = [&]() -> double {
        if (rng.bernoulli(params.zeroCostFraction))
            return 0.0;
        return std::round(rng.uniform(params.minCost, params.maxCost) *
                          10.0) /
               10.0;
    };

    for (ClassId cls = 0; cls < m; ++cls) {
        const std::size_t extra =
            params.nodesPerClass > 1.0
                ? poisson(rng, (params.nodesPerClass - 1.0) *
                                   std::exp(rng.normal(0.0,
                                                       params
                                                           .classSizeSpread) -
                                            params.classSizeSpread *
                                                params.classSizeSpread /
                                                2.0))
                : 0;
        const std::size_t size = 1 + extra;
        for (std::size_t k = 0; k < size; ++k) {
            NodeSpec node;
            node.op = kOps[rng.uniformIndex(std::size(kOps))];
            node.cost = drawCost();
            const bool isLeafClass = cls >= leafStart;
            if (!isLeafClass) {
                std::size_t arity = 1 + std::min<std::size_t>(
                    params.maxArity - 1,
                    poisson(rng, std::max(0.0, nonLeafArity - 1.0)));
                for (std::size_t slot = 0; slot < arity; ++slot) {
                    const double r = rng.uniform();
                    ClassId child = eg::kNoClass;
                    if (k > 0 && cls > 0 && r < params.cycleFraction) {
                        // Back edge: only on non-first members so the
                        // class always keeps a forward (feasible) node.
                        child = static_cast<ClassId>(
                            rng.uniformIndex(cls));
                    } else if (r < params.cycleFraction +
                                       params.shareProbability) {
                        // Shared hub deeper than this class.
                        const auto it = std::upper_bound(hubs.begin(),
                                                         hubs.end(), cls);
                        if (it != hubs.end()) {
                            const std::size_t span =
                                static_cast<std::size_t>(hubs.end() - it);
                            child = *(it + rng.uniformIndex(span));
                        }
                    }
                    if (child == eg::kNoClass) {
                        // Forward edge, biased toward classes nobody
                        // references yet so everything stays reachable.
                        while (nextUnreferenced < m &&
                               referenced[nextUnreferenced])
                            ++nextUnreferenced;
                        if (nextUnreferenced < m &&
                            nextUnreferenced > cls && rng.bernoulli(0.5)) {
                            child =
                                static_cast<ClassId>(nextUnreferenced);
                        } else {
                            const std::size_t hi =
                                std::min<std::size_t>(m - 1,
                                                      cls + window);
                            child = static_cast<ClassId>(
                                cls + 1 + rng.uniformIndex(hi - cls));
                        }
                    }
                    node.children.push_back(child);
                    if (child > cls)
                        referenced[child] = true;
                }
            }
            classes[cls].push_back(std::move(node));
        }
    }

    // Patch: attach any still-unreferenced class as an extra operand of a
    // random earlier node, preserving reachability.
    for (ClassId cls = 1; cls < m; ++cls) {
        if (referenced[cls])
            continue;
        const ClassId parentClass =
            static_cast<ClassId>(rng.uniformIndex(cls));
        auto& members = classes[parentClass];
        NodeSpec& host = members[rng.uniformIndex(members.size())];
        host.children.push_back(cls);
        referenced[cls] = true;
    }

    EGraph graph;
    for (ClassId cls = 0; cls < m; ++cls)
        graph.addClass();
    for (ClassId cls = 0; cls < m; ++cls) {
        for (NodeSpec& node : classes[cls])
            graph.addNode(cls, std::move(node.op), std::move(node.children),
                          node.cost);
    }
    graph.setRoot(0);
    const auto err = graph.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "generated e-graph must finalize: %s",
                   err ? err->c_str() : "");
    return graph;
}

std::vector<NamedEGraph>
generateFamily(const FamilyParams& params, double scale, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<NamedEGraph> out;
    out.reserve(params.numGraphs);
    for (std::size_t g = 0; g < params.numGraphs; ++g) {
        FamilyParams instance = params;
        const double jitter =
            std::exp(rng.normal(0.0, params.sizeJitter / 2.0));
        instance.numClasses = std::max<std::size_t>(
            8, static_cast<std::size_t>(params.numClasses * scale * jitter));
        NamedEGraph named;
        named.family = params.name;
        named.name = params.name + "_" + std::to_string(g);
        named.graph = generateStructured(instance, rng.next());
        out.push_back(std::move(named));
    }
    return out;
}

std::vector<NamedEGraph>
tensatNamedInstances(double scale, std::uint64_t seed)
{
    struct Spec
    {
        const char* name;
        double sizeFactor;
        double costScale;
    };
    // Relative sizes follow the tensat paper's model e-graphs; cost scale
    // puts the extracted totals in the same magnitude as Table 3.
    const Spec specs[] = {
        {"NASNet-A", 1.4, 1.0},  {"NASRNN", 1.2, 0.10},
        {"BERT", 1.0, 0.08},     {"VGG", 0.5, 0.5},
        {"ResNet-50", 0.6, 0.4},
    };
    util::Rng rng(seed);
    std::vector<NamedEGraph> out;
    for (const Spec& spec : specs) {
        FamilyParams params = tensatParams();
        params.numClasses = std::max<std::size_t>(
            8, static_cast<std::size_t>(params.numClasses * scale *
                                        spec.sizeFactor));
        params.minCost *= spec.costScale;
        params.maxCost *= spec.costScale;
        NamedEGraph named;
        named.family = "tensat";
        named.name = spec.name;
        named.graph = generateStructured(params, rng.next());
        out.push_back(std::move(named));
    }
    return out;
}

std::vector<NamedEGraph>
roverNamedInstances(double scale, std::uint64_t seed)
{
    struct Spec
    {
        const char* name;
        double sizeFactor;
    };
    const Spec specs[] = {
        {"fir_5", 0.7}, {"fir_6", 0.8},  {"fir_7", 0.9},
        {"fir_8", 1.0}, {"box_3", 0.45}, {"box_4", 0.6},
        {"box_5", 0.5}, {"mcm_8", 0.8},  {"mcm_9", 0.9},
    };
    util::Rng rng(seed);
    std::vector<NamedEGraph> out;
    for (const Spec& spec : specs) {
        FamilyParams params = roverParams();
        params.numClasses = std::max<std::size_t>(
            8, static_cast<std::size_t>(params.numClasses * scale *
                                        spec.sizeFactor));
        NamedEGraph named;
        named.family = "rover";
        named.name = spec.name;
        named.graph = generateStructured(params, rng.next());
        out.push_back(std::move(named));
    }
    return out;
}

EGraph
paperExampleEGraph()
{
    // Figure 1/2/3 of the paper: sec^2(a) + tan(a) after the rewrites
    // sec a -> 1/cos a and sec^2 a -> 1 + tan^2 a.
    EGraph graph;
    const ClassId cAlpha = graph.addClass();
    const ClassId cCos = graph.addClass();
    const ClassId cSec = graph.addClass();
    const ClassId cTan = graph.addClass();
    const ClassId cTan2 = graph.addClass();
    const ClassId cOne = graph.addClass();
    const ClassId cSec2 = graph.addClass();
    const ClassId cRoot = graph.addClass();

    graph.addNode(cAlpha, "alpha", {}, 0.0);
    graph.addNode(cCos, "cos", {cAlpha}, 10.0);
    graph.addNode(cSec, "sec", {cAlpha}, 10.0);
    graph.addNode(cSec, "recip", {cCos}, 5.0);
    graph.addNode(cTan, "tan", {cAlpha}, 10.0);
    graph.addNode(cTan2, "square", {cTan}, 5.0);
    graph.addNode(cOne, "one", {}, 0.0);
    graph.addNode(cSec2, "square", {cSec}, 5.0);
    graph.addNode(cSec2, "add", {cOne, cTan2}, 2.0);
    graph.addNode(cRoot, "add", {cSec2, cTan}, 2.0);
    graph.setRoot(cRoot);
    const auto err = graph.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "adversarial e-graph must finalize: %s",
                   err ? err->c_str() : "");
    return graph;
}

} // namespace smoothe::datasets
