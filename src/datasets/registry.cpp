#include "datasets/registry.hpp"

#include "datasets/eqsat_grown.hpp"
#include "datasets/nphard.hpp"

namespace smoothe::datasets {

const std::vector<std::string>&
allFamilies()
{
    static const std::vector<std::string> families = {
        "diospyros", "flexc", "impress", "rover",
        "tensat",    "set",   "maxsat",  "caviar"};
    return families;
}

std::vector<NamedEGraph>
loadFamily(const std::string& family, double scale, std::uint64_t seed)
{
    if (family == "set")
        return generateSetFamily(scale, seed);
    if (family == "maxsat")
        return generateMaxSatFamily(scale, seed);
    if (family == "caviar")
        return generateCaviarFamily(scale, seed);
    return generateFamily(familyParams(family), scale, seed);
}

} // namespace smoothe::datasets
