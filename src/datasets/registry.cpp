#include "datasets/registry.hpp"

#include "datasets/nphard.hpp"

namespace smoothe::datasets {

const std::vector<std::string>&
allFamilies()
{
    static const std::vector<std::string> families = {
        "diospyros", "flexc", "impress", "rover",
        "tensat",    "set",   "maxsat"};
    return families;
}

std::vector<NamedEGraph>
loadFamily(const std::string& family, double scale, std::uint64_t seed)
{
    if (family == "set")
        return generateSetFamily(scale, seed);
    if (family == "maxsat")
        return generateMaxSatFamily(scale, seed);
    return generateFamily(familyParams(family), scale, seed);
}

} // namespace smoothe::datasets
