/**
 * @file
 * Wall-clock timing utilities used by extractors and the bench harness.
 */

#ifndef SMOOTHE_UTIL_TIMER_HPP
#define SMOOTHE_UTIL_TIMER_HPP

#include <chrono>
#include <limits>

namespace smoothe::util {

/** Monotonic wall-clock stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Returns elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto now = Clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Returns elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Deadline helper: tracks a time budget in seconds.
 *
 * A non-positive budget means "no limit".
 */
class Deadline
{
  public:
    explicit Deadline(double budget_seconds)
        : budget_(budget_seconds)
    {}

    /** Returns true once the budget is exhausted (never for budget <= 0). */
    bool
    expired() const
    {
        return budget_ > 0.0 && timer_.seconds() >= budget_;
    }

    /** Returns remaining seconds (infinity when unlimited). */
    double
    remaining() const
    {
        if (budget_ <= 0.0)
            return std::numeric_limits<double>::infinity();
        const double left = budget_ - timer_.seconds();
        return left > 0.0 ? left : 0.0;
    }

    /** Returns elapsed seconds since construction. */
    double elapsed() const { return timer_.seconds(); }

  private:
    Timer timer_;
    double budget_;
};

// PhaseProfiler (the Figure 8 phase accumulator) now lives in
// obs/phase_profiler.hpp, rebuilt on trace spans.

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_TIMER_HPP
