/**
 * @file
 * Tiny command-line flag parser for the bench and example binaries.
 *
 * Supports `--name value` and `--name=value` forms plus boolean switches.
 */

#ifndef SMOOTHE_UTIL_ARGS_HPP
#define SMOOTHE_UTIL_ARGS_HPP

#include <cstdint>
#include <map>
#include <string>

namespace smoothe::util {

/** Parsed command-line flags with typed, defaulted accessors. */
class Args
{
  public:
    /** Parses argv; unknown positional arguments are ignored. */
    Args(int argc, char** argv);

    /** Returns true when the flag was passed (with or without a value). */
    bool has(const std::string& name) const;

    /** Returns the string value or the default when absent. */
    std::string getString(const std::string& name,
                          const std::string& fallback) const;

    /** Returns the flag parsed as double or the default. */
    double getDouble(const std::string& name, double fallback) const;

    /** Returns the flag parsed as int64 or the default. */
    std::int64_t getInt(const std::string& name, std::int64_t fallback) const;

    /** Returns the flag parsed as bool ("--x", "--x=true/false"). */
    bool getBool(const std::string& name, bool fallback) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_ARGS_HPP
