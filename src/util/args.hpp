/**
 * @file
 * Tiny command-line flag parser for the bench and example binaries.
 *
 * Supports `--name value` and `--name=value` forms plus boolean switches.
 */

#ifndef SMOOTHE_UTIL_ARGS_HPP
#define SMOOTHE_UTIL_ARGS_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace smoothe::util {

/**
 * Parsed command-line flags with typed, defaulted accessors.
 *
 * Every accessor records which flag names the program asked about; after
 * all flags are queried, unrecognized() lists what the user passed that
 * the program never looked at — the binaries use this to reject typos
 * like `--seeeds` instead of silently running with defaults.
 */
class Args
{
  public:
    /** Parses argv; positional (non-flag) arguments are collected in
     *  order and exposed through positionals(). */
    Args(int argc, char** argv);

    /** Returns true when the flag was passed (with or without a value). */
    bool has(const std::string& name) const;

    /** Returns the string value or the default when absent. */
    std::string getString(const std::string& name,
                          const std::string& fallback) const;

    /** Returns the flag parsed as double or the default. */
    double getDouble(const std::string& name, double fallback) const;

    /** Returns the flag parsed as int64 or the default. */
    std::int64_t getInt(const std::string& name, std::int64_t fallback) const;

    /** Returns the flag parsed as bool ("--x", "--x=true/false"). */
    bool getBool(const std::string& name, bool fallback) const;

    /** Marks a flag as known without reading its value. */
    void acknowledge(const std::string& name) const;

    /** All flag names that were passed, in command-line order. */
    const std::vector<std::string>& flags() const { return order_; }

    /** Non-flag arguments in command-line order (e.g. input files). */
    const std::vector<std::string>& positionals() const
    {
        return positionals_;
    }

    /**
     * Flags that were passed but never queried through any accessor (nor
     * acknowledge()d), in command-line order. Call only after querying
     * every flag the program understands.
     */
    std::vector<std::string> unrecognized() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
    std::vector<std::string> positionals_;
    mutable std::set<std::string> queried_;
};

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_ARGS_HPP
