#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace smoothe::util {

void
Json::set(const std::string& key, Json value)
{
    for (auto& kv : object_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

const Json*
Json::find(const std::string& key) const
{
    for (const auto& kv : object_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

namespace {

void
escapeString(const std::string& in, std::string& out)
{
    out.push_back('"');
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(double value, std::string& out)
{
    if (std::isnan(value) || std::isinf(value)) {
        out += "null"; // JSON has no NaN/Inf; emit null.
        return;
    }
    const double rounded = std::nearbyint(value);
    if (rounded == value && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out += buf;
    }
}

void
appendIndent(std::string& out, int indent, int depth)
{
    if (indent > 0) {
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

} // namespace

void
Json::dumpTo(std::string& out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(number_, out);
        break;
      case Type::String:
        escapeString(string_, out);
        break;
      case Type::Array:
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            appendIndent(out, indent, depth);
        out.push_back(']');
        break;
      case Type::Object:
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            escapeString(object_[i].first, out);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            appendIndent(out, indent, depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

std::string
Json::dumpPretty() const
{
    std::string out;
    dumpTo(out, 2, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {}

    std::optional<Json>
    run()
    {
        skipSpace();
        auto value = parseValue(0);
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return value;
    }

  private:
    static constexpr int maxDepth = 512;

    void
    fail(const std::string& message)
    {
        if (error_ && error_->empty()) {
            std::ostringstream oss;
            oss << message << " at offset " << pos_;
            *error_ = oss.str();
        }
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(const char* literal)
    {
        std::size_t len = 0;
        while (literal[len])
            ++len;
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    std::optional<Json>
    parseValue(int depth)
    {
        if (depth > maxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"')
            return parseString();
        if (c == 't') {
            if (consumeLiteral("true"))
                return Json(true);
            fail("invalid literal");
            return std::nullopt;
        }
        if (c == 'f') {
            if (consumeLiteral("false"))
                return Json(false);
            fail("invalid literal");
            return std::nullopt;
        }
        if (c == 'n') {
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("invalid literal");
            return std::nullopt;
        }
        return parseNumber();
    }

    std::optional<Json>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                c == 'e' || c == 'E' || c == '+' || c == '-') {
                ++pos_;
                any = true;
            } else {
                break;
            }
        }
        if (!any) {
            fail("invalid number");
            return std::nullopt;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            fail("invalid number");
            return std::nullopt;
        }
        return Json(value);
    }

    std::optional<Json>
    parseString()
    {
        std::string out;
        if (!parseRawString(out))
            return std::nullopt;
        return Json(std::move(out));
    }

    bool
    parseRawString(std::string& out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    fail("unterminated escape");
                    return false;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("bad \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    // Encode as UTF-8 (basic multilingual plane only).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return false;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return false;
    }

    std::optional<Json>
    parseArray(int depth)
    {
        consume('[');
        Json::Array items;
        skipSpace();
        if (consume(']'))
            return Json(std::move(items));
        while (true) {
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            items.push_back(std::move(*value));
            skipSpace();
            if (consume(']'))
                return Json(std::move(items));
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return std::nullopt;
            }
        }
    }

    std::optional<Json>
    parseObject(int depth)
    {
        consume('{');
        Json::Object members;
        skipSpace();
        if (consume('}'))
            return Json(std::move(members));
        while (true) {
            skipSpace();
            std::string key;
            if (!parseRawString(key))
                return std::nullopt;
            skipSpace();
            if (!consume(':')) {
                fail("expected ':'");
                return std::nullopt;
            }
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            members.emplace_back(std::move(key), std::move(*value));
            skipSpace();
            if (consume('}'))
                return Json(std::move(members));
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return std::nullopt;
            }
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string& text, std::string* error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

std::optional<std::string>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
writeFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << contents;
    return static_cast<bool>(out);
}

} // namespace smoothe::util
