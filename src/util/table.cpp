#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace smoothe::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    row.resize(std::max(row.size(), header_.size()));
    rows_.push_back(std::move(row));
    ++dataRows_;
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back();
}

void
TablePrinter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto measure = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    measure(header_);
    for (const auto& row : rows_) {
        if (!row.empty())
            measure(row);
    }

    auto emitRow = [&](const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < row.size() ? row[i] : std::string();
            os << " " << cell;
            os << std::string(widths[i] - cell.size() + 1, ' ') << "|";
        }
        os << "\n";
    };
    auto emitSeparator = [&]() {
        os << "|";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "|";
        os << "\n";
    };

    emitRow(header_);
    emitSeparator();
    for (const auto& row : rows_) {
        if (row.empty())
            emitSeparator();
        else
            emitRow(row);
    }
}

std::string
formatSeconds(double seconds)
{
    char buf[32];
    if (seconds < 10.0)
        std::snprintf(buf, sizeof(buf), "%.2f", seconds);
    else
        std::snprintf(buf, sizeof(buf), "%.1f", seconds);
    return buf;
}

std::string
formatPercent(double ratio)
{
    char buf[32];
    if (ratio >= 10.0) {
        std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
    } else if (ratio >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.0f%%", ratio * 100.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
    }
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace smoothe::util
