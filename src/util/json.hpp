/**
 * @file
 * Minimal self-contained JSON value, parser, and writer.
 *
 * Supports the subset of JSON needed for extraction-gym compatible e-graph
 * serialization and for bench-harness result dumps: null, bool, number,
 * string, array, object. Object key order is preserved on output.
 */

#ifndef SMOOTHE_UTIL_JSON_HPP
#define SMOOTHE_UTIL_JSON_HPP

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace smoothe::util {

/** A dynamically-typed JSON value. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    /// Insertion-ordered key/value list; keys are unique.
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), number_(d) {}
    Json(int i) : type_(Type::Number), number_(i) {}
    Json(long i) : type_(Type::Number), number_(static_cast<double>(i)) {}
    Json(std::size_t i) : type_(Type::Number), number_(static_cast<double>(i)) {}
    Json(const char* s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    /** Creates an empty array value. */
    static Json makeArray() { return Json(Array{}); }
    /** Creates an empty object value. */
    static Json makeObject() { return Json(Object{}); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string& asString() const { return string_; }
    const Array& asArray() const { return array_; }
    Array& asArray() { return array_; }
    const Object& asObject() const { return object_; }
    Object& asObject() { return object_; }

    /** Appends an element; value must be an array. */
    void push(Json value) { array_.push_back(std::move(value)); }

    /** Sets (or replaces) a key; value must be an object. */
    void set(const std::string& key, Json value);

    /** Looks up a key in an object; returns nullptr when absent. */
    const Json* find(const std::string& key) const;

    /** Serializes to a compact JSON string. */
    std::string dump() const;

    /** Serializes with 2-space indentation. */
    std::string dumpPretty() const;

    /**
     * Parses a JSON document.
     * @param text the document
     * @param error set to a human-readable message on failure
     * @return the parsed value, or std::nullopt on malformed input
     */
    static std::optional<Json> parse(const std::string& text,
                                     std::string* error = nullptr);

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Reads an entire file into a string; returns std::nullopt on I/O error. */
std::optional<std::string> readFile(const std::string& path);

/** Writes a string to a file, replacing contents. Returns false on error. */
bool writeFile(const std::string& path, const std::string& contents);

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_JSON_HPP
