#include "util/args.hpp"

#include <cstdlib>

namespace smoothe::util {

Args::Args(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            positionals_.push_back(token);
            continue;
        }
        token = token.substr(2);
        std::string name;
        const auto eq = token.find('=');
        if (eq != std::string::npos) {
            name = token.substr(0, eq);
            values_[name] = token.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            name = token;
            values_[name] = argv[++i];
        } else {
            name = token;
            values_[name] = "";
        }
        order_.push_back(name);
    }
    // Repeated flags keep the last value; list each name once.
    std::set<std::string> seen;
    std::vector<std::string> unique;
    for (const std::string& name : order_) {
        if (seen.insert(name).second)
            unique.push_back(name);
    }
    order_ = std::move(unique);
}

bool
Args::has(const std::string& name) const
{
    queried_.insert(name);
    return values_.count(name) > 0;
}

std::string
Args::getString(const std::string& name, const std::string& fallback) const
{
    queried_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string& name, double fallback) const
{
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

std::int64_t
Args::getInt(const std::string& name, std::int64_t fallback) const
{
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool
Args::getBool(const std::string& name, bool fallback) const
{
    queried_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    if (it->second.empty() || it->second == "true" || it->second == "1")
        return true;
    return false;
}

void
Args::acknowledge(const std::string& name) const
{
    queried_.insert(name);
}

std::vector<std::string>
Args::unrecognized() const
{
    std::vector<std::string> unknown;
    for (const std::string& name : order_) {
        if (!queried_.count(name))
            unknown.push_back(name);
    }
    return unknown;
}

} // namespace smoothe::util
