#include "util/args.hpp"

#include <cstdlib>

namespace smoothe::util {

Args::Args(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0)
            continue;
        token = token.substr(2);
        const auto eq = token.find('=');
        if (eq != std::string::npos) {
            values_[token.substr(0, eq)] = token.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[token] = argv[++i];
        } else {
            values_[token] = "";
        }
    }
}

bool
Args::has(const std::string& name) const
{
    return values_.count(name) > 0;
}

std::string
Args::getString(const std::string& name, const std::string& fallback) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string& name, double fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

std::int64_t
Args::getInt(const std::string& name, std::int64_t fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool
Args::getBool(const std::string& name, bool fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    if (it->second.empty() || it->second == "true" || it->second == "1")
        return true;
    return false;
}

} // namespace smoothe::util
