#include "util/rng.hpp"

#include <cmath>

#include "check/contracts.hpp"

namespace smoothe::util {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the four state words through splitmix64 so that even seed=0
    // yields a valid (nonzero) state.
    std::uint64_t sm = seed;
    for (auto& word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

float
Rng::uniformFloat()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

std::size_t
Rng::uniformIndex(std::size_t n)
{
    SMOOTHE_CHECK(n > 0, "uniformIndex needs a nonempty range");
    // Rejection-free Lemire-style bounded draw is overkill here; modulo
    // bias is negligible for n << 2^64.
    return static_cast<std::size_t>(next() % n);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SMOOTHE_CHECK(lo <= hi, "uniformInt range [%lld, %lld] is empty",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(angle);
    hasSpareNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    SMOOTHE_CHECK(!weights.empty(), "weightedIndex needs weights");
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0)
        return uniformIndex(weights.size());
    double pick = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (pick < w)
            return i;
        pick -= w;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace smoothe::util
