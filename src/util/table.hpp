/**
 * @file
 * Plain-text table printer used by the benchmark harness to emit
 * paper-style rows (Tables 1-5, Figures 4-9 series dumps).
 */

#ifndef SMOOTHE_UTIL_TABLE_HPP
#define SMOOTHE_UTIL_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace smoothe::util {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TablePrinter table({"Dataset", "time", "worst", "avg."});
 *   table.addRow({"rover", "20.6", "4.4%", "0.2%"});
 *   table.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Appends a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Appends a horizontal separator row. */
    void addSeparator();

    /** Renders the table to the stream. */
    void print(std::ostream& os) const;

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const { return dataRows_; }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty vector = separator
    std::size_t dataRows_ = 0;
};

/** Formats seconds with sensible precision (e.g. "0.04", "211.8"). */
std::string formatSeconds(double seconds);

/** Formats a ratio as a percentage string (e.g. "4.4%", "2.0x" when huge). */
std::string formatPercent(double ratio);

/** Formats a double with the given number of significant decimals. */
std::string formatFixed(double value, int decimals);

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_TABLE_HPP
