#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

namespace smoothe::util {

namespace {

/** Set for the lifetime of each pool worker thread. */
thread_local char workerLabel[16] = {0};
thread_local bool insideWorker = false;

std::size_t
clampThreads(std::size_t num_threads)
{
    if (num_threads == 0)
        return ThreadPool::hardwareThreads();
    return num_threads;
}

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    threads_ = clampThreads(num_threads);
    startWorkers(threads_ > 1 ? threads_ - 1 : 0);
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::resize(std::size_t num_threads)
{
    const std::size_t target = clampThreads(num_threads);
    if (target == threads_)
        return;
    stopWorkers();
    threads_ = target;
    startWorkers(threads_ > 1 ? threads_ - 1 : 0);
}

void
ThreadPool::startWorkers(std::size_t num_workers)
{
    stopping_ = false;
    workers_.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
    workers_.clear();
}

void
ThreadPool::workerLoop(std::size_t worker_index)
{
    std::snprintf(workerLabel, sizeof(workerLabel), "pool-%zu",
                  worker_index + 1);
    insideWorker = true;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = queue_.back();
            queue_.pop_back();
        }
        runTask(task);
    }
}

void
ThreadPool::runTask(const Task& task)
{
    std::exception_ptr error;
    try {
        (*task.body)(task.chunkBegin, task.chunkEnd);
    } catch (...) {
        error = std::current_exception();
    }
    Batch& batch = *task.batch;
    std::lock_guard<std::mutex> lock(batch.mutex);
    if (error && !batch.error)
        batch.error = std::move(error);
    if (--batch.pending == 0)
        batch.done.notify_all();
}

void
ThreadPool::parallelForChunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    grain = std::max<std::size_t>(1, grain);

    // Inline paths: single-threaded pool, a range that fits one chunk, or
    // a nested call from inside a worker (serialized; re-submitting would
    // deadlock the fixed-size pool under task inversion).
    if (threads_ <= 1 || count <= grain || insideWorker) {
        body(begin, end);
        return;
    }

    const std::size_t numChunks = (count + grain - 1) / grain;
    Batch batch;
    batch.pending = numChunks - 1; // calling thread runs the first chunk
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Push in reverse so workers pop chunks in ascending order (pure
        // scheduling nicety; correctness never depends on order).
        for (std::size_t c = numChunks; c > 1; --c) {
            Task task;
            task.chunkBegin = begin + (c - 1) * grain;
            task.chunkEnd = std::min(end, task.chunkBegin + grain);
            task.body = &body;
            task.batch = &batch;
            queue_.push_back(task);
        }
    }
    wake_.notify_all();

    std::exception_ptr callerError;
    try {
        body(begin, begin + grain);
    } catch (...) {
        callerError = std::current_exception();
    }

    // Drain remaining chunks of this batch on the calling thread too, so
    // a busy pool cannot starve the caller.
    for (;;) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty())
                break;
            task = queue_.back();
            if (task.batch != &batch)
                break;
            queue_.pop_back();
        }
        runTask(task);
    }

    {
        std::unique_lock<std::mutex> lock(batch.mutex);
        batch.done.wait(lock, [&batch] { return batch.pending == 0; });
        if (!callerError && batch.error)
            callerError = batch.error;
    }
    if (callerError)
        std::rethrow_exception(callerError);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        std::size_t grain,
                        const std::function<void(std::size_t)>& body)
{
    parallelForChunks(begin, end, grain,
                      [&body](std::size_t chunk_begin,
                              std::size_t chunk_end) {
                          for (std::size_t i = chunk_begin; i < chunk_end;
                               ++i)
                              body(i);
                      });
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

std::size_t
ThreadPool::setGlobalThreads(std::size_t num_threads)
{
    ThreadPool& pool = global();
    pool.resize(num_threads);
    return pool.size();
}

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool
ThreadPool::onWorkerThread()
{
    return insideWorker;
}

const char*
ThreadPool::currentThreadLabel()
{
    return insideWorker ? workerLabel : nullptr;
}

} // namespace smoothe::util
