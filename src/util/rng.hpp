/**
 * @file
 * Deterministic pseudo-random number generation for the whole project.
 *
 * All stochastic components (seed batching, samplers, dataset generators,
 * genetic operators) draw from this generator so that every experiment is
 * reproducible from a single 64-bit seed.
 */

#ifndef SMOOTHE_UTIL_RNG_HPP
#define SMOOTHE_UTIL_RNG_HPP

#include <cstdint>
#include <cstddef>
#include <vector>

namespace smoothe::util {

/** Mixes a 64-bit value into a well-distributed 64-bit value (splitmix64). */
std::uint64_t splitmix64(std::uint64_t& state);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Small, fast, and high-quality; seeded via splitmix64 so that nearby seeds
 * produce uncorrelated streams. Not cryptographically secure (and does not
 * need to be).
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** Returns a uniform double in [0, 1). */
    double uniform();

    /** Returns a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns a uniform float in [0, 1). */
    float uniformFloat();

    /** Returns a uniform integer in [0, n). Requires n > 0. */
    std::size_t uniformIndex(std::size_t n);

    /** Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Returns a standard normal sample (Box-Muller). */
    double normal();

    /** Returns a normal sample with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** Returns true with probability p. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffles the given vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = uniformIndex(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Samples an index from an unnormalized non-negative weight vector.
     * Falls back to uniform choice when all weights are zero.
     */
    std::size_t weightedIndex(const std::vector<double>& weights);

    /** Derives an independent child generator (for per-seed streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_RNG_HPP
