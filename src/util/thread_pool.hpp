/**
 * @file
 * Fixed-size worker thread pool with a chunked parallel_for.
 *
 * The pool is the CPU stand-in for the paper's GPU data parallelism: the
 * batched SmoothE kernels split their row loops across workers, the
 * sampling stage fans out per-seed work, and the harness binaries run
 * independent e-graphs concurrently. Workers are spawned once and reused
 * across iterations; a parallelFor call costs two mutex round-trips plus
 * one condition-variable wake per chunk, never a thread spawn.
 *
 * Determinism contract: parallelFor partitions [begin, end) into the same
 * chunks for every pool size, and each index is processed by exactly one
 * task, so kernels that write disjoint outputs per index produce
 * bit-identical results for any thread count (including 1, which runs
 * inline on the caller). Nested parallelFor calls from inside a worker are
 * serialized on that worker rather than re-submitted, so outer-level
 * parallelism (e.g. one extraction per graph) transparently flattens
 * inner-level kernel parallelism.
 */

#ifndef SMOOTHE_UTIL_THREAD_POOL_HPP
#define SMOOTHE_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smoothe::util {

/** Fixed worker pool; see the file comment for the determinism contract. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 means hardwareThreads(). A pool
     *        of size 1 spawns no workers and runs everything inline.
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Current worker-visible concurrency (>= 1). */
    std::size_t size() const { return threads_; }

    /**
     * Stops the current workers and spawns a new set. Callers must ensure
     * no parallelFor is in flight; intended for CLI startup (--threads)
     * and tests, not for mid-extraction reconfiguration.
     */
    void resize(std::size_t num_threads);

    /**
     * Runs body(i) for every i in [begin, end), split into contiguous
     * chunks of at least `grain` indices. Blocks until every chunk
     * finished. The calling thread participates, so the pool is never
     * oversubscribed. The first exception thrown by any chunk is
     * rethrown here (the remaining chunks still run to completion).
     *
     * Chunk boundaries depend only on (begin, end, grain) — never on the
     * worker count — so any per-index computation that writes disjoint
     * outputs is bit-identical across thread counts.
     */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t)>& body);

    /**
     * Chunked variant: body(chunk_begin, chunk_end) per chunk, for loops
     * that want to hoist per-chunk setup out of the index loop.
     */
    void parallelForChunks(
        std::size_t begin, std::size_t end, std::size_t grain,
        const std::function<void(std::size_t, std::size_t)>& body);

    /** The process-wide pool used by the tensor/tape kernels. */
    static ThreadPool& global();

    /**
     * Resizes the global pool: 0 = hardwareThreads(). Returns the new
     * size. Used by --threads and SmoothEConfig::numThreads.
     */
    static std::size_t setGlobalThreads(std::size_t num_threads);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static std::size_t hardwareThreads();

    /** True when the current thread is a pool worker (any pool). */
    static bool onWorkerThread();

    /**
     * Label of the current pool worker ("pool-3"), or nullptr on
     * non-worker threads. The trace session uses this to name per-worker
     * Chrome-trace tracks.
     */
    static const char* currentThreadLabel();

  private:
    struct Batch;

    struct Task
    {
        std::size_t chunkBegin = 0;
        std::size_t chunkEnd = 0;
        const std::function<void(std::size_t, std::size_t)>* body = nullptr;
        Batch* batch = nullptr;
    };

    /** Shared completion state for one parallelForChunks call. */
    struct Batch
    {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t pending = 0;
        std::exception_ptr error;
    };

    void workerLoop(std::size_t worker_index);
    void runTask(const Task& task);
    void startWorkers(std::size_t num_workers);
    void stopWorkers();

    std::size_t threads_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<Task> queue_;
    bool stopping_ = false;
};

} // namespace smoothe::util

#endif // SMOOTHE_UTIL_THREAD_POOL_HPP
