#include "autodiff/adam.hpp"

#include <cmath>

namespace smoothe::ad {

Adam::Adam(std::vector<Param*> params, AdamConfig config, Arena* arena)
    : params_(std::move(params)), config_(config)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Param* p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols(), arena);
        v_.emplace_back(p->value.rows(), p->value.cols(), arena);
    }
}

void
Adam::zeroGrad()
{
    for (Param* p : params_)
        p->zeroGrad();
}

void
Adam::step()
{
    ++step_;
    const float correction1 =
        1.0f - std::pow(config_.beta1, static_cast<float>(step_));
    const float correction2 =
        1.0f - std::pow(config_.beta2, static_cast<float>(step_));
    for (std::size_t p = 0; p < params_.size(); ++p) {
        float* __restrict w = params_[p]->value.data();
        const float* __restrict gr = params_[p]->grad.data();
        float* __restrict m = m_[p].data();
        float* __restrict v = v_[p].data();
        const std::size_t n = params_[p]->value.size();
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * gr[i];
            v[i] = config_.beta2 * v[i] +
                   (1.0f - config_.beta2) * gr[i] * gr[i];
            const float mHat = m[i] / correction1;
            const float vHat = v[i] / correction2;
            w[i] -= config_.lr * mHat /
                    (std::sqrt(vHat) + config_.epsilon);
        }
    }
}

} // namespace smoothe::ad
