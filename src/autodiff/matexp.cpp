#include "autodiff/matexp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels_avx2.hpp"
#include "tensor/simd.hpp"

namespace smoothe::ad {

namespace {

/** c = a * b for row-major d x d doubles. The AVX2 variant keeps the
 *  ikj order and the zero-skip branch, so both paths are bitwise
 *  identical (doubles; mul and add separately rounded in each). */
void
matmulSquare(const double* a, const double* b, double* c, std::size_t d)
{
    if (tensor::simd::avx2Active()) {
        tensor::avx2::matmulSquare(a, b, c, d);
        return;
    }
    std::fill(c, c + d * d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t k = 0; k < d; ++k) {
            const double aik = a[i * d + k];
            if (aik == 0.0)
                continue;
            const double* bRow = b + k * d;
            double* cRow = c + i * d;
            for (std::size_t j = 0; j < d; ++j)
                cRow[j] += aik * bRow[j];
        }
    }
}

double
infinityNorm(const double* a, std::size_t d)
{
    double best = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
        double rowSum = 0.0;
        for (std::size_t j = 0; j < d; ++j)
            rowSum += std::fabs(a[i * d + j]);
        best = std::max(best, rowSum);
    }
    return best;
}

} // namespace

void
expmDouble(const double* a, std::size_t d, double* out)
{
    if (d == 0)
        return;
    if (d == 1) {
        out[0] = std::exp(a[0]);
        return;
    }

    const std::size_t n2 = d * d;
    std::vector<double> scaled(a, a + n2);

    // Scaling: bring the norm under ~0.5 so the series converges fast.
    const double norm = infinityNorm(a, d);
    int squarings = 0;
    if (norm > 0.5) {
        squarings = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
        squarings = std::min(squarings, 60);
        const double factor = std::ldexp(1.0, -squarings);
        for (double& v : scaled)
            v *= factor;
    }

    // Taylor series: I + A + A^2/2! + ... (18 terms is ample at norm 0.5;
    // the tail is < 0.5^18/18! ~ 1e-21).
    std::vector<double> result(n2, 0.0);
    for (std::size_t i = 0; i < d; ++i)
        result[i * d + i] = 1.0;
    std::vector<double> power(scaled);
    std::vector<double> temp(n2);
    double factorial = 1.0;
    constexpr int kTerms = 18;
    for (int term = 1; term <= kTerms; ++term) {
        factorial *= term;
        const double inv = 1.0 / factorial;
        for (std::size_t i = 0; i < n2; ++i)
            result[i] += power[i] * inv;
        if (term < kTerms) {
            matmulSquare(power.data(), scaled.data(), temp.data(), d);
            power.swap(temp);
        }
    }

    // Squaring: exp(A) = (exp(A / 2^s))^(2^s).
    for (int s = 0; s < squarings; ++s) {
        matmulSquare(result.data(), result.data(), temp.data(), d);
        result.swap(temp);
    }

    std::memcpy(out, result.data(), n2 * sizeof(double));
}

namespace {

/** Cache-hostile ijk product with per-element accumulation. */
__attribute__((noinline)) void
matmulNaive(const double* a, const double* b, double* c, std::size_t d)
{
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < d; ++k)
                acc += a[i * d + k] * b[k * d + j];
            c[i * d + j] = acc;
        }
    }
}

} // namespace

void
expmNaive(const float* a, std::size_t d, float* out)
{
    if (d == 0)
        return;
    const std::size_t n2 = d * d;
    std::vector<double> scaled(n2);
    for (std::size_t i = 0; i < n2; ++i)
        scaled[i] = a[i];

    // Fixed scaling by 2^6 regardless of norm (no adaptivity), full
    // 18-term series, naive products throughout.
    constexpr int squarings = 6;
    const double factor = std::ldexp(1.0, -squarings);
    for (double& v : scaled)
        v *= factor;

    std::vector<double> result(n2, 0.0);
    for (std::size_t i = 0; i < d; ++i)
        result[i * d + i] = 1.0;
    std::vector<double> power(scaled);
    std::vector<double> temp(n2);
    double factorial = 1.0;
    constexpr int kTerms = 18;
    for (int term = 1; term <= kTerms; ++term) {
        factorial *= term;
        for (std::size_t i = 0; i < n2; ++i)
            result[i] += power[i] / factorial;
        if (term < kTerms) {
            matmulNaive(power.data(), scaled.data(), temp.data(), d);
            power.swap(temp);
        }
    }
    for (int s = 0; s < squarings; ++s) {
        matmulNaive(result.data(), result.data(), temp.data(), d);
        result.swap(temp);
    }
    for (std::size_t i = 0; i < n2; ++i)
        out[i] = static_cast<float>(result[i]);
}

void
expm(const float* a, std::size_t d, float* out)
{
    const std::size_t n2 = d * d;
    std::vector<double> input(n2);
    std::vector<double> output(n2);
    for (std::size_t i = 0; i < n2; ++i)
        input[i] = a[i];
    expmDouble(input.data(), d, output.data());
    for (std::size_t i = 0; i < n2; ++i)
        out[i] = static_cast<float>(output[i]);
}

double
traceExpm(const float* a, std::size_t d)
{
    const std::size_t n2 = d * d;
    std::vector<double> input(n2);
    std::vector<double> output(n2);
    for (std::size_t i = 0; i < n2; ++i)
        input[i] = a[i];
    expmDouble(input.data(), d, output.data());
    double trace = 0.0;
    for (std::size_t i = 0; i < d; ++i)
        trace += output[i * d + i];
    return trace;
}

} // namespace smoothe::ad
