#include "autodiff/tape.hpp"

#include <cmath>
#include <sstream>

#include "autodiff/exec.hpp"
#include "check/contracts.hpp"
#include "obs/metrics.hpp"

namespace smoothe::ad {

void
Tape::clear()
{
    nodes_.clear();
}

const Tensor&
Tape::value(VarId id) const
{
    return nodes_[static_cast<std::size_t>(id)].value;
}

const Tensor&
Tape::grad(VarId id) const
{
    return nodes_[static_cast<std::size_t>(id)].grad;
}

VarId
Tape::push(Node node)
{
    // Every tape node funnels through here; cache the metric refs so the
    // per-node cost is two relaxed atomic adds.
    static obs::Counter& nodeCount = obs::counter("tape.nodes");
    static obs::Counter& byteCount = obs::counter("tape.bytes");
    nodeCount.add(1);
    byteCount.add(node.value.size() * sizeof(float));
    nodes_.push_back(std::move(node));
    return static_cast<VarId>(nodes_.size() - 1);
}

Tensor&
Tape::ensureGrad(VarId id)
{
    Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.grad.empty())
        node.grad = Tensor(node.value.rows(), node.value.cols(), arena_);
    return node.grad;
}

void
Tape::compute(Node& node)
{
    exec::ForwardArgs args{node};
    args.a = node.in0 >= 0
                 ? &nodes_[static_cast<std::size_t>(node.in0)].value
                 : nullptr;
    args.b = node.in1 >= 0
                 ? &nodes_[static_cast<std::size_t>(node.in1)].value
                 : nullptr;
    args.value = &node.value;
    args.saved = &node.saved;
    args.savedIdx = &node.savedIdx;
    args.backend = backend_;
    exec::forwardOp(args);
}

VarId
Tape::leaf(Param* param)
{
    SMOOTHE_CHECK(param != nullptr, "leaf() needs a Param");
    Node node;
    node.op = Op::Leaf;
    node.param = param;
    node.value = param->value;
    return push(std::move(node));
}

VarId
Tape::constant(Tensor value)
{
    Node node;
    node.op = Op::Constant;
    node.value = std::move(value);
    return push(std::move(node));
}

VarId
Tape::input(Tensor value, std::string name)
{
    SMOOTHE_CHECK(!name.empty(), "input() needs a slot name");
    Node node;
    node.op = Op::Input;
    node.inputName = std::move(name);
    node.value = std::move(value);
    return push(std::move(node));
}

VarId
Tape::add(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "add: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Add;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::sub(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "sub: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Sub;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::mul(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "mul: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Mul;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::scale(VarId a, float alpha)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::Scale;
    node.in0 = a;
    node.alpha = alpha;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::addScalar(VarId a, float alpha)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::AddScalar;
    node.in0 = a;
    node.alpha = alpha;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::relu(VarId a)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::Relu;
    node.in0 = a;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::mulConst(VarId a, Tensor c)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(c.cols() == av.cols() &&
                       (c.rows() == av.rows() || c.rows() == 1),
                   "mulConst: %zux%zu against %zux%zu", c.rows(), c.cols(),
                   av.rows(), av.cols());
    Node node;
    node.op = Op::MulConst;
    node.in0 = a;
    node.constTensor = std::move(c);
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::addConst(VarId a, Tensor c)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(c.cols() == av.cols() &&
                       (c.rows() == av.rows() || c.rows() == 1),
                   "addConst: %zux%zu against %zux%zu", c.rows(), c.cols(),
                   av.rows(), av.cols());
    Node node;
    node.op = Op::AddConst;
    node.in0 = a;
    node.constTensor = std::move(c);
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::dotRowsConst(VarId a, std::vector<float> u)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(u.size() == av.cols(),
                   "dotRowsConst: %zu weights for %zu cols", u.size(),
                   av.cols());
    Node node;
    node.op = Op::DotRowsConst;
    node.in0 = a;
    node.constVec = std::move(u);
    node.value = Tensor(av.rows(), 1, arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::sumAll(VarId a)
{
    Node node;
    node.op = Op::SumAll;
    node.in0 = a;
    node.value = Tensor(1, 1, arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::meanRows(VarId a)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::MeanRows;
    node.in0 = a;
    node.value = Tensor(1, av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::segmentSoftmax(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SegmentSoftmax;
    node.in0 = a;
    node.segs = segs;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::segmentProductComplement(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SegmentProductComplement;
    node.in0 = a;
    node.segs = segs;
    node.value = Tensor(av.rows(), segs->numSegments(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::segmentMaxGather(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SegmentMaxGather;
    node.in0 = a;
    node.segs = segs;
    node.value = Tensor(av.rows(), segs->numSegments(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::gatherCols(VarId a, const std::vector<std::uint32_t>* index)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::GatherCols;
    node.in0 = a;
    node.index = index;
    node.value = Tensor(av.rows(), index->size(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::matmul(VarId a, VarId w)
{
    const Tensor& av = value(a);
    const Tensor& wv = value(w);
    SMOOTHE_ASSERT(av.cols() == wv.rows(), "matmul: %zu cols times %zu rows",
                   av.cols(), wv.rows());
    Node node;
    node.op = Op::MatMul;
    node.in0 = a;
    node.in1 = w;
    node.value = Tensor(av.rows(), wv.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::addRowBroadcast(VarId a, VarId bias)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(bias);
    SMOOTHE_ASSERT(bv.rows() == 1 && bv.cols() == av.cols(),
                   "addRowBroadcast: bias %zux%zu for %zu cols", bv.rows(),
                   bv.cols(), av.cols());
    Node node;
    node.op = Op::AddRowBroadcast;
    node.in0 = a;
    node.in1 = bias;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::scatterMatrix(VarId a, const std::vector<MatrixEntry>* entries,
                    std::size_t dim, bool mean_over_rows)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::ScatterMatrix;
    node.in0 = a;
    node.entries = entries;
    node.dim = dim;
    node.meanOverRows = mean_over_rows;
    const std::size_t outRows = mean_over_rows ? 1 : av.rows();
    node.value = Tensor(outRows, dim * dim, arena_);
    compute(node);
    return push(std::move(node));
}

VarId
Tape::trExpm(VarId a, std::size_t dim)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(av.cols() == dim * dim, "trExpm: %zu cols is not %zu^2",
                   av.cols(), dim);
    Node node;
    node.op = Op::TrExpm;
    node.in0 = a;
    node.dim = dim;
    node.value = Tensor(av.rows(), 1, arena_);
    node.saved = Tensor(av.rows(), dim * dim, arena_);
    compute(node);
    return push(std::move(node));
}

std::optional<std::string>
Tape::checkInvariants(bool screen_values) const
{
    auto problem = [](std::size_t id, const std::string& what)
        -> std::optional<std::string> {
        std::ostringstream oss;
        oss << "tape node " << id << ": " << what;
        return oss.str();
    };
    auto shape = [](const Tensor& t) {
        return std::to_string(t.rows()) + "x" + std::to_string(t.cols());
    };

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];

        // Topological order: the tape's construction order is its
        // evaluation order, so inputs must strictly precede users.
        for (VarId in : {node.in0, node.in1}) {
            if (in >= 0 && static_cast<std::size_t>(in) >= i)
                return problem(i, "input " + std::to_string(in) +
                                      " does not precede it");
        }
        const bool needsIn0 = node.op != Op::Leaf &&
                              node.op != Op::Constant &&
                              node.op != Op::Input;
        if (needsIn0 && node.in0 < 0)
            return problem(i, "operation is missing its input");
        const bool needsIn1 = node.op == Op::Add || node.op == Op::Sub ||
                              node.op == Op::Mul || node.op == Op::MatMul ||
                              node.op == Op::AddRowBroadcast;
        if (needsIn1 && node.in1 < 0)
            return problem(i, "binary operation is missing input 1");

        const Tensor* a = node.in0 >= 0
                              ? &nodes_[static_cast<std::size_t>(node.in0)]
                                     .value
                              : nullptr;
        const Tensor* b = node.in1 >= 0
                              ? &nodes_[static_cast<std::size_t>(node.in1)]
                                     .value
                              : nullptr;

        // Per-op operand presence and shape consistency.
        switch (node.op) {
          case Op::Leaf:
            if (node.param == nullptr)
                return problem(i, "leaf without a Param");
            break;
          case Op::Constant:
            break;
          case Op::Input:
            if (node.inputName.empty())
                return problem(i, "input slot without a name");
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            if (a->rows() != b->rows() || a->cols() != b->cols())
                return problem(i, "elementwise operands " + shape(*a) +
                                      " vs " + shape(*b));
            break;
          case Op::SegmentSoftmax:
          case Op::SegmentProductComplement:
          case Op::SegmentMaxGather:
            if (node.segs == nullptr)
                return problem(i, "segment op without a SegmentIndex");
            if (node.value.rows() != a->rows())
                return problem(i, "segment op changed the batch size");
            break;
          case Op::GatherCols:
            if (node.index == nullptr)
                return problem(i, "gather without an index");
            if (node.value.cols() != node.index->size())
                return problem(i, "gather output has " +
                                      std::to_string(node.value.cols()) +
                                      " cols for " +
                                      std::to_string(node.index->size()) +
                                      " indices");
            break;
          case Op::MatMul:
            if (a->cols() != b->rows())
                return problem(i, "matmul operands " + shape(*a) + " x " +
                                      shape(*b));
            if (node.value.rows() != a->rows() ||
                node.value.cols() != b->cols())
                return problem(i, "matmul output " + shape(node.value));
            break;
          case Op::ScatterMatrix:
            if (node.entries == nullptr)
                return problem(i, "scatter without entries");
            if (node.value.cols() != node.dim * node.dim)
                return problem(i, "scatter output is not dim^2 wide");
            break;
          case Op::TrExpm:
            if (a->cols() != node.dim * node.dim)
                return problem(i, "trExpm input is not dim^2 wide");
            if (node.value.cols() != 1)
                return problem(i, "trExpm output is not a column");
            break;
          case Op::DotRowsConst:
            if (node.constVec.size() != a->cols())
                return problem(i, "dotRows weight length mismatch");
            break;
          default:
            // Same-shape unary ops (FusedAffine/FusedMulAddConst exist
            // only in compiled Programs, but share this shape rule).
            if (a != nullptr && (node.value.rows() != a->rows() ||
                                 node.value.cols() != a->cols()) &&
                node.op != Op::SumAll && node.op != Op::MeanRows)
                return problem(i, "unary op output " + shape(node.value) +
                                      " for input " + shape(*a));
            break;
        }

        if (screen_values) {
            const float* data = node.value.data();
            for (std::size_t k = 0; k < node.value.size(); ++k) {
                if (!std::isfinite(data[k]))
                    return problem(i, "non-finite forward value at flat " +
                                          std::to_string(k));
            }
        }
    }
    return std::nullopt;
}

void
Tape::backward(VarId root)
{
    SMOOTHE_CHECK(root >= 0 && static_cast<std::size_t>(root) < nodes_.size(),
                  "backward: node %d not on this %zu-node tape", root,
                  nodes_.size());
    SMOOTHE_DCHECK_OK(checkInvariants(/*screen_values=*/true));
    obs::counter("tape.backward.calls").add(1);
    ensureGrad(root).fill(1.0f);
    for (VarId id = root; id >= 0; --id) {
        Node& node = nodes_[static_cast<std::size_t>(id)];
        if (node.grad.empty())
            continue; // nothing flowed into this node
        backwardNode(node);
    }
}

void
Tape::backwardNode(Node& node)
{
    exec::BackwardArgs args{node, node.grad};
    args.a = node.in0 >= 0
                 ? &nodes_[static_cast<std::size_t>(node.in0)].value
                 : nullptr;
    args.b = node.in1 >= 0
                 ? &nodes_[static_cast<std::size_t>(node.in1)].value
                 : nullptr;
    args.value = &node.value;
    args.saved = &node.saved;
    args.savedIdx = &node.savedIdx;
    args.ga = node.in0 >= 0 ? &ensureGrad(node.in0) : nullptr;
    args.gb = node.in1 >= 0 ? &ensureGrad(node.in1) : nullptr;
    args.backend = backend_;
    exec::backwardOp(args);
}

} // namespace smoothe::ad
