#include "autodiff/tape.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "autodiff/matexp.hpp"
#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::ad {

namespace {

/**
 * Flat elements per parallel task for elementwise kernels. Fixed (never
 * derived from the worker count) so the work partition — and therefore the
 * float result — is identical for every thread count.
 */
constexpr std::size_t kElemGrain = std::size_t{1} << 15;

/** Batch rows per parallel task, sized so a task touches ~kElemGrain
 *  elements. */
std::size_t
rowGrain(std::size_t cols)
{
    return std::max<std::size_t>(1,
                                 kElemGrain / std::max<std::size_t>(1, cols));
}

/**
 * Runs body over chunks of [0, n): on the global pool for the Vectorized
 * backend, inline as one chunk for the Scalar baseline (which models an
 * unoptimized single-stream interpreter).
 */
void
parallelChunks(bool parallel, std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& body)
{
    if (parallel)
        util::ThreadPool::global().parallelForChunks(0, n, grain, body);
    else
        body(0, n);
}

/**
 * Deliberately slow per-element application used by the Scalar backend:
 * the function-pointer call per element defeats vectorization and fusion,
 * mimicking an unoptimized eager interpreter (the paper's CPU baseline in
 * Figure 6).
 */
__attribute__((noinline)) void
scalarApply(float (*f)(float, float), const float* a, const float* b,
            float* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = f(a[i], b ? b[i] : 0.0f);
}

float opAdd(float x, float y) { return x + y; }
float opSub(float x, float y) { return x - y; }
float opMul(float x, float y) { return x * y; }
float opRelu(float x, float) { return x > 0.0f ? x : 0.0f; }

} // namespace

void
Tape::clear()
{
    nodes_.clear();
}

const Tensor&
Tape::value(VarId id) const
{
    return nodes_[static_cast<std::size_t>(id)].value;
}

const Tensor&
Tape::grad(VarId id) const
{
    return nodes_[static_cast<std::size_t>(id)].grad;
}

VarId
Tape::push(Node node)
{
    // Every tape node funnels through here; cache the metric refs so the
    // per-node cost is two relaxed atomic adds.
    static obs::Counter& nodeCount = obs::counter("tape.nodes");
    static obs::Counter& byteCount = obs::counter("tape.bytes");
    nodeCount.add(1);
    byteCount.add(node.value.size() * sizeof(float));
    nodes_.push_back(std::move(node));
    return static_cast<VarId>(nodes_.size() - 1);
}

Tensor&
Tape::ensureGrad(VarId id)
{
    Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.grad.empty())
        node.grad = Tensor(node.value.rows(), node.value.cols(), arena_);
    return node.grad;
}

VarId
Tape::leaf(Param* param)
{
    SMOOTHE_CHECK(param != nullptr, "leaf() needs a Param");
    Node node;
    node.op = Op::Leaf;
    node.param = param;
    node.value = param->value;
    return push(std::move(node));
}

VarId
Tape::constant(Tensor value)
{
    Node node;
    node.op = Op::Constant;
    node.value = std::move(value);
    return push(std::move(node));
}

VarId
Tape::add(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "add: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Add;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    if (backend_ == Backend::Scalar) {
        scalarApply(opAdd, av.data(), bv.data(), node.value.data(),
                    av.size());
    } else {
        const float* __restrict x = av.data();
        const float* __restrict y = bv.data();
        float* __restrict o = node.value.data();
        parallelChunks(true, av.size(), kElemGrain,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               o[i] = x[i] + y[i];
                       });
    }
    return push(std::move(node));
}

VarId
Tape::sub(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "sub: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Sub;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    if (backend_ == Backend::Scalar) {
        scalarApply(opSub, av.data(), bv.data(), node.value.data(),
                    av.size());
    } else {
        const float* __restrict x = av.data();
        const float* __restrict y = bv.data();
        float* __restrict o = node.value.data();
        parallelChunks(true, av.size(), kElemGrain,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               o[i] = x[i] - y[i];
                       });
    }
    return push(std::move(node));
}

VarId
Tape::mul(VarId a, VarId b)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(b);
    SMOOTHE_ASSERT(av.rows() == bv.rows() && av.cols() == bv.cols(),
                   "mul: %zux%zu vs %zux%zu", av.rows(), av.cols(),
                   bv.rows(), bv.cols());
    Node node;
    node.op = Op::Mul;
    node.in0 = a;
    node.in1 = b;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    if (backend_ == Backend::Scalar) {
        scalarApply(opMul, av.data(), bv.data(), node.value.data(),
                    av.size());
    } else {
        const float* __restrict x = av.data();
        const float* __restrict y = bv.data();
        float* __restrict o = node.value.data();
        parallelChunks(true, av.size(), kElemGrain,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               o[i] = x[i] * y[i];
                       });
    }
    return push(std::move(node));
}

VarId
Tape::scale(VarId a, float alpha)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::Scale;
    node.in0 = a;
    node.alpha = alpha;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    const float* x = av.data();
    float* o = node.value.data();
    parallelChunks(backend_ != Backend::Scalar, av.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = alpha * x[i];
                   });
    return push(std::move(node));
}

VarId
Tape::addScalar(VarId a, float alpha)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::AddScalar;
    node.in0 = a;
    node.alpha = alpha;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    const float* x = av.data();
    float* o = node.value.data();
    parallelChunks(backend_ != Backend::Scalar, av.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] + alpha;
                   });
    return push(std::move(node));
}

VarId
Tape::relu(VarId a)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::Relu;
    node.in0 = a;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    if (backend_ == Backend::Scalar) {
        scalarApply(opRelu, av.data(), nullptr, node.value.data(),
                    av.size());
    } else {
        const float* __restrict x = av.data();
        float* __restrict o = node.value.data();
        parallelChunks(true, av.size(), kElemGrain,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               o[i] = x[i] > 0.0f ? x[i] : 0.0f;
                       });
    }
    return push(std::move(node));
}

VarId
Tape::mulConst(VarId a, Tensor c)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(c.cols() == av.cols() &&
                       (c.rows() == av.rows() || c.rows() == 1),
                   "mulConst: %zux%zu against %zux%zu", c.rows(), c.cols(),
                   av.rows(), av.cols());
    Node node;
    node.op = Op::MulConst;
    node.in0 = a;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    parallelChunks(backend_ != Backend::Scalar, av.rows(),
                   rowGrain(av.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = av.row(r);
                           const float* m = c.row(c.rows() == 1 ? 0 : r);
                           float* o = node.value.row(r);
                           for (std::size_t i = 0; i < av.cols(); ++i)
                               o[i] = x[i] * m[i];
                       }
                   });
    node.constTensor = std::move(c);
    return push(std::move(node));
}

VarId
Tape::addConst(VarId a, Tensor c)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(c.cols() == av.cols() &&
                       (c.rows() == av.rows() || c.rows() == 1),
                   "addConst: %zux%zu against %zux%zu", c.rows(), c.cols(),
                   av.rows(), av.cols());
    Node node;
    node.op = Op::AddConst;
    node.in0 = a;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    parallelChunks(backend_ != Backend::Scalar, av.rows(),
                   rowGrain(av.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = av.row(r);
                           const float* m = c.row(c.rows() == 1 ? 0 : r);
                           float* o = node.value.row(r);
                           for (std::size_t i = 0; i < av.cols(); ++i)
                               o[i] = x[i] + m[i];
                       }
                   });
    node.constTensor = std::move(c);
    return push(std::move(node));
}

VarId
Tape::dotRowsConst(VarId a, std::vector<float> u)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(u.size() == av.cols(), "dotRowsConst: %zu weights for %zu cols",
                   u.size(), av.cols());
    Node node;
    node.op = Op::DotRowsConst;
    node.in0 = a;
    node.value = Tensor(av.rows(), 1, arena_);
    if (backend_ == Backend::Scalar) {
        for (std::size_t r = 0; r < av.rows(); ++r) {
            double acc = 0.0;
            for (std::size_t i = 0; i < av.cols(); ++i)
                acc += static_cast<double>(av.at(r, i)) * u[i];
            node.value.at(r, 0) = static_cast<float>(acc);
        }
    } else {
        const float* uv = u.data();
        parallelChunks(true, av.rows(), rowGrain(av.cols()),
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t r = begin; r < end; ++r) {
                               const float* __restrict x = av.row(r);
                               float acc = 0.0f;
                               for (std::size_t i = 0; i < av.cols(); ++i)
                                   acc += x[i] * uv[i];
                               node.value.at(r, 0) = acc;
                           }
                       });
    }
    node.constVec = std::move(u);
    return push(std::move(node));
}

VarId
Tape::sumAll(VarId a)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SumAll;
    node.in0 = a;
    node.value = Tensor(1, 1, arena_);
    node.value.at(0, 0) = static_cast<float>(av.sum());
    return push(std::move(node));
}

VarId
Tape::meanRows(VarId a)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::MeanRows;
    node.in0 = a;
    node.value = Tensor(1, av.cols(), arena_);
    const float inv = av.rows() ? 1.0f / static_cast<float>(av.rows()) : 0.0f;
    for (std::size_t r = 0; r < av.rows(); ++r) {
        const float* x = av.row(r);
        float* o = node.value.row(0);
        for (std::size_t i = 0; i < av.cols(); ++i)
            o[i] += x[i] * inv;
    }
    return push(std::move(node));
}

VarId
Tape::segmentSoftmax(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    static obs::Counter& calls = obs::counter("kernel.softmax.calls");
    static obs::Counter& bytes = obs::counter("kernel.softmax.bytes");
    calls.add(1);
    bytes.add(av.size() * sizeof(float));
    Node node;
    node.op = Op::SegmentSoftmax;
    node.in0 = a;
    node.segs = segs;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    const std::size_t numSegments = segs->numSegments();
    parallelChunks(
        backend_ != Backend::Scalar, av.rows(), rowGrain(av.cols()),
        [&](std::size_t rowBegin, std::size_t rowEnd) {
            for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                const float* x = av.row(r);
                float* o = node.value.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    const std::uint32_t begin = segs->offsets[s];
                    const std::uint32_t end = segs->offsets[s + 1];
                    if (begin == end)
                        continue;
                    float maxVal = -std::numeric_limits<float>::infinity();
                    for (std::uint32_t e = begin; e < end; ++e)
                        maxVal = std::max(maxVal, x[segs->items[e]]);
                    float denom = 0.0f;
                    for (std::uint32_t e = begin; e < end; ++e) {
                        const float ev = std::exp(x[segs->items[e]] - maxVal);
                        o[segs->items[e]] = ev;
                        denom += ev;
                    }
                    const float inv = 1.0f / denom;
                    for (std::uint32_t e = begin; e < end; ++e)
                        o[segs->items[e]] *= inv;
                }
            }
        });
    return push(std::move(node));
}

VarId
Tape::segmentProductComplement(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SegmentProductComplement;
    node.in0 = a;
    node.segs = segs;
    const std::size_t numSegments = segs->numSegments();
    node.value = Tensor(av.rows(), numSegments, arena_);
    parallelChunks(
        backend_ != Backend::Scalar, av.rows(), rowGrain(numSegments),
        [&](std::size_t rowBegin, std::size_t rowEnd) {
            for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                const float* x = av.row(r);
                float* o = node.value.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    float prod = 1.0f;
                    for (std::uint32_t e = segs->offsets[s];
                         e < segs->offsets[s + 1]; ++e)
                        prod *= (1.0f - x[segs->items[e]]);
                    o[s] = prod;
                }
            }
        });
    return push(std::move(node));
}

VarId
Tape::segmentMaxGather(VarId a, const SegmentIndex* segs)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::SegmentMaxGather;
    node.in0 = a;
    node.segs = segs;
    const std::size_t numSegments = segs->numSegments();
    node.value = Tensor(av.rows(), numSegments, arena_);
    node.savedIdx.assign(av.rows() * numSegments,
                         std::numeric_limits<std::uint32_t>::max());
    parallelChunks(
        backend_ != Backend::Scalar, av.rows(), rowGrain(numSegments),
        [&](std::size_t rowBegin, std::size_t rowEnd) {
            for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                const float* x = av.row(r);
                float* o = node.value.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    const std::uint32_t begin = segs->offsets[s];
                    const std::uint32_t end = segs->offsets[s + 1];
                    if (begin == end) {
                        o[s] = 0.0f;
                        continue;
                    }
                    float best = -std::numeric_limits<float>::infinity();
                    std::uint32_t arg = segs->items[begin];
                    for (std::uint32_t e = begin; e < end; ++e) {
                        const float v = x[segs->items[e]];
                        if (v > best) {
                            best = v;
                            arg = segs->items[e];
                        }
                    }
                    o[s] = best;
                    node.savedIdx[r * numSegments + s] = arg;
                }
            }
        });
    return push(std::move(node));
}

VarId
Tape::gatherCols(VarId a, const std::vector<std::uint32_t>* index)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::GatherCols;
    node.in0 = a;
    node.index = index;
    node.value = Tensor(av.rows(), index->size(), arena_);
    parallelChunks(backend_ != Backend::Scalar, av.rows(),
                   rowGrain(index->size()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = av.row(r);
                           float* o = node.value.row(r);
                           for (std::size_t i = 0; i < index->size(); ++i)
                               o[i] = x[(*index)[i]];
                       }
                   });
    return push(std::move(node));
}

VarId
Tape::matmul(VarId a, VarId w)
{
    const Tensor& av = value(a);
    const Tensor& wv = value(w);
    SMOOTHE_ASSERT(av.cols() == wv.rows(), "matmul: %zu cols times %zu rows",
                   av.cols(), wv.rows());
    Node node;
    node.op = Op::MatMul;
    node.in0 = a;
    node.in1 = w;
    node.value = Tensor(av.rows(), wv.cols(), arena_);
    if (backend_ == Backend::Scalar) {
        for (std::size_t b = 0; b < av.rows(); ++b) {
            for (std::size_t h = 0; h < wv.cols(); ++h) {
                double acc = 0.0;
                for (std::size_t k = 0; k < av.cols(); ++k)
                    acc += static_cast<double>(av.at(b, k)) * wv.at(k, h);
                node.value.at(b, h) = static_cast<float>(acc);
            }
        }
    } else {
        // ikj order with restrict pointers for vectorizable inner loop,
        // parallel over output rows (each task owns disjoint rows).
        parallelChunks(
            true, av.rows(), rowGrain(av.cols() * wv.cols()),
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t b = begin; b < end; ++b) {
                    const float* __restrict aRow = av.row(b);
                    float* __restrict oRow = node.value.row(b);
                    for (std::size_t k = 0; k < av.cols(); ++k) {
                        const float av_k = aRow[k];
                        if (av_k == 0.0f)
                            continue;
                        const float* __restrict wRow = wv.row(k);
                        for (std::size_t h = 0; h < wv.cols(); ++h)
                            oRow[h] += av_k * wRow[h];
                    }
                }
            });
    }
    return push(std::move(node));
}

VarId
Tape::addRowBroadcast(VarId a, VarId bias)
{
    const Tensor& av = value(a);
    const Tensor& bv = value(bias);
    SMOOTHE_ASSERT(bv.rows() == 1 && bv.cols() == av.cols(),
                   "addRowBroadcast: bias %zux%zu for %zu cols", bv.rows(),
                   bv.cols(), av.cols());
    Node node;
    node.op = Op::AddRowBroadcast;
    node.in0 = a;
    node.in1 = bias;
    node.value = Tensor(av.rows(), av.cols(), arena_);
    for (std::size_t r = 0; r < av.rows(); ++r) {
        const float* x = av.row(r);
        const float* m = bv.row(0);
        float* o = node.value.row(r);
        for (std::size_t i = 0; i < av.cols(); ++i)
            o[i] = x[i] + m[i];
    }
    return push(std::move(node));
}

VarId
Tape::scatterMatrix(VarId a, const std::vector<MatrixEntry>* entries,
                    std::size_t dim, bool mean_over_rows)
{
    const Tensor& av = value(a);
    Node node;
    node.op = Op::ScatterMatrix;
    node.in0 = a;
    node.entries = entries;
    node.dim = dim;
    node.meanOverRows = mean_over_rows;
    const std::size_t outRows = mean_over_rows ? 1 : av.rows();
    node.value = Tensor(outRows, dim * dim, arena_);
    if (mean_over_rows) {
        const float inv =
            av.rows() ? 1.0f / static_cast<float>(av.rows()) : 0.0f;
        float* o = node.value.row(0);
        for (const MatrixEntry& entry : *entries) {
            float acc = 0.0f;
            for (std::size_t r = 0; r < av.rows(); ++r)
                acc += av.at(r, entry.column);
            o[entry.position] += acc * inv;
        }
    } else {
        parallelChunks(backend_ != Backend::Scalar, av.rows(),
                       rowGrain(entries->size()),
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t r = begin; r < end; ++r) {
                               const float* x = av.row(r);
                               float* o = node.value.row(r);
                               for (const MatrixEntry& entry : *entries)
                                   o[entry.position] += x[entry.column];
                           }
                       });
    }
    return push(std::move(node));
}

VarId
Tape::trExpm(VarId a, std::size_t dim)
{
    const Tensor& av = value(a);
    SMOOTHE_ASSERT(av.cols() == dim * dim,
                   "trExpm: %zu cols is not %zu^2", av.cols(), dim);
    static obs::Counter& calls = obs::counter("kernel.matexp.calls");
    static obs::Counter& bytes = obs::counter("kernel.matexp.bytes");
    calls.add(1);
    bytes.add(av.size() * sizeof(float));
    Node node;
    node.op = Op::TrExpm;
    node.in0 = a;
    node.dim = dim;
    node.value = Tensor(av.rows(), 1, arena_);
    node.saved = Tensor(av.rows(), dim * dim, arena_);
    // Each row's power series is independent; one matrix per task (each
    // exponential is O(dim^3), far above any sensible grain).
    parallelChunks(
        backend_ != Backend::Scalar, av.rows(), 1,
        [&](std::size_t rowBegin, std::size_t rowEnd) {
            for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                if (backend_ == Backend::Scalar)
                    expmNaive(av.row(r), dim, node.saved.row(r));
                else
                    expm(av.row(r), dim, node.saved.row(r));
                double trace = 0.0;
                for (std::size_t i = 0; i < dim; ++i)
                    trace += node.saved.at(r, i * dim + i);
                node.value.at(r, 0) = static_cast<float>(trace);
            }
        });
    return push(std::move(node));
}

std::optional<std::string>
Tape::checkInvariants(bool screen_values) const
{
    auto problem = [](std::size_t id, const std::string& what)
        -> std::optional<std::string> {
        std::ostringstream oss;
        oss << "tape node " << id << ": " << what;
        return oss.str();
    };
    auto shape = [](const Tensor& t) {
        return std::to_string(t.rows()) + "x" + std::to_string(t.cols());
    };

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];

        // Topological order: the tape's construction order is its
        // evaluation order, so inputs must strictly precede users.
        for (VarId in : {node.in0, node.in1}) {
            if (in >= 0 && static_cast<std::size_t>(in) >= i)
                return problem(i, "input " + std::to_string(in) +
                                      " does not precede it");
        }
        const bool needsIn0 =
            node.op != Op::Leaf && node.op != Op::Constant;
        if (needsIn0 && node.in0 < 0)
            return problem(i, "operation is missing its input");
        const bool needsIn1 = node.op == Op::Add || node.op == Op::Sub ||
                              node.op == Op::Mul || node.op == Op::MatMul ||
                              node.op == Op::AddRowBroadcast;
        if (needsIn1 && node.in1 < 0)
            return problem(i, "binary operation is missing input 1");

        const Tensor* a = node.in0 >= 0
                              ? &nodes_[static_cast<std::size_t>(node.in0)]
                                     .value
                              : nullptr;
        const Tensor* b = node.in1 >= 0
                              ? &nodes_[static_cast<std::size_t>(node.in1)]
                                     .value
                              : nullptr;

        // Per-op operand presence and shape consistency.
        switch (node.op) {
          case Op::Leaf:
            if (node.param == nullptr)
                return problem(i, "leaf without a Param");
            break;
          case Op::Constant:
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            if (a->rows() != b->rows() || a->cols() != b->cols())
                return problem(i, "elementwise operands " + shape(*a) +
                                      " vs " + shape(*b));
            break;
          case Op::SegmentSoftmax:
          case Op::SegmentProductComplement:
          case Op::SegmentMaxGather:
            if (node.segs == nullptr)
                return problem(i, "segment op without a SegmentIndex");
            if (node.value.rows() != a->rows())
                return problem(i, "segment op changed the batch size");
            break;
          case Op::GatherCols:
            if (node.index == nullptr)
                return problem(i, "gather without an index");
            if (node.value.cols() != node.index->size())
                return problem(i, "gather output has " +
                                      std::to_string(node.value.cols()) +
                                      " cols for " +
                                      std::to_string(node.index->size()) +
                                      " indices");
            break;
          case Op::MatMul:
            if (a->cols() != b->rows())
                return problem(i, "matmul operands " + shape(*a) + " x " +
                                      shape(*b));
            if (node.value.rows() != a->rows() ||
                node.value.cols() != b->cols())
                return problem(i, "matmul output " + shape(node.value));
            break;
          case Op::ScatterMatrix:
            if (node.entries == nullptr)
                return problem(i, "scatter without entries");
            if (node.value.cols() != node.dim * node.dim)
                return problem(i, "scatter output is not dim^2 wide");
            break;
          case Op::TrExpm:
            if (a->cols() != node.dim * node.dim)
                return problem(i, "trExpm input is not dim^2 wide");
            if (node.value.cols() != 1)
                return problem(i, "trExpm output is not a column");
            break;
          case Op::DotRowsConst:
            if (node.constVec.size() != a->cols())
                return problem(i, "dotRows weight length mismatch");
            break;
          default:
            // Same-shape unary ops.
            if (a != nullptr && (node.value.rows() != a->rows() ||
                                 node.value.cols() != a->cols()) &&
                node.op != Op::SumAll && node.op != Op::MeanRows)
                return problem(i, "unary op output " + shape(node.value) +
                                      " for input " + shape(*a));
            break;
        }

        if (screen_values) {
            const float* data = node.value.data();
            for (std::size_t k = 0; k < node.value.size(); ++k) {
                if (!std::isfinite(data[k]))
                    return problem(i, "non-finite forward value at flat " +
                                          std::to_string(k));
            }
        }
    }
    return std::nullopt;
}

void
Tape::backward(VarId root)
{
    SMOOTHE_CHECK(root >= 0 && static_cast<std::size_t>(root) < nodes_.size(),
                  "backward: node %d not on this %zu-node tape", root,
                  nodes_.size());
    SMOOTHE_DCHECK_OK(checkInvariants(/*screen_values=*/true));
    obs::counter("tape.backward.calls").add(1);
    ensureGrad(root).fill(1.0f);
    for (VarId id = root; id >= 0; --id) {
        Node& node = nodes_[static_cast<std::size_t>(id)];
        if (node.grad.empty())
            continue; // nothing flowed into this node
        backwardNode(node);
    }
}

void
Tape::backwardNode(Node& node)
{
    const Tensor& g = node.grad;
    switch (node.op) {
      case Op::Leaf: {
        Tensor& pg = node.param->grad;
        SMOOTHE_DCHECK(pg.rows() == g.rows() && pg.cols() == g.cols(),
                       "leaf grad shape drifted");
        float* __restrict dst = pg.data();
        const float* __restrict src = g.data();
        for (std::size_t i = 0; i < g.size(); ++i)
            dst[i] += src[i];
        break;
      }
      case Op::Constant:
        break;
      case Op::Add: {
        Tensor& ga = ensureGrad(node.in0);
        Tensor& gb = ensureGrad(node.in1);
        for (std::size_t i = 0; i < g.size(); ++i) {
            ga.data()[i] += g.data()[i];
            gb.data()[i] += g.data()[i];
        }
        break;
      }
      case Op::Sub: {
        Tensor& ga = ensureGrad(node.in0);
        Tensor& gb = ensureGrad(node.in1);
        for (std::size_t i = 0; i < g.size(); ++i) {
            ga.data()[i] += g.data()[i];
            gb.data()[i] -= g.data()[i];
        }
        break;
      }
      case Op::Mul: {
        Tensor& ga = ensureGrad(node.in0);
        Tensor& gb = ensureGrad(node.in1);
        const Tensor& av = value(node.in0);
        const Tensor& bv = value(node.in1);
        for (std::size_t i = 0; i < g.size(); ++i) {
            ga.data()[i] += g.data()[i] * bv.data()[i];
            gb.data()[i] += g.data()[i] * av.data()[i];
        }
        break;
      }
      case Op::Scale: {
        Tensor& ga = ensureGrad(node.in0);
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += node.alpha * g.data()[i];
        break;
      }
      case Op::AddScalar: {
        Tensor& ga = ensureGrad(node.in0);
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += g.data()[i];
        break;
      }
      case Op::Relu: {
        Tensor& ga = ensureGrad(node.in0);
        const Tensor& ov = node.value;
        for (std::size_t i = 0; i < g.size(); ++i) {
            if (ov.data()[i] > 0.0f)
                ga.data()[i] += g.data()[i];
        }
        break;
      }
      case Op::MulConst: {
        Tensor& ga = ensureGrad(node.in0);
        const Tensor& c = node.constTensor;
        for (std::size_t r = 0; r < g.rows(); ++r) {
            const float* m = c.row(c.rows() == 1 ? 0 : r);
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t i = 0; i < g.cols(); ++i)
                gar[i] += gr[i] * m[i];
        }
        break;
      }
      case Op::AddConst: {
        Tensor& ga = ensureGrad(node.in0);
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += g.data()[i];
        break;
      }
      case Op::DotRowsConst: {
        Tensor& ga = ensureGrad(node.in0);
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            const float gr = g.at(r, 0);
            float* gar = ga.row(r);
            const float* u = node.constVec.data();
            for (std::size_t i = 0; i < ga.cols(); ++i)
                gar[i] += gr * u[i];
        }
        break;
      }
      case Op::SumAll: {
        Tensor& ga = ensureGrad(node.in0);
        const float gr = g.at(0, 0);
        for (std::size_t i = 0; i < ga.size(); ++i)
            ga.data()[i] += gr;
        break;
      }
      case Op::MeanRows: {
        Tensor& ga = ensureGrad(node.in0);
        const float inv =
            ga.rows() ? 1.0f / static_cast<float>(ga.rows()) : 0.0f;
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            float* gar = ga.row(r);
            const float* gr = g.row(0);
            for (std::size_t i = 0; i < ga.cols(); ++i)
                gar[i] += gr[i] * inv;
        }
        break;
      }
      case Op::SegmentSoftmax: {
        Tensor& ga = ensureGrad(node.in0);
        const Tensor& y = node.value;
        const SegmentIndex* segs = node.segs;
        parallelChunks(
            backend_ != Backend::Scalar, ga.rows(), rowGrain(ga.cols()),
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float* yr = y.row(r);
                    const float* gr = g.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t s = 0; s < segs->numSegments(); ++s) {
                        const std::uint32_t begin = segs->offsets[s];
                        const std::uint32_t end = segs->offsets[s + 1];
                        if (begin == end)
                            continue;
                        float dot = 0.0f;
                        for (std::uint32_t e = begin; e < end; ++e) {
                            const std::uint32_t col = segs->items[e];
                            dot += gr[col] * yr[col];
                        }
                        for (std::uint32_t e = begin; e < end; ++e) {
                            const std::uint32_t col = segs->items[e];
                            gar[col] += yr[col] * (gr[col] - dot);
                        }
                    }
                }
            });
        break;
      }
      case Op::SegmentProductComplement: {
        Tensor& ga = ensureGrad(node.in0);
        const Tensor& x = value(node.in0);
        const SegmentIndex* segs = node.segs;
        parallelChunks(
            backend_ != Backend::Scalar, ga.rows(), rowGrain(ga.cols()),
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                // Per-chunk scratch: rows in other chunks run concurrently.
                std::vector<float> prefix;
                std::vector<float> suffix;
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float* xr = x.row(r);
                    const float* gr = g.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t s = 0; s < segs->numSegments(); ++s) {
                        const std::uint32_t begin = segs->offsets[s];
                        const std::uint32_t end = segs->offsets[s + 1];
                        const std::size_t len = end - begin;
                        if (len == 0)
                            continue;
                        prefix.assign(len + 1, 1.0f);
                        suffix.assign(len + 1, 1.0f);
                        for (std::size_t e = 0; e < len; ++e) {
                            prefix[e + 1] =
                                prefix[e] *
                                (1.0f - xr[segs->items[begin + e]]);
                        }
                        for (std::size_t e = len; e > 0; --e) {
                            suffix[e - 1] =
                                suffix[e] *
                                (1.0f - xr[segs->items[begin + e - 1]]);
                        }
                        for (std::size_t e = 0; e < len; ++e) {
                            const std::uint32_t col =
                                segs->items[begin + e];
                            // d/dx_e prod (1 - x_k) = -prod_{k!=e} (1 - x_k)
                            gar[col] +=
                                gr[s] * (-prefix[e] * suffix[e + 1]);
                        }
                    }
                }
            });
        break;
      }
      case Op::SegmentMaxGather: {
        Tensor& ga = ensureGrad(node.in0);
        const std::size_t numSegments = node.segs->numSegments();
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t s = 0; s < numSegments; ++s) {
                const std::uint32_t arg = node.savedIdx[r * numSegments + s];
                if (arg != std::numeric_limits<std::uint32_t>::max())
                    gar[arg] += gr[s];
            }
        }
        break;
      }
      case Op::GatherCols: {
        Tensor& ga = ensureGrad(node.in0);
        const auto& index = *node.index;
        for (std::size_t r = 0; r < g.rows(); ++r) {
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t i = 0; i < index.size(); ++i)
                gar[index[i]] += gr[i];
        }
        break;
      }
      case Op::MatMul: {
        Tensor& ga = ensureGrad(node.in0);
        Tensor& gw = ensureGrad(node.in1);
        const Tensor& av = value(node.in0);
        const Tensor& wv = value(node.in1);
        // grad_a = g * w^T
        for (std::size_t b = 0; b < ga.rows(); ++b) {
            const float* gr = g.row(b);
            float* gar = ga.row(b);
            for (std::size_t k = 0; k < ga.cols(); ++k) {
                const float* wRow = wv.row(k);
                float acc = 0.0f;
                for (std::size_t h = 0; h < g.cols(); ++h)
                    acc += gr[h] * wRow[h];
                gar[k] += acc;
            }
        }
        // grad_w = a^T * g
        for (std::size_t b = 0; b < av.rows(); ++b) {
            const float* aRow = av.row(b);
            const float* gr = g.row(b);
            for (std::size_t k = 0; k < av.cols(); ++k) {
                const float a_bk = aRow[k];
                if (a_bk == 0.0f)
                    continue;
                float* gwRow = gw.row(k);
                for (std::size_t h = 0; h < g.cols(); ++h)
                    gwRow[h] += a_bk * gr[h];
            }
        }
        break;
      }
      case Op::AddRowBroadcast: {
        Tensor& ga = ensureGrad(node.in0);
        Tensor& gb = ensureGrad(node.in1);
        for (std::size_t r = 0; r < g.rows(); ++r) {
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            float* gbr = gb.row(0);
            for (std::size_t i = 0; i < g.cols(); ++i) {
                gar[i] += gr[i];
                gbr[i] += gr[i];
            }
        }
        break;
      }
      case Op::ScatterMatrix: {
        Tensor& ga = ensureGrad(node.in0);
        if (node.meanOverRows) {
            const float inv =
                ga.rows() ? 1.0f / static_cast<float>(ga.rows()) : 0.0f;
            const float* gr = g.row(0);
            for (const MatrixEntry& entry : *node.entries) {
                const float flow = gr[entry.position] * inv;
                for (std::size_t r = 0; r < ga.rows(); ++r)
                    ga.at(r, entry.column) += flow;
            }
        } else {
            for (std::size_t r = 0; r < ga.rows(); ++r) {
                const float* gr = g.row(r);
                float* gar = ga.row(r);
                for (const MatrixEntry& entry : *node.entries)
                    gar[entry.column] += gr[entry.position];
            }
        }
        break;
      }
      case Op::TrExpm: {
        Tensor& ga = ensureGrad(node.in0);
        const std::size_t d = node.dim;
        parallelChunks(
            backend_ != Backend::Scalar, ga.rows(), 1,
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float gr = g.at(r, 0);
                    const float* e = node.saved.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t i = 0; i < d; ++i) {
                        for (std::size_t j = 0; j < d; ++j)
                            gar[i * d + j] += gr * e[j * d + i];
                    }
                }
            });
        break;
      }
    }
}

} // namespace smoothe::ad
