/**
 * @file
 * Dense matrix exponential (scaling-and-squaring with a Taylor/Pade-style
 * series, double-precision internals).
 *
 * Used by the NOTEARS acyclicity penalty h(A) = tr(exp(A)) - d
 * (Section 3.4). The autodiff tape exposes tr(exp(A)) as a primitive whose
 * exact gradient is exp(A)^T, so only the forward evaluation lives here.
 */

#ifndef SMOOTHE_AUTODIFF_MATEXP_HPP
#define SMOOTHE_AUTODIFF_MATEXP_HPP

#include <cstddef>
#include <vector>

namespace smoothe::ad {

/**
 * Computes out = exp(a) for a dense row-major d x d matrix.
 * Internals run in double precision; inputs/outputs are float.
 * Complexity O(d^3 * (taylor terms + squarings)).
 */
void expm(const float* a, std::size_t d, float* out);

/** Double-precision variant used by tests. */
void expmDouble(const double* a, std::size_t d, double* out);

/**
 * Deliberately unoptimized reference implementation: cache-hostile ijk
 * matrix products, no zero skipping, no norm-aware term cutoff. Used by
 * the Scalar backend to model an eager, unfused CPU execution (the
 * paper's Figure 6 "CPU baseline"); numerically equivalent to expm().
 */
void expmNaive(const float* a, std::size_t d, float* out);

/** Convenience: tr(exp(a)) for a row-major d x d matrix. */
double traceExpm(const float* a, std::size_t d);

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_MATEXP_HPP
