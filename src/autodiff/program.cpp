#include "autodiff/program.hpp"

#include <chrono>
#include <utility>

#include "autodiff/exec.hpp"
#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"

namespace smoothe::ad {

namespace {

std::uint64_t
shapeKey(std::size_t rows, std::size_t cols)
{
    return (static_cast<std::uint64_t>(rows) << 32) |
           static_cast<std::uint64_t>(cols);
}

bool
isSource(Op op)
{
    return op == Op::Leaf || op == Op::Constant || op == Op::Input;
}

/** Stable snake_case profiler name per op kind. */
const char*
kernelName(Op op)
{
    switch (op) {
      case Op::Leaf:
        return "leaf";
      case Op::Constant:
        return "constant";
      case Op::Input:
        return "input";
      case Op::Add:
        return "add";
      case Op::Sub:
        return "sub";
      case Op::Mul:
        return "mul";
      case Op::Scale:
        return "scale";
      case Op::AddScalar:
        return "add_scalar";
      case Op::Relu:
        return "relu";
      case Op::MulConst:
        return "mul_const";
      case Op::AddConst:
        return "add_const";
      case Op::DotRowsConst:
        return "dot_rows_const";
      case Op::SumAll:
        return "sum_all";
      case Op::MeanRows:
        return "mean_rows";
      case Op::SegmentSoftmax:
        return "segment_softmax";
      case Op::SegmentProductComplement:
        return "segment_product_complement";
      case Op::SegmentMaxGather:
        return "segment_max_gather";
      case Op::GatherCols:
        return "gather_cols";
      case Op::MatMul:
        return "matmul";
      case Op::AddRowBroadcast:
        return "add_row_broadcast";
      case Op::ScatterMatrix:
        return "scatter_matrix";
      case Op::TrExpm:
        return "tr_expm";
      case Op::FusedAffine:
        return "fused_affine";
      case Op::FusedMulAddConst:
        return "fused_mul_add_const";
      case Op::FusedElemChain:
        return "fused_elem_chain";
    }
    return "unknown";
}

/**
 * Ops whose forward kernel has an explicit AVX2 variant. Their profiler
 * slots get the simd::kernelSuffix() ("@avx2" when dispatched) so
 * `smoothe_report profile` shows scalar-vs-AVX2 rows side by side when
 * benches compile one Program per SIMD level.
 */
bool
hasSimdVariant(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Scale:
      case Op::AddScalar:
      case Op::Relu:
      case Op::MulConst:
      case Op::AddConst:
      case Op::FusedAffine:
      case Op::FusedMulAddConst:
      case Op::FusedElemChain:
      case Op::GatherCols:
      case Op::SegmentSoftmax:
      case Op::SegmentProductComplement:
      case Op::TrExpm:
        return true;
      default:
        return false;
    }
}

/** Static per-execution cost estimate for one op (both phases). */
struct OpCost
{
    std::uint64_t fwdFlops = 0;
    std::uint64_t fwdBytes = 0;
    std::uint64_t bwdFlops = 0;
    std::uint64_t bwdBytes = 0;
};

/**
 * Roofline-style FLOP and bytes-moved estimates from the snapshotted
 * shapes. Counts algorithmic work (one multiply + one add per MAC,
 * tensor::cost::kExpFlops per expf) and compulsory traffic (operands
 * read once, outputs written once, grad accumulators read-modify-
 * written); caches and fused passes make these upper bounds on actual
 * DRAM traffic, which is the convention roofline estimates want.
 */
OpCost
estimateOpCost(const OpNode& node, std::uint64_t rows, std::uint64_t cols,
               std::uint64_t aRows, std::uint64_t aCols,
               std::uint64_t bRows, std::uint64_t bCols)
{
    namespace cost = tensor::cost;
    const std::uint64_t F = cost::kElemBytes;
    const std::uint64_t n = rows * cols;
    const std::uint64_t a = aRows * aCols;
    const std::uint64_t b = bRows * bCols;
    OpCost c;
    switch (node.op) {
      case Op::Leaf:
        // Forward is a no-op (value aliases the Param); backward does
        // param.grad += g.
        c = {0, 0, n, 3 * F * n};
        break;
      case Op::Constant:
      case Op::Input:
        break;
      case Op::Add:
      case Op::Sub:
        c = {n, F * (a + b + n), 2 * n, 6 * F * n};
        break;
      case Op::Mul:
        c = {n, 3 * F * n, 4 * n, 10 * F * n};
        break;
      case Op::Scale:
        c = {n, 2 * F * n, 2 * n, 3 * F * n};
        break;
      case Op::AddScalar:
        c = {n, 2 * F * n, n, 3 * F * n};
        break;
      case Op::Relu:
        c = {n, 2 * F * n, 2 * n, 4 * F * n};
        break;
      case Op::MulConst:
        c = {n, 3 * F * n, 2 * n, 4 * F * n};
        break;
      case Op::AddConst:
        c = {n, 3 * F * n, n, 3 * F * n};
        break;
      case Op::DotRowsConst:
        c = {2 * a, F * (a + aCols + n), 2 * a,
             F * (2 * a + aCols + n)};
        break;
      case Op::SumAll:
        c = {a, F * a, a, F * a};
        break;
      case Op::MeanRows:
        c = {a + cols, F * (a + cols), a, F * a};
        break;
      case Op::SegmentSoftmax:
        c = {(4 + cost::kExpFlops) * a, 6 * F * a, 6 * a, 6 * F * a};
        break;
      case Op::SegmentProductComplement:
        c = {2 * a, 2 * F * a, 4 * a, 4 * F * a};
        break;
      case Op::SegmentMaxGather:
        c = {a, 2 * F * a, n, 2 * F * a};
        break;
      case Op::GatherCols:
        c = {0, 3 * F * n, n, 3 * F * n};
        break;
      case Op::MatMul: {
        const std::uint64_t flops =
            cost::matmulFlops(aRows, aCols, bCols);
        c = {flops, F * (a + b + n), 2 * flops, 2 * F * (a + b + n)};
        break;
      }
      case Op::AddRowBroadcast:
        c = {n, F * (a + b + n), 2 * n, F * (4 * n + 2 * b)};
        break;
      case Op::ScatterMatrix: {
        const std::uint64_t entries =
            node.entries ? node.entries->size() : 0;
        const std::uint64_t touched = entries * aRows;
        c = {touched, F * (touched + n), touched, F * (touched + n)};
        break;
      }
      case Op::TrExpm: {
        const std::uint64_t d = node.dim;
        const std::uint64_t flops =
            rows * cost::kExpmMatmuls * cost::matmulFlops(d, d, d);
        const std::uint64_t bytes = rows * 4 * F * d * d;
        c = {flops, bytes, flops, bytes};
        break;
      }
      case Op::FusedAffine:
        c = {2 * n, 2 * F * n, 2 * n, 3 * F * n};
        break;
      case Op::FusedMulAddConst:
        c = {2 * n, 4 * F * n, 2 * n, 4 * F * n};
        break;
      case Op::FusedElemChain: {
        // One flop per stage per element; const-tensor stages add one
        // operand read each (k covers both, as an upper bound).
        const std::uint64_t k = node.chain.size();
        c = {k * n, F * (2 + k) * n, k * n, F * (2 + k) * n};
        break;
      }
    }
    return c;
}

std::uint64_t
nanosBetween(std::chrono::steady_clock::time_point from,
             std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

// --- payload recognition for patch() ----------------------------------
// The structural payloads a SmoothE-style recording captures by value
// are identifiable from their contents alone. The >= 3-column guard
// keeps the two mask patterns disjoint ([1, 0] would match both); a
// payload too small to recognize is simply kept, and the shape-
// compatibility checks decide whether that forces a re-record.

/** 1 x C, exactly one 1.0 against a 0.0 background. */
bool
isMaskOneHot(const Tensor& t)
{
    if (t.rows() != 1 || t.cols() < 3)
        return false;
    std::size_t ones = 0;
    for (std::size_t j = 0; j < t.cols(); ++j) {
        const float v = t.row(0)[j];
        if (v == 1.0f)
            ++ones;
        else if (v != 0.0f)
            return false;
    }
    return ones == 1;
}

/** 1 x C, exactly one 0.0 against a 1.0 background. */
bool
isMaskComplement(const Tensor& t)
{
    if (t.rows() != 1 || t.cols() < 3)
        return false;
    std::size_t zeros = 0;
    for (std::size_t j = 0; j < t.cols(); ++j) {
        const float v = t.row(0)[j];
        if (v == 0.0f)
            ++zeros;
        else if (v != 1.0f)
            return false;
    }
    return zeros == 1;
}

/** R x C, every row exactly one 1.0 against a 0.0 background. */
bool
isOnehotRows(const Tensor& t)
{
    if (t.rows() == 0 || t.cols() < 3)
        return false;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        std::size_t ones = 0;
        for (std::size_t j = 0; j < t.cols(); ++j) {
            const float v = t.row(r)[j];
            if (v == 1.0f)
                ++ones;
            else if (v != 0.0f)
                return false;
        }
        if (ones != 1)
            return false;
    }
    return true;
}

} // namespace

Program::Program(Tape&& tape, VarId root, std::vector<VarId> outputs)
    : backend_(tape.backend_), arena_(tape.arena_), root_(root)
{
    obs::Span span("program.compile");
    const std::size_t n = tape.nodes_.size();
    SMOOTHE_CHECK(root >= 0 && static_cast<std::size_t>(root) < n,
                  "program: root %d not on this %zu-node tape", root, n);
    SMOOTHE_DCHECK_OK(tape.checkInvariants(/*screen_values=*/false));

    skipped_.assign(n, 0);
    needsGrad_.assign(n, 0);
    valueBind_.assign(n, Binding{});
    gradBind_.assign(n, Binding{});
    saved_.resize(n);
    savedIdx_.resize(n);

    // --- snapshot shapes, steal metadata and payloads -----------------
    // Recorder value tensors are released as soon as their shape is
    // snapshotted so compile-time transient memory never stacks a full
    // eager iteration on top of the plan being built.
    std::vector<std::size_t> rowsOf(n);
    std::vector<std::size_t> colsOf(n);
    ops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Tape::Node& rec = tape.nodes_[i];
        rowsOf[i] = rec.value.rows();
        colsOf[i] = rec.value.cols();
        ops_.push_back(std::move(static_cast<OpNode&>(rec)));
        saved_[i] = std::move(rec.saved);
        savedIdx_[i] = std::move(rec.savedIdx);
    }

    // The eager baseline re-allocates every value, every grad reachable
    // from the root (through constants too), and every saved stash each
    // iteration; measure it before fusion rewires edges.
    {
        std::vector<char> eagerGrad(n, 0);
        eagerGrad[static_cast<std::size_t>(root_)] = 1;
        for (VarId id = root_; id >= 0; --id) {
            if (!eagerGrad[static_cast<std::size_t>(id)])
                continue;
            const OpNode& node = ops_[static_cast<std::size_t>(id)];
            for (VarId in : {node.in0, node.in1}) {
                if (in >= 0)
                    eagerGrad[static_cast<std::size_t>(in)] = 1;
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t valueBytes =
                rowsOf[i] * colsOf[i] * sizeof(float);
            stats_.naiveBytes += valueBytes;
            if (eagerGrad[i])
                stats_.naiveBytes += valueBytes;
            stats_.naiveBytes += saved_[i].size() * sizeof(float);
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        OpNode& node = ops_[i];
        Tape::Node& rec = tape.nodes_[i];
        switch (node.op) {
          case Op::Leaf:
            // Alias the Param so optimizer steps are visible on replay
            // (the eager tape re-copies the value each rebuild).
            valueBind_[i] = {Storage::Param,
                             static_cast<std::uint32_t>(i)};
            break;
          case Op::Constant:
          case Op::Input:
            valueBind_[i] = {Storage::Owned,
                             static_cast<std::uint32_t>(owned_.size())};
            owned_.push_back(std::move(rec.value));
            if (node.op == Op::Input)
                inputs_[node.inputName] = static_cast<VarId>(i);
            break;
          default:
            break;
        }
        rec.value = Tensor();
        rec.grad = Tensor();
    }

    std::vector<char> isOutput(n, 0);
    isOutput[static_cast<std::size_t>(root_)] = 1;
    for (VarId v : outputs) {
        SMOOTHE_CHECK(v >= 0 && static_cast<std::size_t>(v) < n,
                      "program: output %d not on the tape", v);
        isOutput[static_cast<std::size_t>(v)] = 1;
    }

    auto countUses = [&] {
        std::vector<std::uint32_t> uses(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (skipped_[i])
                continue;
            if (ops_[i].in0 >= 0)
                ++uses[static_cast<std::size_t>(ops_[i].in0)];
            if (ops_[i].in1 >= 0)
                ++uses[static_cast<std::size_t>(ops_[i].in1)];
        }
        return uses;
    };
    std::vector<std::uint32_t> uses = countUses();

    // --- fusion: collapse single-consumer elementwise chains ----------
    // A run v1 -> v2 -> ... -> vk of constant-Jacobian unary ops
    // (Scale, AddScalar, MulConst, AddConst) fuses into one node on vk
    // when every intermediate has exactly one consumer and is not a
    // requested output. Fusing moves the contribution to the chain
    // input's grad from v1's backward step to vk's, so the fuse is
    // only taken when no other consumer of that input lies strictly
    // between v1 and vk in id order — that keeps the descending-id
    // accumulation order, and therefore the float bits, identical to
    // the unfused eager tape. Two-op runs lower to the specialized
    // FusedAffine / FusedMulAddConst kernels; longer or mixed runs
    // become a FusedElemChain stage program.
    auto isChainOp = [&](std::size_t ix) {
        if (skipped_[ix])
            return false;
        const Op op = ops_[ix].op;
        return op == Op::Scale || op == Op::AddScalar ||
               op == Op::MulConst || op == Op::AddConst;
    };
    std::vector<VarId> onlyUser(n, -1);
    std::vector<char> viaIn0(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
        if (skipped_[j])
            continue;
        if (ops_[j].in0 >= 0) {
            onlyUser[static_cast<std::size_t>(ops_[j].in0)] =
                static_cast<VarId>(j);
            viaIn0[static_cast<std::size_t>(ops_[j].in0)] = 1;
        }
        if (ops_[j].in1 >= 0) {
            onlyUser[static_cast<std::size_t>(ops_[j].in1)] =
                static_cast<VarId>(j);
            viaIn0[static_cast<std::size_t>(ops_[j].in1)] = 0;
        }
    }
    std::vector<char> inChain(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (!isChainOp(i) || inChain[i])
            continue;
        // Grow the maximal run from i (ids ascend along a tape edge, so
        // scanning i in ascending order always lands on a run's head).
        std::vector<std::size_t> chain{i};
        std::size_t cur = i;
        while (uses[cur] == 1 && !isOutput[cur] && viaIn0[cur] &&
               onlyUser[cur] >= 0 &&
               isChainOp(static_cast<std::size_t>(onlyUser[cur]))) {
            cur = static_cast<std::size_t>(onlyUser[cur]);
            chain.push_back(cur);
        }
        for (std::size_t v : chain)
            inChain[v] = 1;
        if (chain.size() < 2)
            continue;
        const VarId input = ops_[chain.front()].in0;
        bool safe = true;
        for (std::size_t j = chain.front() + 1;
             j < chain.back() && safe; ++j) {
            if (skipped_[j])
                continue;
            if (ops_[j].in0 == input || ops_[j].in1 == input)
                safe = false;
        }
        if (!safe)
            continue;
        OpNode& first = ops_[chain.front()];
        OpNode& last = ops_[chain.back()];
        if (chain.size() == 2 && first.op == Op::Scale &&
            last.op == Op::AddScalar) {
            last.op = Op::FusedAffine;
            last.beta = last.alpha;
            last.alpha = first.alpha;
        } else if (chain.size() == 2 && first.op == Op::MulConst &&
                   last.op == Op::AddConst) {
            last.op = Op::FusedMulAddConst;
            last.constTensor2 = std::move(last.constTensor);
            last.constTensor = std::move(first.constTensor);
        } else {
            std::vector<tensor::ElemStage> stages;
            stages.reserve(chain.size());
            for (std::size_t v : chain) {
                OpNode& link = ops_[v];
                tensor::ElemStage stage;
                switch (link.op) {
                  case Op::Scale:
                    stage.kind = tensor::ElemStageKind::Scale;
                    stage.alpha = link.alpha;
                    break;
                  case Op::AddScalar:
                    stage.kind = tensor::ElemStageKind::AddScalar;
                    stage.alpha = link.alpha;
                    break;
                  case Op::MulConst:
                    stage.kind = tensor::ElemStageKind::MulConst;
                    stage.c = std::move(link.constTensor);
                    break;
                  case Op::AddConst:
                    stage.kind = tensor::ElemStageKind::AddConst;
                    stage.c = std::move(link.constTensor);
                    break;
                  default:
                    SMOOTHE_CHECK(false, "non-chain op %d in fusion run",
                                  static_cast<int>(link.op));
                }
                stages.push_back(std::move(stage));
            }
            last.op = Op::FusedElemChain;
            last.chain = std::move(stages);
        }
        last.in0 = input;
        for (std::size_t k = 0; k + 1 < chain.size(); ++k)
            skipped_[chain[k]] = 1;
        stats_.fusedOps += chain.size() - 1;
    }
    if (stats_.fusedOps > 0)
        uses = countUses();

    // --- gradient reachability ----------------------------------------
    // The eager set of grad-carrying nodes, minus the constants/inputs
    // whose backward is a no-op anyway.
    needsGrad_[static_cast<std::size_t>(root_)] = 1;
    for (VarId id = root_; id >= 0; --id) {
        if (!needsGrad_[static_cast<std::size_t>(id)] ||
            skipped_[static_cast<std::size_t>(id)])
            continue;
        const OpNode& node = ops_[static_cast<std::size_t>(id)];
        for (VarId in : {node.in0, node.in1}) {
            if (in < 0)
                continue;
            const Op inOp = ops_[static_cast<std::size_t>(in)].op;
            if (inOp != Op::Constant && inOp != Op::Input)
                needsGrad_[static_cast<std::size_t>(in)] = 1;
        }
    }

    // --- persistence: values the backward pass reads ------------------
    std::vector<char> persistent(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (isOutput[i])
            persistent[i] = 1;
        if (skipped_[i] || !needsGrad_[i])
            continue;
        const OpNode& node = ops_[i];
        switch (node.op) {
          case Op::Mul:
          case Op::MatMul:
            persistent[static_cast<std::size_t>(node.in0)] = 1;
            persistent[static_cast<std::size_t>(node.in1)] = 1;
            break;
          case Op::SegmentProductComplement:
            persistent[static_cast<std::size_t>(node.in0)] = 1;
            break;
          case Op::Relu:
          case Op::SegmentSoftmax:
            persistent[i] = 1; // backward reads the node's own output
            break;
          default:
            break;
        }
    }

    // --- forward schedule + static slot plan --------------------------
    std::vector<VarId> lastUse(n, -1);
    for (std::size_t j = 0; j < n; ++j) {
        if (skipped_[j])
            continue;
        if (ops_[j].in0 >= 0)
            lastUse[static_cast<std::size_t>(ops_[j].in0)] =
                static_cast<VarId>(j);
        if (ops_[j].in1 >= 0)
            lastUse[static_cast<std::size_t>(ops_[j].in1)] =
                static_cast<VarId>(j);
    }
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> freeVals;
    auto acquireValueSlot = [&](std::size_t rows,
                                std::size_t cols) -> std::uint32_t {
        auto& pool = freeVals[shapeKey(rows, cols)];
        if (!pool.empty()) {
            const std::uint32_t idx = pool.back();
            pool.pop_back();
            return idx;
        }
        valueSlots_.emplace_back(rows, cols, arena_);
        return static_cast<std::uint32_t>(valueSlots_.size() - 1);
    };
    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i])
            continue;
        const OpNode& node = ops_[i];
        if (isSource(node.op))
            continue;
        // Bind the output before releasing dead inputs so the
        // destination can never alias an operand within one op.
        if (persistent[i]) {
            valueBind_[i] = {Storage::Owned,
                             static_cast<std::uint32_t>(owned_.size())};
            owned_.emplace_back(rowsOf[i], colsOf[i], arena_);
        } else {
            valueBind_[i] = {Storage::Slot,
                             acquireValueSlot(rowsOf[i], colsOf[i])};
        }
        forwardSchedule_.push_back(static_cast<VarId>(i));
        for (VarId in : {node.in0, node.in1}) {
            if (in < 0)
                continue;
            const auto ix = static_cast<std::size_t>(in);
            if (lastUse[ix] == static_cast<VarId>(i) &&
                valueBind_[ix].kind == Storage::Slot) {
                freeVals[shapeKey(rowsOf[ix], colsOf[ix])].push_back(
                    valueBind_[ix].index);
                lastUse[ix] = -1; // no double-free when in0 == in1
            }
        }
        if (lastUse[i] == -1 && valueBind_[i].kind == Storage::Slot) {
            // Dead value (recorded but never consumed or requested):
            // the slot frees immediately after its own step.
            freeVals[shapeKey(rowsOf[i], colsOf[i])].push_back(
                valueBind_[i].index);
        }
    }

    // --- backward schedule + grad-slot plan ---------------------------
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> freeGrads;
    auto acquireGradSlot = [&](std::size_t rows,
                               std::size_t cols) -> std::uint32_t {
        auto& pool = freeGrads[shapeKey(rows, cols)];
        if (!pool.empty()) {
            const std::uint32_t idx = pool.back();
            pool.pop_back();
            return idx;
        }
        gradSlots_.emplace_back(rows, cols, arena_);
        return static_cast<std::uint32_t>(gradSlots_.size() - 1);
    };
    const auto rootIx = static_cast<std::size_t>(root_);
    rootGradSlot_ = acquireGradSlot(rowsOf[rootIx], colsOf[rootIx]);
    gradBind_[rootIx] = {Storage::Slot, rootGradSlot_};
    for (VarId id = root_; id >= 0; --id) {
        const auto ix = static_cast<std::size_t>(id);
        if (skipped_[ix] || !needsGrad_[ix])
            continue;
        const OpNode& node = ops_[ix];
        BackStep step;
        step.id = id;
        for (VarId in : {node.in0, node.in1}) {
            if (in < 0)
                continue;
            const auto inIx = static_cast<std::size_t>(in);
            if (!needsGrad_[inIx] ||
                gradBind_[inIx].kind != Storage::None)
                continue;
            const std::uint32_t slot =
                acquireGradSlot(rowsOf[inIx], colsOf[inIx]);
            gradBind_[inIx] = {Storage::Slot, slot};
            step.zeroSlots.push_back(slot);
        }
        backwardSchedule_.push_back(std::move(step));
        // A node's grad is last read at its own step: the slot frees
        // here, after its inputs already claimed theirs.
        freeGrads[shapeKey(rowsOf[ix], colsOf[ix])].push_back(
            gradBind_[ix].index);
    }

    // --- profiler kernel slots ----------------------------------------
    // One obs::Profiler::Kernel per scheduled op, resolved now so
    // sampled replays update the accumulators lock-free. FLOPs/bytes
    // are static estimates from the snapshotted shapes.
    {
        obs::Profiler& prof = obs::Profiler::instance();
        auto shapeOf = [&](VarId v, std::uint64_t& r, std::uint64_t& c) {
            r = v >= 0 ? rowsOf[static_cast<std::size_t>(v)] : 0;
            c = v >= 0 ? colsOf[static_cast<std::size_t>(v)] : 0;
        };
        auto costOf = [&](VarId id) {
            const auto ix = static_cast<std::size_t>(id);
            std::uint64_t aRows = 0;
            std::uint64_t aCols = 0;
            std::uint64_t bRows = 0;
            std::uint64_t bCols = 0;
            shapeOf(ops_[ix].in0, aRows, aCols);
            shapeOf(ops_[ix].in1, bRows, bCols);
            return estimateOpCost(ops_[ix], rowsOf[ix], colsOf[ix],
                                  aRows, aCols, bRows, bCols);
        };
        // Kernel-slot names carry the SIMD variant active at compile
        // time ("@avx2" or nothing) for ops with AVX2 forward bodies;
        // benches compile one Program per simd::Level to get the two
        // variants as separate side-by-side rows. Backward bodies are
        // generic loops, so backward slots stay unsuffixed.
        forwardKernels_.reserve(forwardSchedule_.size());
        for (VarId id : forwardSchedule_) {
            const OpCost cost = costOf(id);
            const Op op = ops_[static_cast<std::size_t>(id)].op;
            std::string name = std::string("forward.") + kernelName(op);
            if (backend_ != Backend::Scalar && hasSimdVariant(op))
                name += tensor::simd::kernelSuffix();
            forwardKernels_.push_back(
                {&prof.kernel(name), cost.fwdFlops, cost.fwdBytes});
        }
        backwardKernels_.reserve(backwardSchedule_.size());
        for (const BackStep& step : backwardSchedule_) {
            const OpCost cost = costOf(step.id);
            const Op op = ops_[static_cast<std::size_t>(step.id)].op;
            backwardKernels_.push_back(
                {&prof.kernel(std::string("backward.") + kernelName(op)),
                 cost.bwdFlops, cost.bwdBytes});
        }
    }

    // --- footprint ----------------------------------------------------
    stats_.ops = forwardSchedule_.size();
    stats_.valueSlots = valueSlots_.size();
    stats_.gradSlots = gradSlots_.size();
    stats_.ownedBuffers = owned_.size();
    auto bytesOf = [](const std::vector<Tensor>& pool) {
        std::size_t total = 0;
        for (const Tensor& t : pool)
            total += t.size() * sizeof(float);
        return total;
    };
    stats_.plannedBytes = bytesOf(owned_) + bytesOf(valueSlots_) +
                          bytesOf(gradSlots_) + bytesOf(saved_);

    tape.clear();
    SMOOTHE_DCHECK_OK(checkInvariants());
}

const Tensor*
Program::valuePtr(VarId id) const
{
    const Binding& binding = valueBind_[static_cast<std::size_t>(id)];
    switch (binding.kind) {
      case Storage::Param:
        return &ops_[binding.index].param->value;
      case Storage::Owned:
        return &owned_[binding.index];
      case Storage::Slot:
        return &valueSlots_[binding.index];
      default:
        return nullptr;
    }
}

Tensor*
Program::valueMut(VarId id)
{
    return const_cast<Tensor*>(
        static_cast<const Program*>(this)->valuePtr(id));
}

exec::ForwardArgs
Program::makeForwardArgs(VarId id)
{
    const auto ix = static_cast<std::size_t>(id);
    const OpNode& node = ops_[ix];
    exec::ForwardArgs args{node};
    args.a = node.in0 >= 0 ? valuePtr(node.in0) : nullptr;
    args.b = node.in1 >= 0 ? valuePtr(node.in1) : nullptr;
    args.value = valueMut(id);
    args.saved = &saved_[ix];
    args.savedIdx = &savedIdx_[ix];
    args.backend = backend_;
    return args;
}

exec::BackwardArgs
Program::makeBackwardArgs(const BackStep& step)
{
    const auto ix = static_cast<std::size_t>(step.id);
    const OpNode& node = ops_[ix];
    exec::BackwardArgs args{node, gradSlots_[gradBind_[ix].index]};
    args.a = node.in0 >= 0 ? valuePtr(node.in0) : nullptr;
    args.b = node.in1 >= 0 ? valuePtr(node.in1) : nullptr;
    args.value = valuePtr(step.id);
    args.saved = &saved_[ix];
    args.savedIdx = &savedIdx_[ix];
    args.ga =
        node.in0 >= 0 && needsGrad_[static_cast<std::size_t>(node.in0)]
            ? &gradSlots_[gradBind_[static_cast<std::size_t>(node.in0)]
                              .index]
            : nullptr;
    args.gb =
        node.in1 >= 0 && needsGrad_[static_cast<std::size_t>(node.in1)]
            ? &gradSlots_[gradBind_[static_cast<std::size_t>(node.in1)]
                              .index]
            : nullptr;
    args.backend = backend_;
    return args;
}

void
Program::forward()
{
    if (obs::profilerEnabled() &&
        obs::Profiler::instance().sampleReplay(
            obs::Profiler::Phase::Forward)) {
        forwardProfiled();
        return;
    }
    forwardBare();
}

void
Program::backward()
{
    if (obs::profilerEnabled() &&
        obs::Profiler::instance().sampleReplay(
            obs::Profiler::Phase::Backward)) {
        backwardProfiled();
        return;
    }
    backwardBare();
}

void
Program::forwardBare()
{
    for (VarId id : forwardSchedule_) {
        const exec::ForwardArgs args = makeForwardArgs(id);
        exec::forwardOp(args);
    }
}

void
Program::backwardBare()
{
    obs::counter("tape.backward.calls").add(1);
    gradSlots_[rootGradSlot_].fill(1.0f);
    for (const BackStep& step : backwardSchedule_) {
        for (std::uint32_t slot : step.zeroSlots)
            gradSlots_[slot].fill(0.0f);
        const exec::BackwardArgs args = makeBackwardArgs(step);
        exec::backwardOp(args);
    }
}

// The instrumented replays attribute boundary-to-boundary windows: one
// clock read (and one perf-counter read when available) per op
// boundary, so op k is charged t[k+1] - t[k] and kernel self times sum
// to the recorded phase total by construction. The per-op read cost is
// inside the window — acceptable for attribution, which is why the
// disabled path skips all of this behind one relaxed atomic load.
void
Program::forwardProfiled()
{
    obs::Profiler& prof = obs::Profiler::instance();
    obs::PerfCounters* counters = prof.threadCounters();
    const auto start = std::chrono::steady_clock::now();
    auto prev = start;
    obs::PerfSample prevSample =
        counters ? counters->read() : obs::PerfSample{};
    for (std::size_t k = 0; k < forwardSchedule_.size(); ++k) {
        const exec::ForwardArgs args =
            makeForwardArgs(forwardSchedule_[k]);
        exec::forwardOp(args);
        const auto now = std::chrono::steady_clock::now();
        const KernelSlot& slot = forwardKernels_[k];
        slot.kernel->record(nanosBetween(prev, now), slot.flops,
                            slot.bytes);
        if (counters) {
            const obs::PerfSample sample = counters->read();
            slot.kernel->recordCounters(sample - prevSample);
            prevSample = sample;
        }
        prev = now;
    }
    prof.recordPhaseTotal(obs::Profiler::Phase::Forward,
                          nanosBetween(start, prev));
}

void
Program::backwardProfiled()
{
    obs::counter("tape.backward.calls").add(1);
    obs::Profiler& prof = obs::Profiler::instance();
    obs::PerfCounters* counters = prof.threadCounters();
    const auto start = std::chrono::steady_clock::now();
    auto prev = start;
    obs::PerfSample prevSample =
        counters ? counters->read() : obs::PerfSample{};
    gradSlots_[rootGradSlot_].fill(1.0f);
    for (std::size_t k = 0; k < backwardSchedule_.size(); ++k) {
        const BackStep& step = backwardSchedule_[k];
        // Grad-slot zeroing belongs to the step that begins the slot's
        // lifetime, so it stays inside the op's window.
        for (std::uint32_t slot : step.zeroSlots)
            gradSlots_[slot].fill(0.0f);
        const exec::BackwardArgs args = makeBackwardArgs(step);
        exec::backwardOp(args);
        const auto now = std::chrono::steady_clock::now();
        const KernelSlot& slot = backwardKernels_[k];
        slot.kernel->record(nanosBetween(prev, now), slot.flops,
                            slot.bytes);
        if (counters) {
            const obs::PerfSample sample = counters->read();
            slot.kernel->recordCounters(sample - prevSample);
            prevSample = sample;
        }
        prev = now;
    }
    prof.recordPhaseTotal(obs::Profiler::Phase::Backward,
                          nanosBetween(start, prev));
}

void
Program::setInputScalar(const std::string& name, float v)
{
    auto it = inputs_.find(name);
    SMOOTHE_CHECK(it != inputs_.end(), "program has no input slot '%s'",
                  name.c_str());
    Tensor& slot =
        owned_[valueBind_[static_cast<std::size_t>(it->second)].index];
    SMOOTHE_CHECK(slot.size() == 1, "input slot '%s' is not 1x1",
                  name.c_str());
    slot.data()[0] = v;
}

const Tensor&
Program::value(VarId id) const
{
    SMOOTHE_CHECK(id >= 0 && static_cast<std::size_t>(id) < ops_.size(),
                  "program: node %d out of range", id);
    const Binding& binding = valueBind_[static_cast<std::size_t>(id)];
    SMOOTHE_CHECK(binding.kind == Storage::Owned ||
                      binding.kind == Storage::Param,
                  "program: node %d is transient; request it as an output",
                  id);
    return *valuePtr(id);
}

std::optional<std::string>
Program::checkInvariants() const
{
    auto problem = [](VarId id, const std::string& what)
        -> std::optional<std::string> {
        return "program node " + std::to_string(id) + ": " + what;
    };
    VarId prev = -1;
    for (VarId id : forwardSchedule_) {
        if (id <= prev)
            return problem(id, "forward schedule is not ascending");
        prev = id;
        const auto ix = static_cast<std::size_t>(id);
        const OpNode& node = ops_[ix];
        if (skipped_[ix])
            return problem(id, "skipped node is scheduled");
        if (valueBind_[ix].kind == Storage::None)
            return problem(id, "scheduled op has no output binding");
        for (VarId in : {node.in0, node.in1}) {
            if (in >= 0 &&
                valueBind_[static_cast<std::size_t>(in)].kind ==
                    Storage::None)
                return problem(id, "operand " + std::to_string(in) +
                                       " has no binding");
        }
    }
    prev = static_cast<VarId>(ops_.size());
    for (const BackStep& step : backwardSchedule_) {
        if (step.id >= prev)
            return problem(step.id,
                           "backward schedule is not descending");
        prev = step.id;
        const auto ix = static_cast<std::size_t>(step.id);
        if (!needsGrad_[ix] || gradBind_[ix].kind != Storage::Slot)
            return problem(step.id, "backward step without a grad slot");
    }
    return std::nullopt;
}

bool
Program::patch(const StructureDelta& delta)
{
    obs::Span span("program.patch");
    const std::size_t n = ops_.size();

    // ------------------------------------------------------------------
    // Analysis phase: everything below up to the mutation marker is
    // read-only. Any `return false` leaves the Program byte-identical,
    // so the caller can still replay the old plan or re-record.
    // ------------------------------------------------------------------

    // Positional scatter dims. Every scheduled ScatterMatrix needs a new
    // dim (entry contents changed under the shared pointer), and every
    // TrExpm must sit directly on a scatter so its dim can be derived.
    std::vector<std::size_t> newDim(n, 0);
    {
        std::size_t k = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (skipped_[i] || ops_[i].op != Op::ScatterMatrix)
                continue;
            if (k >= delta.scatterDims.size())
                return false;
            newDim[i] = delta.scatterDims[k++];
        }
        if (k != delta.scatterDims.size())
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            if (skipped_[i] || ops_[i].op != Op::TrExpm)
                continue;
            const VarId in = ops_[i].in0;
            if (in < 0 ||
                ops_[static_cast<std::size_t>(in)].op != Op::ScatterMatrix)
                return false;
            newDim[i] = newDim[static_cast<std::size_t>(in)];
        }
    }

    // Plan constant replacements: one-hot-per-row Constants become the
    // delta's seed when one is provided; otherwise they keep their shape
    // and downstream compatibility checks arbitrate.
    std::vector<char> replaceOnehot(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (ops_[i].op != Op::Constant)
            continue;
        if (delta.onehotRows.size() != 0 &&
            isOnehotRows(owned_[valueBind_[i].index]))
            replaceOnehot[i] = 1;
    }

    // Shape inference in id order (inputs always precede consumers on a
    // tape). Skipped fusion links are inferred too — harmless, and it
    // keeps the recurrence total.
    std::vector<std::size_t> rowsOf(n, 0);
    std::vector<std::size_t> colsOf(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const OpNode& node = ops_[i];
        const auto i0 = static_cast<std::size_t>(node.in0);
        const auto i1 = static_cast<std::size_t>(node.in1);
        switch (node.op) {
          case Op::Leaf:
            rowsOf[i] = node.param->value.rows();
            colsOf[i] = node.param->value.cols();
            break;
          case Op::Constant:
          case Op::Input: {
            const Tensor& t = replaceOnehot[i]
                                  ? delta.onehotRows
                                  : owned_[valueBind_[i].index];
            rowsOf[i] = t.rows();
            colsOf[i] = t.cols();
            break;
          }
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
            if (rowsOf[i0] != rowsOf[i1] || colsOf[i0] != colsOf[i1])
                return false;
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = colsOf[i0];
            break;
          case Op::Scale:
          case Op::AddScalar:
          case Op::Relu:
          case Op::MulConst:
          case Op::AddConst:
          case Op::SegmentSoftmax:
          case Op::FusedAffine:
          case Op::FusedMulAddConst:
          case Op::FusedElemChain:
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = colsOf[i0];
            break;
          case Op::DotRowsConst:
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = 1;
            break;
          case Op::SumAll:
            rowsOf[i] = 1;
            colsOf[i] = 1;
            break;
          case Op::MeanRows:
            rowsOf[i] = 1;
            colsOf[i] = colsOf[i0];
            break;
          case Op::SegmentProductComplement:
          case Op::SegmentMaxGather:
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = node.segs->numSegments();
            break;
          case Op::GatherCols:
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = node.index->size();
            break;
          case Op::MatMul:
            if (colsOf[i0] != rowsOf[i1])
                return false;
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = colsOf[i1];
            break;
          case Op::AddRowBroadcast:
            if (colsOf[i0] != colsOf[i1] || rowsOf[i1] != 1)
                return false;
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = colsOf[i0];
            break;
          case Op::ScatterMatrix:
            rowsOf[i] = node.meanOverRows ? 1 : rowsOf[i0];
            colsOf[i] = newDim[i] * newDim[i];
            break;
          case Op::TrExpm:
            rowsOf[i] = rowsOf[i0];
            colsOf[i] = 1;
            break;
        }
    }

    // Gather-index bounds: the one hazard shape checks alone cannot see
    // is a gather source (a constant seed) narrower than what the
    // rebuilt index addresses.
    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i] || ops_[i].op != Op::GatherCols)
            continue;
        std::uint32_t maxIdx = 0;
        for (std::uint32_t v : *ops_[i].index)
            maxIdx = v > maxIdx ? v : maxIdx;
        if (!ops_[i].index->empty() &&
            maxIdx >= colsOf[static_cast<std::size_t>(ops_[i].in0)])
            return false;
    }

    // Broadcast payloads: recognized masks are planned for replacement;
    // either way the effective payload must still broadcast over the
    // node's new shape.
    struct MaskPlan
    {
        Tensor* target = nullptr;
        const Tensor* repl = nullptr;
    };
    std::vector<MaskPlan> maskPlans;
    auto planPayload = [&](Tensor& payload, std::size_t i) -> bool {
        const Tensor* repl = nullptr;
        if (isMaskOneHot(payload) && delta.maskOneHot.size() != 0)
            repl = &delta.maskOneHot;
        else if (isMaskComplement(payload) &&
                 delta.maskComplement.size() != 0)
            repl = &delta.maskComplement;
        const Tensor& eff = repl ? *repl : payload;
        if (eff.cols() != colsOf[i] ||
            (eff.rows() != 1 && eff.rows() != rowsOf[i]))
            return false;
        if (repl)
            maskPlans.push_back({&payload, repl});
        return true;
    };
    std::vector<char> replaceWeights(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i])
            continue;
        OpNode& node = ops_[i];
        switch (node.op) {
          case Op::MulConst:
          case Op::AddConst:
            if (!planPayload(node.constTensor, i))
                return false;
            break;
          case Op::FusedMulAddConst:
            if (!planPayload(node.constTensor, i) ||
                !planPayload(node.constTensor2, i))
                return false;
            break;
          case Op::FusedElemChain:
            for (tensor::ElemStage& stage : node.chain) {
                if (stage.kind != tensor::ElemStageKind::MulConst &&
                    stage.kind != tensor::ElemStageKind::AddConst)
                    continue;
                if (!planPayload(stage.c, i))
                    return false;
            }
            break;
          case Op::DotRowsConst: {
            const auto want = colsOf[static_cast<std::size_t>(node.in0)];
            if (node.constVec.size() == want)
                break;
            if (delta.rowWeights.size() != want)
                return false;
            replaceWeights[i] = 1;
            break;
          }
          default:
            break;
        }
    }

    // Slot agreement: a reused slot's users shared one shape at compile
    // time and must still share one after growth. (They can stop
    // agreeing when two previously equal dimensions — say node and
    // class counts — grow apart; that invalidates the liveness pooling
    // and forces a re-record.)
    auto agreeOn = [&](const Binding& bind, std::size_t i,
                       std::vector<std::uint64_t>& shapes) -> bool {
        if (bind.kind != Storage::Slot)
            return true;
        const std::uint64_t key = shapeKey(rowsOf[i], colsOf[i]);
        if (shapes[bind.index] == 0)
            shapes[bind.index] = key;
        return shapes[bind.index] == key;
    };
    std::vector<std::uint64_t> valueShape(valueSlots_.size(), 0);
    std::vector<std::uint64_t> gradShape(gradSlots_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i])
            continue;
        if (!agreeOn(valueBind_[i], i, valueShape))
            return false;
        if (needsGrad_[i] && !agreeOn(gradBind_[i], i, gradShape))
            return false;
    }

    // ------------------------------------------------------------------
    // Mutation phase: the growth is plan-preserving; apply it.
    // ------------------------------------------------------------------

    for (std::size_t i = 0; i < n; ++i) {
        if (replaceOnehot[i])
            owned_[valueBind_[i].index] = delta.onehotRows;
        if (replaceWeights[i])
            ops_[i].constVec = delta.rowWeights;
    }
    for (const MaskPlan& plan : maskPlans)
        *plan.target = *plan.repl;

    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i])
            continue;
        OpNode& node = ops_[i];
        if (node.op == Op::ScatterMatrix) {
            node.dim = newDim[i];
        } else if (node.op == Op::TrExpm) {
            node.dim = newDim[i];
            // The expm kernel writes its power-series stash into a
            // preallocated rows x dim^2 scratch.
            if (saved_[i].rows() != rowsOf[i] ||
                saved_[i].cols() != newDim[i] * newDim[i])
                saved_[i] =
                    Tensor(rowsOf[i], newDim[i] * newDim[i], arena_);
        } else if (node.op == Op::AddScalar && node.in0 >= 0) {
            // The trace-penalty bias: tr(expm(0)) == dim per row, so the
            // zero-baseline AddScalar downstream of SumAll(TrExpm(...))
            // carries -dim * rows and must track the new dim.
            const OpNode& sum = ops_[static_cast<std::size_t>(node.in0)];
            if (sum.op == Op::SumAll && sum.in0 >= 0) {
                const auto trIx = static_cast<std::size_t>(sum.in0);
                if (ops_[trIx].op == Op::TrExpm)
                    node.alpha = -static_cast<float>(
                        newDim[trIx] * rowsOf[trIx]);
            }
        }
    }

    // Resize the planned buffers whose shape moved. Bindings, schedules,
    // and slot indices all stay put.
    for (std::size_t i = 0; i < n; ++i) {
        if (skipped_[i] || isSource(ops_[i].op))
            continue;
        const Binding& bind = valueBind_[i];
        if (bind.kind == Storage::Owned &&
            (owned_[bind.index].rows() != rowsOf[i] ||
             owned_[bind.index].cols() != colsOf[i]))
            owned_[bind.index] = Tensor(rowsOf[i], colsOf[i], arena_);
    }
    auto resizePool = [&](std::vector<Tensor>& pool,
                          const std::vector<std::uint64_t>& shapes) {
        for (std::size_t s = 0; s < pool.size(); ++s) {
            if (shapes[s] == 0)
                continue;
            const auto rows = static_cast<std::size_t>(shapes[s] >> 32);
            const auto cols =
                static_cast<std::size_t>(shapes[s] & 0xffffffffULL);
            if (pool[s].rows() != rows || pool[s].cols() != cols)
                pool[s] = Tensor(rows, cols, arena_);
        }
    };
    resizePool(valueSlots_, valueShape);
    resizePool(gradSlots_, gradShape);

    // Refresh the static profiler cost estimates for the new shapes
    // (kernel identities are unchanged — same ops, same backend).
    {
        auto shapeOf = [&](VarId v, std::uint64_t& r, std::uint64_t& c) {
            r = v >= 0 ? rowsOf[static_cast<std::size_t>(v)] : 0;
            c = v >= 0 ? colsOf[static_cast<std::size_t>(v)] : 0;
        };
        auto costOf = [&](VarId id) {
            const auto ix = static_cast<std::size_t>(id);
            std::uint64_t aRows = 0;
            std::uint64_t aCols = 0;
            std::uint64_t bRows = 0;
            std::uint64_t bCols = 0;
            shapeOf(ops_[ix].in0, aRows, aCols);
            shapeOf(ops_[ix].in1, bRows, bCols);
            return estimateOpCost(ops_[ix], rowsOf[ix], colsOf[ix],
                                  aRows, aCols, bRows, bCols);
        };
        for (std::size_t k = 0; k < forwardSchedule_.size(); ++k) {
            const OpCost cost = costOf(forwardSchedule_[k]);
            forwardKernels_[k].flops = cost.fwdFlops;
            forwardKernels_[k].bytes = cost.fwdBytes;
        }
        for (std::size_t k = 0; k < backwardSchedule_.size(); ++k) {
            const OpCost cost = costOf(backwardSchedule_[k].id);
            backwardKernels_[k].flops = cost.bwdFlops;
            backwardKernels_[k].bytes = cost.bwdBytes;
        }
    }

    // Recompute the footprint stats. naiveBytes is re-estimated over the
    // post-fusion edges — a slightly tighter eager baseline than the
    // compile-time figure, which is fine for a reuse-ratio telemetry
    // stat.
    {
        auto bytesOf = [](const std::vector<Tensor>& pool) {
            std::size_t total = 0;
            for (const Tensor& t : pool)
                total += t.size() * sizeof(float);
            return total;
        };
        stats_.plannedBytes = bytesOf(owned_) + bytesOf(valueSlots_) +
                              bytesOf(gradSlots_) + bytesOf(saved_);
        stats_.naiveBytes = 0;
        std::vector<char> eagerGrad(n, 0);
        eagerGrad[static_cast<std::size_t>(root_)] = 1;
        for (VarId id = root_; id >= 0; --id) {
            if (!eagerGrad[static_cast<std::size_t>(id)])
                continue;
            const OpNode& node = ops_[static_cast<std::size_t>(id)];
            for (VarId in : {node.in0, node.in1}) {
                if (in >= 0)
                    eagerGrad[static_cast<std::size_t>(in)] = 1;
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t valueBytes =
                rowsOf[i] * colsOf[i] * sizeof(float);
            stats_.naiveBytes += valueBytes;
            if (eagerGrad[i])
                stats_.naiveBytes += valueBytes;
            stats_.naiveBytes += saved_[i].size() * sizeof(float);
        }
    }

    obs::counter("program.patch").add(1);
    SMOOTHE_DCHECK_OK(checkInvariants());
    return true;
}

} // namespace smoothe::ad
