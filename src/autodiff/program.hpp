/**
 * @file
 * Compiled autodiff program: record once, compile, replay many.
 *
 * A Program consumes a Tape that recorded one iteration of a
 * structurally stable computation and compiles it into
 *   (a) a topologically ordered op list (fusing back-to-back
 *       elementwise chains into single passes),
 *   (b) a static buffer plan that assigns every transient intermediate
 *       a reusable slot via liveness analysis (last-use frees), and
 *   (c) a precomputed backward schedule with per-step grad-slot zeroing.
 *
 * forward()/backward() then replay into the planned buffers with zero
 * per-iteration graph construction or allocation. Leaf values alias
 * their Param (so optimizer steps are visible on the next replay), and
 * named Input nodes stay mutable via setInputScalar — per-iteration
 * dynamic values (the lambda warmup ramp) without re-recording.
 *
 * Determinism: replay runs the exact same exec::forwardOp/backwardOp
 * kernels as the eager Tape, in the same order, with the same fixed
 * parallel grains, so results are bit-identical to rebuilding the tape
 * every iteration — at every thread count (see DESIGN.md "Compiled
 * execution plan").
 */

#ifndef SMOOTHE_AUTODIFF_PROGRAM_HPP
#define SMOOTHE_AUTODIFF_PROGRAM_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "autodiff/exec.hpp"
#include "autodiff/tape.hpp"
#include "obs/profiler.hpp"

namespace smoothe::ad {

/** Compile-time footprint of a Program's buffer plan. */
struct ProgramStats
{
    std::size_t ops = 0;          ///< scheduled forward ops
    std::size_t fusedOps = 0;     ///< elementwise pairs fused away
    std::size_t valueSlots = 0;   ///< reusable forward slots
    std::size_t gradSlots = 0;    ///< reusable backward slots
    std::size_t ownedBuffers = 0; ///< persistent buffers (outputs, saved
                                  ///< activations, constants)
    std::size_t plannedBytes = 0; ///< bytes held by the compiled plan
    std::size_t naiveBytes = 0;   ///< bytes an eager rebuild allocates
                                  ///< per iteration

    /** How much smaller the plan is than one eager iteration (>= 1). */
    double reuseRatio() const
    {
        return plannedBytes ? static_cast<double>(naiveBytes) /
                                  static_cast<double>(plannedBytes)
                            : 1.0;
    }
};

/**
 * Structure-growth descriptor for Program::patch.
 *
 * Describes how a recorded program's sparse structures grew between two
 * recordings of the *same* op sequence (same op kinds in the same order,
 * only wider). Pointer payloads (SegmentIndex, gather index vectors,
 * scatter entry lists) are not listed here: the recorded OpNodes hold
 * raw pointers into caller-owned containers, and the caller rebuilds
 * those containers in place (same object addresses, new contents)
 * before calling patch(), so the pointers stay valid by construction.
 * What patch() itself rewrites are the value payloads the plan copied
 * at record time, recognized by their structure:
 *
 *  - one-hot-per-row Constant nodes (a propagation seed) get
 *    `onehotRows`,
 *  - 1 x C broadcast payloads with a single 1 against zeros get
 *    `maskOneHot`; a single 0 against ones gets `maskComplement`
 *    (root masks in SmoothE programs),
 *  - DotRowsConst weight vectors whose length no longer matches their
 *    input get `rowWeights`,
 *  - ScatterMatrix ops take `scatterDims` positionally (id order);
 *    dependent TrExpm dims, their saved stashes, and the trace-penalty
 *    AddScalar bias (-dim * rows) are derived from them.
 *
 * Empty members mean "no replacement available": patch() keeps the old
 * payload when its shape still fits and reports failure otherwise.
 */
struct StructureDelta
{
    Tensor onehotRows;
    Tensor maskOneHot;
    Tensor maskComplement;
    std::vector<float> rowWeights;
    std::vector<std::size_t> scatterDims;
};

/** The compiled replayer. */
class Program
{
  public:
    /**
     * Compiles the recorded tape. The tape is consumed: its node
     * metadata and constant payloads are stolen, its transient tensors
     * released.
     *
     * @param tape recorder holding one fully recorded iteration
     * @param root the loss node backward() differentiates from
     * @param outputs extra nodes whose forward values stay readable via
     *        value() after replay (root always is)
     */
    Program(Tape&& tape, VarId root, std::vector<VarId> outputs = {});

    Program(Program&&) = default;
    Program& operator=(Program&&) = default;
    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;

    /** Replays the forward pass into the planned buffers. */
    void forward();

    /**
     * Replays the precomputed backward schedule, accumulating into every
     * reachable leaf's Param::grad. Call after forward(); the caller
     * zeroes Param grads, exactly as with the eager tape.
     */
    void backward();

    /**
     * forward()/backward() minus the profiler dispatch: the bare replay
     * loops, bit-identical to the public pair (profiled replays run the
     * same kernels in the same order; only timestamps are added).
     * bench_micro_kernels times bare vs dispatching replays to gate the
     * disabled-profiler overhead below 1% in CI.
     */
    void forwardBare();
    void backwardBare();

    /** Writes a 1 x 1 Input slot recorded via Tape::input. */
    void setInputScalar(const std::string& name, float v);

    /** Whether the recording captured an Input slot with this name. */
    bool hasInput(const std::string& name) const
    {
        return inputs_.count(name) != 0;
    }

    /**
     * Forward value of a node after forward(). Only the root, requested
     * outputs, and sources are readable — everything else lives in a
     * reused slot and is transient.
     */
    const Tensor& value(VarId id) const;

    VarId root() const { return root_; }
    std::size_t numOps() const { return forwardSchedule_.size(); }
    const ProgramStats& stats() const { return stats_; }

    /**
     * Light structural validator for the compiled plan: schedules must
     * stay topological and every scheduled op's operands and grad slots
     * must be bound. @return std::nullopt when healthy.
     */
    std::optional<std::string> checkInvariants() const;

    /**
     * Patches the compiled plan in place after structure growth, instead
     * of re-recording and recompiling from scratch.
     *
     * Preconditions: every Leaf's Param was already resized to its new
     * shape, and every caller-owned container the recorded ops point at
     * (segment indexes, gather index vectors, scatter entry lists) was
     * rebuilt in place at its old address. patch() then re-infers every
     * node's shape from the sources, swaps recognized value payloads per
     * `delta`, resizes owned buffers / value slots / grad slots / saved
     * stashes, and refreshes the profiler cost estimates and footprint
     * stats. Schedules, fusion decisions, and slot assignments are kept
     * — that is what makes it cheap.
     *
     * @return true on success (counts `program.patch`). Returns false —
     * with the Program untouched — when the growth is not plan-
     * preserving: a reused slot's users disagree on their new shape, a
     * payload can no longer be recognized or no replacement was
     * provided, or operand shapes stop agreeing. The caller must then
     * fall back to a full re-record (and should count
     * `program.rerecord`).
     */
    bool patch(const StructureDelta& delta);

  private:
    /** Where a node's value (or grad) lives at replay time. */
    enum class Storage : std::uint8_t {
        None,  ///< never materialized (skipped node / no grad)
        Param, ///< aliases ops_[index].param->value
        Owned, ///< persistent buffer owned_[index]
        Slot,  ///< reusable slot (valueSlots_/gradSlots_[index])
    };
    struct Binding
    {
        Storage kind = Storage::None;
        std::uint32_t index = 0;
    };
    struct BackStep
    {
        VarId id = -1;
        /** Grad slots beginning a lifetime at this step: zeroed first. */
        std::vector<std::uint32_t> zeroSlots;
    };
    /**
     * Per-scheduled-op profiler attribution, resolved at compile time so
     * sampled replays update kernel accumulators lock-free. FLOPs/bytes
     * are static estimates from the snapshotted shapes.
     */
    struct KernelSlot
    {
        obs::Profiler::Kernel* kernel = nullptr;
        std::uint64_t flops = 0;
        std::uint64_t bytes = 0;
    };

    const Tensor* valuePtr(VarId id) const;
    Tensor* valueMut(VarId id);
    exec::ForwardArgs makeForwardArgs(VarId id);
    exec::BackwardArgs makeBackwardArgs(const BackStep& step);
    /** Boundary-sampled instrumented replays: one clock (and one perf)
     *  read per op boundary, so per-kernel self times sum to the phase
     *  total by construction. */
    void forwardProfiled();
    void backwardProfiled();

    Backend backend_ = Backend::Vectorized;
    Arena* arena_ = nullptr;
    VarId root_ = -1;
    std::vector<OpNode> ops_;
    std::vector<char> skipped_;   ///< fused-away nodes, never scheduled
    std::vector<char> needsGrad_; ///< grad buffer exists for this node
    std::vector<Binding> valueBind_;
    std::vector<Binding> gradBind_;
    std::vector<Tensor> owned_;
    std::vector<Tensor> valueSlots_;
    std::vector<Tensor> gradSlots_;
    std::vector<Tensor> saved_;
    std::vector<std::vector<std::uint32_t>> savedIdx_;
    std::vector<VarId> forwardSchedule_;
    std::vector<BackStep> backwardSchedule_;
    std::vector<KernelSlot> forwardKernels_;  ///< parallel to schedule
    std::vector<KernelSlot> backwardKernels_; ///< parallel to schedule
    std::uint32_t rootGradSlot_ = 0;
    std::unordered_map<std::string, VarId> inputs_;
    ProgramStats stats_;
};

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_PROGRAM_HPP
