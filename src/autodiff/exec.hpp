/**
 * @file
 * Single-op executors shared by the eager Tape and the compiled Program.
 *
 * forwardOp/backwardOp take an OpNode plus resolved tensor pointers and
 * run exactly one operation. The eager Tape resolves pointers into its
 * per-node tensors; the Program resolves them into its static buffer
 * plan. Because both modes funnel through these two functions (and the
 * tensor::*Into kernels they call), replay is bit-identical to the
 * eager rebuild at every thread count.
 */

#ifndef SMOOTHE_AUTODIFF_EXEC_HPP
#define SMOOTHE_AUTODIFF_EXEC_HPP

#include <cstdint>
#include <vector>

#include "autodiff/ops.hpp"

namespace smoothe::ad::exec {

/** Resolved operands for one forward op. */
struct ForwardArgs
{
    const OpNode& node;
    const Tensor* a = nullptr;  ///< value(in0), null for sources
    const Tensor* b = nullptr;  ///< value(in1), null for unary ops
    Tensor* value = nullptr;    ///< destination (correctly shaped)
    Tensor* saved = nullptr;    ///< op-specific stash (TrExpm: expm rows)
    std::vector<std::uint32_t>* savedIdx = nullptr; ///< segment argmax
    Backend backend = Backend::Vectorized;
};

/**
 * Executes one forward op into args.value. Sources (Leaf, Constant,
 * Input) are no-ops — their value is bound, not computed.
 */
void forwardOp(const ForwardArgs& args);

/** Resolved operands for one backward op. */
struct BackwardArgs
{
    const OpNode& node;
    const Tensor& g;            ///< incoming gradient of the node
    const Tensor* a = nullptr;  ///< value(in0) where the op needs it
    const Tensor* b = nullptr;  ///< value(in1) where the op needs it
    const Tensor* value = nullptr; ///< the node's own forward value
    const Tensor* saved = nullptr;
    const std::vector<std::uint32_t>* savedIdx = nullptr;
    Tensor* ga = nullptr;       ///< grad(in0) accumulator; null = skip side
    Tensor* gb = nullptr;       ///< grad(in1) accumulator; null = skip side
    Backend backend = Backend::Vectorized;
};

/**
 * Accumulates one op's input gradients. A null ga/gb skips that side —
 * the Program passes null for inputs that provably need no gradient
 * (constants, inputs, subgraphs unreachable from a Param). Leaf adds g
 * into its Param::grad; Constant/Input are no-ops.
 */
void backwardOp(const BackwardArgs& args);

} // namespace smoothe::ad::exec

#endif // SMOOTHE_AUTODIFF_EXEC_HPP
