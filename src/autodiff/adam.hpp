/**
 * @file
 * Adam optimizer over autodiff Params (Kingma & Ba), used both for
 * SmoothE's theta optimization and for MLP cost-model training.
 */

#ifndef SMOOTHE_AUTODIFF_ADAM_HPP
#define SMOOTHE_AUTODIFF_ADAM_HPP

#include <vector>

#include "autodiff/tape.hpp"

namespace smoothe::ad {

/** Adam hyper-parameters. */
struct AdamConfig
{
    float lr = 0.05f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
};

/** Standard Adam with bias correction. */
class Adam
{
  public:
    Adam(std::vector<Param*> params, AdamConfig config,
         Arena* arena = nullptr);

    /** Zeroes all parameter gradients. */
    void zeroGrad();

    /** Applies one update from the accumulated gradients. */
    void step();

    /** Changes the learning rate (e.g. for schedules). */
    void setLearningRate(float lr) { config_.lr = lr; }
    float learningRate() const { return config_.lr; }

    /**
     * Optimizer-state access for warm starts: a caller resuming
     * optimization on a grown parameter remaps the first/second moments
     * element-wise and restores the bias-correction step count so the
     * carried moments keep their calibration.
     */
    long stepCount() const { return step_; }
    void setStepCount(long step) { step_ = step; }
    std::size_t numParams() const { return params_.size(); }
    Tensor& moment1(std::size_t param) { return m_[param]; }
    Tensor& moment2(std::size_t param) { return v_[param]; }
    const Tensor& moment1(std::size_t param) const { return m_[param]; }
    const Tensor& moment2(std::size_t param) const { return v_[param]; }

  private:
    std::vector<Param*> params_;
    AdamConfig config_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    long step_ = 0;
};

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_ADAM_HPP
