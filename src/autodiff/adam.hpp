/**
 * @file
 * Adam optimizer over autodiff Params (Kingma & Ba), used both for
 * SmoothE's theta optimization and for MLP cost-model training.
 */

#ifndef SMOOTHE_AUTODIFF_ADAM_HPP
#define SMOOTHE_AUTODIFF_ADAM_HPP

#include <vector>

#include "autodiff/tape.hpp"

namespace smoothe::ad {

/** Adam hyper-parameters. */
struct AdamConfig
{
    float lr = 0.05f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
};

/** Standard Adam with bias correction. */
class Adam
{
  public:
    Adam(std::vector<Param*> params, AdamConfig config,
         Arena* arena = nullptr);

    /** Zeroes all parameter gradients. */
    void zeroGrad();

    /** Applies one update from the accumulated gradients. */
    void step();

    /** Changes the learning rate (e.g. for schedules). */
    void setLearningRate(float lr) { config_.lr = lr; }
    float learningRate() const { return config_.lr; }

  private:
    std::vector<Param*> params_;
    AdamConfig config_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    long step_ = 0;
};

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_ADAM_HPP
