/**
 * @file
 * Shared operation metadata for the autodiff layer.
 *
 * OpNode is the execution-independent description of one recorded
 * operation: which op, which inputs, and the constant payload it
 * captured. The eager Tape wraps it with per-node value/grad tensors;
 * the compiled Program steals the OpNode list wholesale and binds
 * values/grads to a static buffer plan instead. Keeping the metadata in
 * one struct is what lets both execution modes share one kernel body
 * per op (src/autodiff/exec.hpp) and stay bit-identical.
 */

#ifndef SMOOTHE_AUTODIFF_OPS_HPP
#define SMOOTHE_AUTODIFF_OPS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace smoothe::ad {

using tensor::Arena;
using tensor::Backend;
using tensor::SegmentIndex;
using tensor::Tensor;

/** A trainable leaf: value plus accumulated gradient. */
struct Param
{
    Tensor value;
    Tensor grad;

    Param() = default;
    explicit Param(Tensor init)
        : value(std::move(init)), grad(value.rows(), value.cols())
    {}

    /** Clears the accumulated gradient. */
    void zeroGrad() { grad.fill(0.0f); }
};

/** Handle to a recorded node. */
using VarId = std::int32_t;

/** Sparse (node, matrix-position) scatter entries for ScatterMatrix. */
using MatrixEntry = tensor::MatrixEntry;

/**
 * Operation kinds. Leaf/Constant/Input are sources (no compute);
 * FusedAffine and FusedMulAddConst exist only in compiled Programs,
 * produced by the recorder-chain fusion pass — the eager Tape never
 * records them.
 */
enum class Op : std::uint8_t {
    Leaf,
    Constant,
    Input,
    Add,
    Sub,
    Mul,
    Scale,
    AddScalar,
    Relu,
    MulConst,
    AddConst,
    DotRowsConst,
    SumAll,
    MeanRows,
    SegmentSoftmax,
    SegmentProductComplement,
    SegmentMaxGather,
    GatherCols,
    MatMul,
    AddRowBroadcast,
    ScatterMatrix,
    TrExpm,
    FusedAffine,      ///< out = (alpha * a) + beta
    FusedMulAddConst, ///< out = (a * constTensor) + constTensor2
    FusedElemChain,   ///< out = chain of constant-Jacobian stages
};

/**
 * Execution-independent description of one operation: op kind, input
 * node ids, and captured constants. Shapes are not stored — they are
 * implied by the inputs and snapshotted by the Program compiler.
 */
struct OpNode
{
    Op op = Op::Constant;
    VarId in0 = -1;
    VarId in1 = -1;
    float alpha = 0.0f;
    float beta = 0.0f; ///< FusedAffine addend
    Param* param = nullptr;
    const SegmentIndex* segs = nullptr;
    const std::vector<std::uint32_t>* index = nullptr;
    const std::vector<MatrixEntry>* entries = nullptr;
    std::vector<float> constVec;
    Tensor constTensor;
    Tensor constTensor2; ///< FusedMulAddConst addend
    /** FusedElemChain stages, applied in order (empty otherwise). */
    std::vector<tensor::ElemStage> chain;
    std::size_t dim = 0;
    bool meanOverRows = false;
    std::string inputName; ///< Op::Input slot name ("" otherwise)
};

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_OPS_HPP
