#include "autodiff/exec.hpp"

#include <limits>
#include <vector>

#include "autodiff/matexp.hpp"
#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "tensor/kernels.hpp"

namespace smoothe::ad::exec {

using tensor::parallelChunks;
using tensor::rowGrain;

void
forwardOp(const ForwardArgs& args)
{
    const OpNode& node = args.node;
    const Backend backend = args.backend;
    switch (node.op) {
      case Op::Leaf:
      case Op::Constant:
      case Op::Input:
        break; // sources: value is bound, not computed
      case Op::Add:
        tensor::addInto(*args.a, *args.b, *args.value, backend);
        break;
      case Op::Sub:
        tensor::subInto(*args.a, *args.b, *args.value, backend);
        break;
      case Op::Mul:
        tensor::mulInto(*args.a, *args.b, *args.value, backend);
        break;
      case Op::Scale:
        tensor::scaleInto(*args.a, node.alpha, *args.value, backend);
        break;
      case Op::AddScalar:
        tensor::addScalarInto(*args.a, node.alpha, *args.value, backend);
        break;
      case Op::FusedAffine:
        tensor::affineInto(*args.a, node.alpha, node.beta, *args.value,
                           backend);
        break;
      case Op::Relu:
        tensor::reluInto(*args.a, *args.value, backend);
        break;
      case Op::MulConst:
        tensor::mulConstInto(*args.a, node.constTensor, *args.value,
                             backend);
        break;
      case Op::AddConst:
        tensor::addConstInto(*args.a, node.constTensor, *args.value,
                             backend);
        break;
      case Op::FusedMulAddConst:
        tensor::mulAddConstInto(*args.a, node.constTensor,
                                node.constTensor2, *args.value, backend);
        break;
      case Op::FusedElemChain:
        tensor::elemChainInto(*args.a, node.chain, *args.value, backend);
        break;
      case Op::DotRowsConst:
        tensor::dotRowsInto(*args.a, node.constVec, *args.value, backend);
        break;
      case Op::SumAll:
        tensor::sumAllInto(*args.a, *args.value);
        break;
      case Op::MeanRows:
        tensor::meanRowsInto(*args.a, *args.value);
        break;
      case Op::SegmentSoftmax:
        tensor::segmentSoftmaxInto(*args.a, *node.segs, *args.value,
                                   backend);
        break;
      case Op::SegmentProductComplement:
        tensor::segmentProductComplementInto(*args.a, *node.segs,
                                             *args.value, backend);
        break;
      case Op::SegmentMaxGather:
        tensor::segmentMaxGatherInto(*args.a, *node.segs, *args.value,
                                     *args.savedIdx, backend);
        break;
      case Op::GatherCols:
        tensor::gatherColsInto(*args.a, *node.index, *args.value, backend);
        break;
      case Op::MatMul:
        tensor::matmulInto(*args.a, *args.b, *args.value, backend);
        break;
      case Op::AddRowBroadcast:
        tensor::addRowBroadcastInto(*args.a, *args.b, *args.value);
        break;
      case Op::ScatterMatrix:
        tensor::scatterMatrixInto(*args.a, *node.entries, node.dim,
                                  node.meanOverRows, *args.value, backend);
        break;
      case Op::TrExpm: {
        static obs::Counter& calls = obs::counter("kernel.matexp.calls");
        static obs::Counter& bytes = obs::counter("kernel.matexp.bytes");
        const Tensor& av = *args.a;
        calls.add(1);
        bytes.add(av.size() * sizeof(float));
        Tensor& out = *args.value;
        Tensor& saved = *args.saved;
        const std::size_t dim = node.dim;
        // Each row's power series is independent; one matrix per task
        // (each exponential is O(dim^3), far above any sensible grain).
        parallelChunks(
            backend != Backend::Scalar, av.rows(), 1,
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    if (backend == Backend::Scalar)
                        expmNaive(av.row(r), dim, saved.row(r));
                    else
                        expm(av.row(r), dim, saved.row(r));
                    double trace = 0.0;
                    for (std::size_t i = 0; i < dim; ++i)
                        trace += saved.at(r, i * dim + i);
                    out.at(r, 0) = static_cast<float>(trace);
                }
            });
        break;
      }
    }
}

void
backwardOp(const BackwardArgs& args)
{
    const OpNode& node = args.node;
    const Tensor& g = args.g;
    Tensor* const gaPtr = args.ga;
    Tensor* const gbPtr = args.gb;
    switch (node.op) {
      case Op::Leaf: {
        Tensor& pg = node.param->grad;
        SMOOTHE_DCHECK(pg.rows() == g.rows() && pg.cols() == g.cols(),
                       "leaf grad shape drifted");
        float* __restrict dst = pg.data();
        const float* __restrict src = g.data();
        for (std::size_t i = 0; i < g.size(); ++i)
            dst[i] += src[i];
        break;
      }
      case Op::Constant:
      case Op::Input:
        break;
      case Op::Add: {
        if (gaPtr) {
            Tensor& ga = *gaPtr;
            for (std::size_t i = 0; i < g.size(); ++i)
                ga.data()[i] += g.data()[i];
        }
        if (gbPtr) {
            Tensor& gb = *gbPtr;
            for (std::size_t i = 0; i < g.size(); ++i)
                gb.data()[i] += g.data()[i];
        }
        break;
      }
      case Op::Sub: {
        if (gaPtr) {
            Tensor& ga = *gaPtr;
            for (std::size_t i = 0; i < g.size(); ++i)
                ga.data()[i] += g.data()[i];
        }
        if (gbPtr) {
            Tensor& gb = *gbPtr;
            for (std::size_t i = 0; i < g.size(); ++i)
                gb.data()[i] -= g.data()[i];
        }
        break;
      }
      case Op::Mul: {
        if (gaPtr) {
            Tensor& ga = *gaPtr;
            const Tensor& bv = *args.b;
            for (std::size_t i = 0; i < g.size(); ++i)
                ga.data()[i] += g.data()[i] * bv.data()[i];
        }
        if (gbPtr) {
            Tensor& gb = *gbPtr;
            const Tensor& av = *args.a;
            for (std::size_t i = 0; i < g.size(); ++i)
                gb.data()[i] += g.data()[i] * av.data()[i];
        }
        break;
      }
      case Op::Scale:
      case Op::FusedAffine: {
        // FusedAffine backward equals Scale's: the + beta contributes
        // identity, exactly like the unfused AddScalar step it replaced.
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += node.alpha * g.data()[i];
        break;
      }
      case Op::AddScalar: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += g.data()[i];
        break;
      }
      case Op::Relu: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const Tensor& ov = *args.value;
        for (std::size_t i = 0; i < g.size(); ++i) {
            if (ov.data()[i] > 0.0f)
                ga.data()[i] += g.data()[i];
        }
        break;
      }
      case Op::MulConst:
      case Op::FusedMulAddConst: {
        // FusedMulAddConst backward equals MulConst's: the + constTensor2
        // contributes identity, like the unfused AddConst it replaced.
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const Tensor& c = node.constTensor;
        for (std::size_t r = 0; r < g.rows(); ++r) {
            const float* m = c.row(c.rows() == 1 ? 0 : r);
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t i = 0; i < g.cols(); ++i)
                gar[i] += gr[i] * m[i];
        }
        break;
      }
      case Op::AddConst: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        for (std::size_t i = 0; i < g.size(); ++i)
            ga.data()[i] += g.data()[i];
        break;
      }
      case Op::FusedElemChain: {
        // Reverse-stage Jacobian product. Each unfused stage's backward
        // is one rounded multiply (Scale/MulConst) or an exact copy
        // (AddScalar/AddConst) into a freshly zeroed grad slot, so
        // threading one value through the reversed stages reproduces
        // the unfused accumulation bit for bit.
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const auto& stages = node.chain;
        std::vector<const float*> stageRows(stages.size(), nullptr);
        for (std::size_t r = 0; r < g.rows(); ++r) {
            for (std::size_t s = 0; s < stages.size(); ++s) {
                const Tensor& c = stages[s].c;
                stageRows[s] =
                    c.empty() ? nullptr : c.row(c.rows() == 1 ? 0 : r);
            }
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t i = 0; i < g.cols(); ++i) {
                float v = gr[i];
                for (std::size_t s = stages.size(); s > 0; --s) {
                    switch (stages[s - 1].kind) {
                      case tensor::ElemStageKind::Scale:
                        v = stages[s - 1].alpha * v;
                        break;
                      case tensor::ElemStageKind::MulConst:
                        v = v * stageRows[s - 1][i];
                        break;
                      case tensor::ElemStageKind::AddScalar:
                      case tensor::ElemStageKind::AddConst:
                        break; // identity Jacobian
                    }
                }
                gar[i] += v;
            }
        }
        break;
      }
      case Op::DotRowsConst: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            const float gr = g.at(r, 0);
            float* gar = ga.row(r);
            const float* u = node.constVec.data();
            for (std::size_t i = 0; i < ga.cols(); ++i)
                gar[i] += gr * u[i];
        }
        break;
      }
      case Op::SumAll: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const float gr = g.at(0, 0);
        for (std::size_t i = 0; i < ga.size(); ++i)
            ga.data()[i] += gr;
        break;
      }
      case Op::MeanRows: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const float inv =
            ga.rows() ? 1.0f / static_cast<float>(ga.rows()) : 0.0f;
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            float* gar = ga.row(r);
            const float* gr = g.row(0);
            for (std::size_t i = 0; i < ga.cols(); ++i)
                gar[i] += gr[i] * inv;
        }
        break;
      }
      case Op::SegmentSoftmax: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const Tensor& y = *args.value;
        const SegmentIndex* segs = node.segs;
        parallelChunks(
            args.backend != Backend::Scalar, ga.rows(),
            rowGrain(ga.cols()),
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float* yr = y.row(r);
                    const float* gr = g.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t s = 0; s < segs->numSegments(); ++s) {
                        const std::uint32_t begin = segs->offsets[s];
                        const std::uint32_t end = segs->offsets[s + 1];
                        if (begin == end)
                            continue;
                        float dot = 0.0f;
                        for (std::uint32_t e = begin; e < end; ++e) {
                            const std::uint32_t col = segs->items[e];
                            dot += gr[col] * yr[col];
                        }
                        for (std::uint32_t e = begin; e < end; ++e) {
                            const std::uint32_t col = segs->items[e];
                            gar[col] += yr[col] * (gr[col] - dot);
                        }
                    }
                }
            });
        break;
      }
      case Op::SegmentProductComplement: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const Tensor& x = *args.a;
        const SegmentIndex* segs = node.segs;
        parallelChunks(
            args.backend != Backend::Scalar, ga.rows(),
            rowGrain(ga.cols()),
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                // Per-chunk scratch: rows in other chunks run concurrently.
                std::vector<float> prefix;
                std::vector<float> suffix;
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float* xr = x.row(r);
                    const float* gr = g.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t s = 0; s < segs->numSegments(); ++s) {
                        const std::uint32_t begin = segs->offsets[s];
                        const std::uint32_t end = segs->offsets[s + 1];
                        const std::size_t len = end - begin;
                        if (len == 0)
                            continue;
                        prefix.assign(len + 1, 1.0f);
                        suffix.assign(len + 1, 1.0f);
                        for (std::size_t e = 0; e < len; ++e) {
                            prefix[e + 1] =
                                prefix[e] *
                                (1.0f - xr[segs->items[begin + e]]);
                        }
                        for (std::size_t e = len; e > 0; --e) {
                            suffix[e - 1] =
                                suffix[e] *
                                (1.0f - xr[segs->items[begin + e - 1]]);
                        }
                        for (std::size_t e = 0; e < len; ++e) {
                            const std::uint32_t col =
                                segs->items[begin + e];
                            // d/dx_e prod (1 - x_k) = -prod_{k!=e} (1 - x_k)
                            gar[col] +=
                                gr[s] * (-prefix[e] * suffix[e + 1]);
                        }
                    }
                }
            });
        break;
      }
      case Op::SegmentMaxGather: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const std::size_t numSegments = node.segs->numSegments();
        const auto& savedIdx = *args.savedIdx;
        for (std::size_t r = 0; r < ga.rows(); ++r) {
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t s = 0; s < numSegments; ++s) {
                const std::uint32_t arg = savedIdx[r * numSegments + s];
                if (arg != std::numeric_limits<std::uint32_t>::max())
                    gar[arg] += gr[s];
            }
        }
        break;
      }
      case Op::GatherCols: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const auto& index = *node.index;
        for (std::size_t r = 0; r < g.rows(); ++r) {
            const float* gr = g.row(r);
            float* gar = ga.row(r);
            for (std::size_t i = 0; i < index.size(); ++i)
                gar[index[i]] += gr[i];
        }
        break;
      }
      case Op::MatMul: {
        if (gaPtr) {
            // grad_a = g * w^T
            Tensor& ga = *gaPtr;
            const Tensor& wv = *args.b;
            for (std::size_t b = 0; b < ga.rows(); ++b) {
                const float* gr = g.row(b);
                float* gar = ga.row(b);
                for (std::size_t k = 0; k < ga.cols(); ++k) {
                    const float* wRow = wv.row(k);
                    float acc = 0.0f;
                    for (std::size_t h = 0; h < g.cols(); ++h)
                        acc += gr[h] * wRow[h];
                    gar[k] += acc;
                }
            }
        }
        if (gbPtr) {
            // grad_w = a^T * g
            Tensor& gw = *gbPtr;
            const Tensor& av = *args.a;
            for (std::size_t b = 0; b < av.rows(); ++b) {
                const float* aRow = av.row(b);
                const float* gr = g.row(b);
                for (std::size_t k = 0; k < av.cols(); ++k) {
                    const float a_bk = aRow[k];
                    if (a_bk == 0.0f)
                        continue;
                    float* gwRow = gw.row(k);
                    for (std::size_t h = 0; h < g.cols(); ++h)
                        gwRow[h] += a_bk * gr[h];
                }
            }
        }
        break;
      }
      case Op::AddRowBroadcast: {
        if (gaPtr) {
            Tensor& ga = *gaPtr;
            for (std::size_t r = 0; r < g.rows(); ++r) {
                const float* gr = g.row(r);
                float* gar = ga.row(r);
                for (std::size_t i = 0; i < g.cols(); ++i)
                    gar[i] += gr[i];
            }
        }
        if (gbPtr) {
            Tensor& gb = *gbPtr;
            for (std::size_t r = 0; r < g.rows(); ++r) {
                const float* gr = g.row(r);
                float* gbr = gb.row(0);
                for (std::size_t i = 0; i < g.cols(); ++i)
                    gbr[i] += gr[i];
            }
        }
        break;
      }
      case Op::ScatterMatrix: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        if (node.meanOverRows) {
            const float inv =
                ga.rows() ? 1.0f / static_cast<float>(ga.rows()) : 0.0f;
            const float* gr = g.row(0);
            for (const MatrixEntry& entry : *node.entries) {
                const float flow = gr[entry.position] * inv;
                for (std::size_t r = 0; r < ga.rows(); ++r)
                    ga.at(r, entry.column) += flow;
            }
        } else {
            for (std::size_t r = 0; r < ga.rows(); ++r) {
                const float* gr = g.row(r);
                float* gar = ga.row(r);
                for (const MatrixEntry& entry : *node.entries)
                    gar[entry.column] += gr[entry.position];
            }
        }
        break;
      }
      case Op::TrExpm: {
        if (!gaPtr)
            break;
        Tensor& ga = *gaPtr;
        const Tensor& saved = *args.saved;
        const std::size_t d = node.dim;
        parallelChunks(
            args.backend != Backend::Scalar, ga.rows(), 1,
            [&](std::size_t rowBegin, std::size_t rowEnd) {
                for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                    const float gr = g.at(r, 0);
                    const float* e = saved.row(r);
                    float* gar = ga.row(r);
                    for (std::size_t i = 0; i < d; ++i) {
                        for (std::size_t j = 0; j < d; ++j)
                            gar[i * d + j] += gr * e[j * d + i];
                    }
                }
            });
        break;
      }
    }
}

} // namespace smoothe::ad::exec
