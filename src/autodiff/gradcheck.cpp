#include "autodiff/gradcheck.hpp"

#include <cmath>

namespace smoothe::ad {

namespace {

double
evaluateLoss(const GraphBuilder& build)
{
    Tape tape;
    const VarId loss = build(tape);
    const Tensor& v = tape.value(loss);
    return v.sum();
}

} // namespace

GradCheckResult
checkGradients(const std::vector<Param*>& params, const GraphBuilder& build,
               double epsilon, double tolerance)
{
    // Analytic gradients.
    for (Param* p : params)
        p->zeroGrad();
    {
        Tape tape;
        const VarId loss = build(tape);
        tape.backward(loss);
    }

    GradCheckResult result;
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
        Param* p = params[pi];
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            const float original = p->value.data()[i];
            p->value.data()[i] = original + static_cast<float>(epsilon);
            const double plus = evaluateLoss(build);
            p->value.data()[i] = original - static_cast<float>(epsilon);
            const double minus = evaluateLoss(build);
            p->value.data()[i] = original;

            const double numeric = (plus - minus) / (2.0 * epsilon);
            const double analytic = p->grad.data()[i];
            const double absErr = std::fabs(numeric - analytic);
            const double scale =
                std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
            const double relErr = absErr / scale;
            if (relErr > result.maxRelError) {
                result.maxRelError = relErr;
                result.worstParam = pi;
                result.worstIndex = i;
            }
            result.maxAbsError = std::max(result.maxAbsError, absErr);
            if (relErr > tolerance)
                result.ok = false;
        }
    }
    return result;
}

} // namespace smoothe::ad
