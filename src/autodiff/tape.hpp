/**
 * @file
 * Reverse-mode automatic differentiation over batched tensors.
 *
 * The Tape records a forward computation as a sequence of operation nodes
 * and replays it in reverse to accumulate gradients into leaf Params
 * (define-by-run, like PyTorch); Params live outside the tape and persist
 * across steps. The tape is also the recording front-end for the compiled
 * Program (src/autodiff/program.hpp): record the structurally stable
 * iteration graph once, hand the tape to Program, and replay it with a
 * static buffer plan instead of rebuilding every step.
 *
 * The op set is deliberately tailored to what SmoothE and the MLP cost
 * model need: elementwise arithmetic, segment softmax (per-e-class),
 * segment product/max over parent lists (the phi propagation of
 * Section 3.3), gathers, dense matmul, and tr(exp(A)) with its exact
 * analytic gradient exp(A)^T (Section 3.4).
 */

#ifndef SMOOTHE_AUTODIFF_TAPE_HPP
#define SMOOTHE_AUTODIFF_TAPE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "autodiff/ops.hpp"
#include "tensor/tensor.hpp"

namespace smoothe::ad {

/** The reverse-mode tape. */
class Tape
{
  public:
    /**
     * @param backend kernel flavor (Figure 6 ablation)
     * @param arena optional memory accounting for all node tensors
     */
    explicit Tape(Backend backend = Backend::Vectorized,
                  Arena* arena = nullptr)
        : backend_(backend), arena_(arena)
    {}

    /** Drops all nodes (Params are untouched). */
    void clear();

    std::size_t numNodes() const { return nodes_.size(); }
    Backend backend() const { return backend_; }

    /**
     * Deep structural validator (see DESIGN.md "Correctness tooling"):
     * every node's inputs must precede it (the tape is its own
     * topological order), per-op operand pointers must be present, and
     * recorded shapes must be consistent with what the op computes from
     * its inputs. With screen_values, additionally scans every forward
     * value for NaN/Inf — SMOOTHE_DEBUG_INVARIANTS builds run this at
     * the head of backward().
     * @return std::nullopt when healthy, else the first problem found.
     */
    std::optional<std::string>
    checkInvariants(bool screen_values = false) const;

    /** The forward value of a node. */
    const Tensor& value(VarId id) const;

    /** The gradient of a node (valid after backward()). */
    const Tensor& grad(VarId id) const;

    // --- graph construction -------------------------------------------

    /** Leaf referencing a persistent Param; backward adds into its grad. */
    VarId leaf(Param* param);

    /** Constant (no gradient flows into it). */
    VarId constant(Tensor value);

    /**
     * Named mutable input slot (no gradient flows into it). On the eager
     * tape it behaves like a constant; a compiled Program exposes it via
     * Program::setInputScalar so per-iteration dynamic values (the
     * lambda warmup ramp) can change without re-recording.
     */
    VarId input(Tensor value, std::string name);

    /** out = a + b (same shape). */
    VarId add(VarId a, VarId b);
    /** out = a - b (same shape). */
    VarId sub(VarId a, VarId b);
    /** out = a * b elementwise (same shape). */
    VarId mul(VarId a, VarId b);
    /** out = alpha * a. */
    VarId scale(VarId a, float alpha);
    /** out = a + alpha. */
    VarId addScalar(VarId a, float alpha);
    /** out = max(a, 0). */
    VarId relu(VarId a);
    /** out = a * c elementwise with a constant tensor (broadcast 1 x C
     *  over rows allowed). */
    VarId mulConst(VarId a, Tensor c);
    /** out = a + c elementwise with a constant tensor (broadcast 1 x C
     *  over rows allowed). */
    VarId addConst(VarId a, Tensor c);

    /** out[b] = sum_i a[b, i] * u[i]; result is B x 1. */
    VarId dotRowsConst(VarId a, std::vector<float> u);

    /** out = sum of all elements; result is 1 x 1. */
    VarId sumAll(VarId a);

    /** out = column-wise mean over rows; B x C -> 1 x C. */
    VarId meanRows(VarId a);

    /**
     * Softmax within each column segment, per batch row.
     * segs partitions the columns of a (e-class -> member e-nodes).
     * Lifetime: segs must outlive the tape.
     */
    VarId segmentSoftmax(VarId a, const SegmentIndex* segs);

    /**
     * out[b, s] = prod_{k in segment s} (1 - a[b, items[k]]).
     * Empty segments yield 1. Input B x N, output B x S.
     */
    VarId segmentProductComplement(VarId a, const SegmentIndex* segs);

    /**
     * out[b, s] = max_{k in segment s} a[b, items[k]].
     * Empty segments yield 0. Gradient flows to the argmax only.
     */
    VarId segmentMaxGather(VarId a, const SegmentIndex* segs);

    /** out[b, i] = a[b, index[i]]; B x M -> B x N column gather. */
    VarId gatherCols(VarId a, const std::vector<std::uint32_t>* index);

    /**
     * Dense matmul: a is B x K, w is K x H; out is B x H.
     * w is a tape node (usually a leaf) so MLP weights are trainable.
     */
    VarId matmul(VarId a, VarId w);

    /** out[b, :] = a[b, :] + bias[0, :]; bias is a 1 x H node. */
    VarId addRowBroadcast(VarId a, VarId bias);

    /**
     * Scatter into per-row d x d matrices:
     * out[r, e.position] += a[r, e.column] for every entry e.
     * When mean_over_rows is set the result is 1 x d^2 (the batched
     * matrix-exponential approximation of Eq. 11), else B x d^2.
     * Lifetime: entries must outlive the tape.
     */
    VarId scatterMatrix(VarId a, const std::vector<MatrixEntry>* entries,
                        std::size_t dim, bool mean_over_rows);

    /**
     * out[r] = tr(exp(M_r)) where row r of a holds a d x d matrix.
     * Exact gradient: dL/dM_r = g_r * exp(M_r)^T.
     */
    VarId trExpm(VarId a, std::size_t dim);

    // --- execution ------------------------------------------------------

    /**
     * Reverse pass from a scalar (1 x 1) or vector node; the seed gradient
     * is all-ones. Accumulates into every reachable leaf's Param::grad.
     */
    void backward(VarId root);

  private:
    /** Recorded op metadata plus the eager per-node tensors. */
    struct Node : OpNode
    {
        Tensor value;
        Tensor grad;
        Tensor saved;                    ///< op-specific (e.g. expm output)
        std::vector<std::uint32_t> savedIdx; ///< e.g. segment argmax
    };

    VarId push(Node node);
    Tensor& ensureGrad(VarId id);
    /** Runs the node's forward kernel into node.value via exec::forwardOp. */
    void compute(Node& node);
    void backwardNode(Node& node);

    /** Test-only backdoor used to corrupt state and prove the validator
     *  catches it (tests/test_check.cpp). */
    friend struct TapeTestPeer;
    /** The compiled replayer steals the recorded node list wholesale. */
    friend class Program;

    Backend backend_;
    Arena* arena_;
    std::vector<Node> nodes_;
};

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_TAPE_HPP
