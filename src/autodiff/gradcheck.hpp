/**
 * @file
 * Finite-difference gradient checking, used by the autodiff unit and
 * property tests to validate every tape op against numeric derivatives.
 */

#ifndef SMOOTHE_AUTODIFF_GRADCHECK_HPP
#define SMOOTHE_AUTODIFF_GRADCHECK_HPP

#include <functional>

#include "autodiff/tape.hpp"

namespace smoothe::ad {

/**
 * Builds a scalar-valued graph from params on a fresh tape and returns the
 * loss VarId. Called repeatedly by checkGradients with perturbed params.
 */
using GraphBuilder = std::function<VarId(Tape&)>;

/** Result of a gradient check. */
struct GradCheckResult
{
    bool ok = true;
    double maxAbsError = 0.0;
    double maxRelError = 0.0;
    std::size_t worstParam = 0;
    std::size_t worstIndex = 0;
};

/**
 * Compares analytic gradients against central finite differences.
 * @param params leaves to perturb (grad fields are overwritten)
 * @param build constructs the loss on a given tape
 * @param epsilon finite-difference step
 * @param tolerance max allowed |analytic - numeric| after relative scaling
 */
GradCheckResult checkGradients(const std::vector<Param*>& params,
                               const GraphBuilder& build,
                               double epsilon = 1e-3,
                               double tolerance = 2e-2);

} // namespace smoothe::ad

#endif // SMOOTHE_AUTODIFF_GRADCHECK_HPP
