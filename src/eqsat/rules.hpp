/**
 * @file
 * Reusable rewrite-rule libraries for the equality-saturation engine,
 * mirroring the rule sets of the systems the paper's datasets come from:
 * generic arithmetic (rover-style datapath identities), trigonometric
 * rules (the paper's running example), and vectorization-flavored rules
 * (diospyros-style shuffles). Used by examples, tests, and the
 * eqsat-grown dataset generators.
 */

#ifndef SMOOTHE_EQSAT_RULES_HPP
#define SMOOTHE_EQSAT_RULES_HPP

#include <vector>

#include "eqsat/term.hpp"

namespace smoothe::eqsat {

/**
 * Arithmetic identities over {+, *, <<, neg, zero, one, two}:
 * commutativity, associativity, distributivity, identity/annihilator
 * elimination, strength reduction (x * 2 -> x << 1), and square forming.
 */
const std::vector<Rewrite>& arithmeticRules();

/** The paper's two trig rewrites plus supporting identities. */
const std::vector<Rewrite>& trigRules();

/**
 * Datapath-style rules used to grow rover-like e-graphs: multiply-add
 * fusion/unfusion, shift-add decompositions of constant multiplies.
 */
const std::vector<Rewrite>& datapathRules();

/**
 * Caviar-style TRS rules over a Halide-flavored expression language
 * ({+, -, *, min, max, neg} with small constants), split into the
 * phases Caviar's phased scheduler runs in order: cheap normalization
 * first, structural expansion second, min/max lemmas last. Each phase
 * is a self-contained rule set; growCaviarEGraph cycles through them.
 */
const std::vector<std::vector<Rewrite>>& caviarRulePhases();

/** All caviar rules flattened into one set (unphased baseline). */
const std::vector<Rewrite>& caviarRules();

} // namespace smoothe::eqsat

#endif // SMOOTHE_EQSAT_RULES_HPP
