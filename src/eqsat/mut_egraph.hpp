/**
 * @file
 * A mutable e-graph for equality saturation: union-find over e-class ids
 * with hashconsing of e-nodes, congruence-closure rebuilding, e-matching,
 * and a saturation runner. Mirrors the architecture of egg (Willsey et
 * al., POPL 2021) at a smaller scale.
 *
 * After saturation, exportGraph() converts into the immutable
 * extraction-oriented smoothe::eg::EGraph with a caller-provided per-op
 * cost function.
 */

#ifndef SMOOTHE_EQSAT_MUT_EGRAPH_HPP
#define SMOOTHE_EQSAT_MUT_EGRAPH_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "egraph/delta.hpp"
#include "egraph/egraph.hpp"
#include "eqsat/delta.hpp"
#include "eqsat/term.hpp"

namespace smoothe::eqsat {

/** A hashconsed e-node: interned op symbol + canonical child class ids. */
struct Node
{
    std::uint32_t op; ///< symbol id
    std::vector<Id> children;

    bool
    operator==(const Node& other) const
    {
        return op == other.op && children == other.children;
    }
};

/** Hash for hashconsing nodes. */
struct NodeHash
{
    std::size_t
    operator()(const Node& node) const
    {
        std::size_t h = node.op * 0x9e3779b97f4a7c15ULL;
        for (Id child : node.children)
            h = (h ^ child) * 0x100000001b3ULL;
        return h;
    }
};

/** Variable bindings produced by e-matching: var name -> e-class. */
using Subst = std::map<std::string, Id>;

/**
 * Cross-epoch identity carried by exportIncremental(): how the previous
 * export's dense node/class ids map onto the mutable graph, so the next
 * export can emit a GraphDelta relating the two. Value-semantic; owned
 * by whoever drives the saturation loop.
 */
struct ExportState
{
    bool valid = false;
    std::size_t prevNumNodes = 0;
    std::size_t prevNumClasses = 0;
    /** prev canonical mutable id -> prev export class. */
    std::unordered_map<Id, eg::ClassId> classOfMut;
    /** prev canonical node form -> prev export node id. */
    std::unordered_map<Node, eg::NodeId, NodeHash> nodeByForm;
    /** prev export class -> emitted node count. */
    std::vector<std::size_t> classNodeCount;
};

/** One incremental export: the new graph plus the delta from the last. */
struct ExportResult
{
    eg::EGraph graph;
    eg::GraphDelta delta;
};

/** Statistics for one saturation run. */
struct RunStats
{
    std::size_t iterations = 0;
    std::size_t totalMatches = 0;
    std::size_t finalNodes = 0;
    std::size_t finalClasses = 0;
    bool saturated = false;   ///< no new nodes/merges in the last iteration
    bool hitNodeLimit = false;
};

/** Limits for the saturation runner. */
struct RunLimits
{
    std::size_t maxIterations = 16;
    std::size_t maxNodes = 100000;
    /** Per-rule match cap per iteration to keep growth polynomial. */
    std::size_t maxMatchesPerRule = 10000;
};

/** The mutable e-graph. */
class MutEGraph
{
  public:
    MutEGraph() = default;

    /** Interns an operator symbol. */
    std::uint32_t internSymbol(const std::string& name);

    /** Returns the symbol string for an interned id. */
    const std::string& symbolName(std::uint32_t id) const;

    /** Adds (or finds) an e-node; children are canonicalized. */
    Id add(const std::string& op, std::vector<Id> children);

    /** Adds a ground term bottom-up; returns its e-class. */
    Id addTerm(const Term& term);

    /** Canonical representative of an e-class id. */
    Id find(Id id) const;

    /** Merges two e-classes; returns the surviving representative. */
    Id merge(Id a, Id b);

    /**
     * Restores the congruence invariant after merges (egg-style deferred
     * rebuild): re-canonicalizes nodes and merges classes that became
     * congruent.
     */
    void rebuild();

    /**
     * Deep structural validator (see DESIGN.md "Correctness tooling"):
     * union-find ids in range, absorbed classes emptied, and — once the
     * worklist is drained — full hashcons/class-list agreement: every
     * stored node canonicalizes to a hashcons entry resolving back to
     * its class, every hashcons key is canonical, and no node is owned
     * by two classes. While the delta log is enabled it also validates
     * the pending log against the materialized graph: the id count
     * equals the log base plus the logged adds, the logged symbols match
     * the symbol table tail, every logged merge has actually been
     * applied, and every logged add resolves through the hashcons to
     * its logged class. SMOOTHE_DEBUG_INVARIANTS builds run this after
     * every rebuild() in run().
     * @return std::nullopt when healthy, else the first problem found.
     */
    std::optional<std::string> checkInvariants() const;

    /** Number of canonical e-classes. */
    std::size_t numClasses() const;

    /** Total number of distinct e-nodes. */
    std::size_t numNodes() const { return hashcons_.size(); }

    /**
     * E-matching: finds substitutions under which the pattern matches
     * some node in the given e-class. The budget caps how many
     * substitutions are enumerated (not merely returned) — nonlinear
     * patterns over heavily merged classes otherwise build
     * cross-products far larger than any caller consumes.
     */
    std::vector<Subst> ematch(const Pattern& pattern, Id cls,
                              std::size_t max_matches = SIZE_MAX) const;

    /** E-matching across all classes; returns (class, subst) pairs. */
    std::vector<std::pair<Id, Subst>>
    ematchAll(const Pattern& pattern,
              std::size_t max_matches = SIZE_MAX) const;

    /** Instantiates a pattern under a substitution, adding nodes. */
    Id instantiate(const Pattern& pattern, const Subst& subst);

    /**
     * Runs equality saturation with the given rules and limits.
     * The graph must already contain the initial term(s).
     */
    RunStats run(const std::vector<Rewrite>& rules, const RunLimits& limits);

    /**
     * Exports into the immutable extraction e-graph.
     * @param root e-class that becomes the extraction root
     * @param cost_of maps an operator name (and arity) to a per-node cost
     */
    eg::EGraph exportGraph(
        Id root,
        const std::function<double(const std::string&, std::size_t)>&
            cost_of) const;

    /**
     * Exports like exportGraph() (bit-identical graph) and additionally
     * emits the GraphDelta mapping the previous export recorded in
     * `state` onto this one. On the first call (state.valid == false)
     * the delta is the trivial "everything is new" delta. The state is
     * updated in place for the next epoch.
     */
    ExportResult exportIncremental(
        Id root,
        const std::function<double(const std::string&, std::size_t)>&
            cost_of,
        ExportState& state) const;

    /**
     * Starts (true) or stops (false) the structural delta log. Starting
     * opens a fresh epoch: pendingDelta() is reset to empty with the
     * current node/symbol counts as its base.
     */
    void enableDeltaLog(bool on);

    bool deltaLogEnabled() const { return deltaLog_; }

    /** The mutations logged since the log was last opened/drained. */
    const Delta& pendingDelta() const { return pendingDelta_; }

    /** Returns the pending delta and opens the next epoch. */
    Delta drainDelta();

    /**
     * Replays a drained delta onto this graph (which must be the
     * pre-epoch snapshot): interns the logged symbols, applies every
     * add/merge in order, then rebuilds. Afterwards
     * structurallyEquals(post_epoch_graph) holds — the debug cross-check
     * run after each epoch under SMOOTHE_DEBUG_INVARIANTS.
     */
    void applyDelta(const Delta& delta);

    /**
     * Structural equality with another e-graph over the same id space:
     * same ids and symbols, identical union-find partition, and each
     * paired class stores the same set of canonical e-nodes. Internal
     * representative choices and node order are allowed to differ.
     * Both graphs must have drained worklists.
     * @return std::nullopt when equal, else the first difference.
     */
    std::optional<std::string>
    structurallyEquals(const MutEGraph& other) const;

  private:
    /** Nodes currently stored in a class (canonical forms, may go stale
     *  between merges and rebuild()). */
    struct ClassData
    {
        std::vector<Node> nodes;
        /** (node, class) uses for congruence repair. */
        std::vector<std::pair<Node, Id>> parents;
    };

    Id findMutable(Id id);
    Node canonicalize(const Node& node) const;

    /** Test-only backdoor used to corrupt state and prove the validator
     *  catches it (tests/test_check.cpp). */
    friend struct MutEGraphTestPeer;

    std::vector<std::string> symbols_;
    std::unordered_map<std::string, std::uint32_t> symbolIds_;

    mutable std::vector<Id> parent_; // union-find with path halving
    std::vector<ClassData> classes_; // indexed by id (valid at canonical ids)
    std::unordered_map<Node, Id, NodeHash> hashcons_;
    std::vector<Id> worklist_; // classes needing congruence repair

    bool deltaLog_ = false;
    Delta pendingDelta_;
};

} // namespace smoothe::eqsat

#endif // SMOOTHE_EQSAT_MUT_EGRAPH_HPP
