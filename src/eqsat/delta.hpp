/**
 * @file
 * The mutable e-graph's structural delta log.
 *
 * When logging is enabled, MutEGraph records every structural mutation —
 * e-node additions (each of which creates an e-class) and e-class merges,
 * including the merges congruence repair performs inside rebuild() — in
 * application order, together with any operator symbols interned along
 * the way. Replaying a drained Delta onto a snapshot of the pre-epoch
 * graph and rebuilding reproduces the post-epoch graph structure exactly
 * (MutEGraph::structurallyEquals), which the debug-mode cross-check
 * asserts after every epoch.
 */

#ifndef SMOOTHE_EQSAT_DELTA_HPP
#define SMOOTHE_EQSAT_DELTA_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace smoothe::eqsat {

using Id = std::uint32_t;

/** One logged structural mutation. */
struct DeltaEntry
{
    enum class Kind : std::uint8_t {
        AddNode, ///< hashcons miss: new e-node in a new e-class `cls`
        Merge,   ///< union: class `from` absorbed into class `into`
    };
    Kind kind = Kind::AddNode;

    // AddNode payload. Children are canonical as of the moment the node
    // was added, which is what makes in-order replay exact.
    std::uint32_t op = 0;
    std::vector<Id> children;
    Id cls = 0;

    // Merge payload, post union-by-size: `into` survived.
    Id from = 0;
    Id into = 0;
};

/** The ordered delta for one rewrite epoch. */
struct Delta
{
    /** Mutations in application order. */
    std::vector<DeltaEntry> entries;

    /** Id count (== node count) when the log opened. */
    std::size_t baseNodes = 0;

    /** Symbol-table size when the log opened. */
    std::size_t baseSymbols = 0;
    /** Symbols interned during the epoch, in id order. */
    std::vector<std::string> symbolsAdded;

    bool empty() const { return entries.empty() && symbolsAdded.empty(); }

    std::size_t numAdds() const
    {
        std::size_t n = 0;
        for (const DeltaEntry& entry : entries)
            n += entry.kind == DeltaEntry::Kind::AddNode ? 1 : 0;
        return n;
    }

    std::size_t numMerges() const
    {
        return entries.size() - numAdds();
    }
};

} // namespace smoothe::eqsat

#endif // SMOOTHE_EQSAT_DELTA_HPP
