#include "eqsat/term.hpp"

#include <cctype>
#include <sstream>

#include "check/contracts.hpp"

namespace smoothe::eqsat {

std::string
Term::toString() const
{
    if (children.empty())
        return op;
    std::ostringstream oss;
    oss << "(" << op;
    for (const auto& child : children)
        oss << " " << child->toString();
    oss << ")";
    return oss.str();
}

TermPtr
leaf(std::string op)
{
    return std::make_shared<Term>(std::move(op));
}

TermPtr
app(std::string op, std::vector<TermPtr> children)
{
    return std::make_shared<Term>(std::move(op), std::move(children));
}

std::string
Pattern::toString() const
{
    if (isVar())
        return var;
    if (children.empty())
        return op;
    std::ostringstream oss;
    oss << "(" << op;
    for (const auto& child : children)
        oss << " " << child->toString();
    oss << ")";
    return oss.str();
}

PatternPtr
pvar(std::string name)
{
    auto p = std::make_shared<Pattern>();
    p->var = std::move(name);
    return p;
}

PatternPtr
papp(std::string op, std::vector<PatternPtr> children)
{
    auto p = std::make_shared<Pattern>();
    p->op = std::move(op);
    p->children = std::move(children);
    return p;
}

namespace {

/** Shared s-expression tokenizer/parser for terms and patterns. */
class SexpParser
{
  public:
    explicit SexpParser(const std::string& text) : text_(text) {}

    std::optional<TermPtr>
    parseTermTop()
    {
        auto term = parseTermNode();
        skipSpace();
        if (!term || pos_ != text_.size())
            return std::nullopt;
        return term;
    }

    std::optional<PatternPtr>
    parsePatternTop()
    {
        auto pattern = parsePatternNode();
        skipSpace();
        if (!pattern || pos_ != text_.size())
            return std::nullopt;
        return pattern;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::optional<std::string>
    parseAtom()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
                c == ')')
                break;
            ++pos_;
        }
        if (pos_ == start)
            return std::nullopt;
        return text_.substr(start, pos_ - start);
    }

    std::optional<TermPtr>
    parseTermNode()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return std::nullopt;
        if (text_[pos_] == '(') {
            ++pos_;
            auto head = parseAtom();
            if (!head)
                return std::nullopt;
            std::vector<TermPtr> children;
            while (true) {
                skipSpace();
                if (pos_ < text_.size() && text_[pos_] == ')') {
                    ++pos_;
                    return app(*head, std::move(children));
                }
                auto child = parseTermNode();
                if (!child)
                    return std::nullopt;
                children.push_back(std::move(*child));
            }
        }
        auto atom = parseAtom();
        if (!atom)
            return std::nullopt;
        return leaf(*atom);
    }

    std::optional<PatternPtr>
    parsePatternNode()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return std::nullopt;
        if (text_[pos_] == '(') {
            ++pos_;
            auto head = parseAtom();
            if (!head)
                return std::nullopt;
            std::vector<PatternPtr> children;
            while (true) {
                skipSpace();
                if (pos_ < text_.size() && text_[pos_] == ')') {
                    ++pos_;
                    return papp(*head, std::move(children));
                }
                auto child = parsePatternNode();
                if (!child)
                    return std::nullopt;
                children.push_back(std::move(*child));
            }
        }
        auto atom = parseAtom();
        if (!atom)
            return std::nullopt;
        if ((*atom)[0] == '?')
            return pvar(*atom);
        return papp(*atom);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<TermPtr>
parseTerm(const std::string& text)
{
    return SexpParser(text).parseTermTop();
}

std::optional<PatternPtr>
parsePattern(const std::string& text)
{
    return SexpParser(text).parsePatternTop();
}

Rewrite
rewrite(std::string name, const std::string& lhs, const std::string& rhs)
{
    auto lhsPattern = parsePattern(lhs);
    auto rhsPattern = parsePattern(rhs);
    SMOOTHE_CHECK(lhsPattern && rhsPattern,
                  "rewrite \"%s\" has unparsable patterns", name.c_str());
    Rewrite rule;
    rule.name = std::move(name);
    rule.lhs = std::move(*lhsPattern);
    rule.rhs = std::move(*rhsPattern);
    return rule;
}

} // namespace smoothe::eqsat
