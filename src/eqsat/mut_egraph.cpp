#include "eqsat/mut_egraph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "check/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smoothe::eqsat {

std::uint32_t
MutEGraph::internSymbol(const std::string& name)
{
    const auto it = symbolIds_.find(name);
    if (it != symbolIds_.end())
        return it->second;
    const std::uint32_t id = static_cast<std::uint32_t>(symbols_.size());
    symbols_.push_back(name);
    symbolIds_[name] = id;
    if (deltaLog_)
        pendingDelta_.symbolsAdded.push_back(name);
    return id;
}

const std::string&
MutEGraph::symbolName(std::uint32_t id) const
{
    return symbols_[id];
}

Id
MutEGraph::find(Id id) const
{
    // Path halving.
    while (parent_[id] != id) {
        parent_[id] = parent_[parent_[id]];
        id = parent_[id];
    }
    return id;
}

Id
MutEGraph::findMutable(Id id)
{
    return find(id);
}

Node
MutEGraph::canonicalize(const Node& node) const
{
    Node out;
    out.op = node.op;
    out.children.reserve(node.children.size());
    for (Id child : node.children)
        out.children.push_back(find(child));
    return out;
}

Id
MutEGraph::add(const std::string& op, std::vector<Id> children)
{
    Node node;
    node.op = internSymbol(op);
    node.children = std::move(children);
    for (Id& child : node.children)
        child = find(child);

    const auto it = hashcons_.find(node);
    if (it != hashcons_.end())
        return find(it->second);

    const Id id = static_cast<Id>(parent_.size());
    parent_.push_back(id);
    classes_.emplace_back();
    classes_[id].nodes.push_back(node);
    hashcons_[node] = id;
    for (Id child : node.children)
        classes_[child].parents.emplace_back(node, id);
    if (deltaLog_) {
        DeltaEntry entry;
        entry.kind = DeltaEntry::Kind::AddNode;
        entry.op = node.op;
        entry.children = node.children;
        entry.cls = id;
        pendingDelta_.entries.push_back(std::move(entry));
    }
    return id;
}

Id
MutEGraph::addTerm(const Term& term)
{
    std::vector<Id> children;
    children.reserve(term.children.size());
    for (const auto& child : term.children)
        children.push_back(addTerm(*child));
    return add(term.op, std::move(children));
}

Id
MutEGraph::merge(Id a, Id b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return a;
    static obs::Counter& merges = obs::counter("eqsat.merges");
    merges.add(1);
    // Union by parent-list size so congruence repair touches fewer uses.
    if (classes_[a].parents.size() < classes_[b].parents.size())
        std::swap(a, b);
    parent_[b] = a;
    if (deltaLog_) {
        DeltaEntry entry;
        entry.kind = DeltaEntry::Kind::Merge;
        entry.from = b;
        entry.into = a;
        pendingDelta_.entries.push_back(std::move(entry));
    }
    // Move nodes and parents into the survivor.
    auto& survivor = classes_[a];
    auto& absorbed = classes_[b];
    survivor.nodes.insert(survivor.nodes.end(), absorbed.nodes.begin(),
                          absorbed.nodes.end());
    survivor.parents.insert(survivor.parents.end(), absorbed.parents.begin(),
                            absorbed.parents.end());
    absorbed.nodes.clear();
    absorbed.nodes.shrink_to_fit();
    absorbed.parents.clear();
    absorbed.parents.shrink_to_fit();
    worklist_.push_back(a);
    return a;
}

void
MutEGraph::rebuild()
{
    obs::Span span("rebuild", "eqsat");
    static obs::Counter& rebuildMerges =
        obs::counter("eqsat.rebuild_merges");
    const std::uint64_t mergesBefore = obs::counter("eqsat.merges").get();
    while (!worklist_.empty()) {
        std::vector<Id> todo;
        todo.swap(worklist_);
        std::set<Id> deduped;
        for (Id id : todo)
            deduped.insert(find(id));
        for (Id cls : deduped) {
            // Repair the uses of this class: re-canonicalize each parent
            // node; congruent duplicates trigger upward merges.
            auto parents = classes_[cls].parents;
            classes_[cls].parents.clear();
            std::unordered_map<Node, Id, NodeHash> seen;
            for (auto& [node, useClass] : parents) {
                const Node canon = canonicalize(node);
                // Update the hashcons entry for the canonical form.
                const auto old = hashcons_.find(node);
                if (old != hashcons_.end() && !(node == canon)) {
                    const Id target = old->second;
                    hashcons_.erase(old);
                    // Keep the canonical entry pointing at the merged class.
                    const auto existing = hashcons_.find(canon);
                    if (existing == hashcons_.end())
                        hashcons_[canon] = target;
                }
                const Id canonUse = find(useClass);
                const auto it = seen.find(canon);
                if (it != seen.end()) {
                    merge(it->second, canonUse);
                } else {
                    seen[canon] = canonUse;
                    classes_[find(cls)].parents.emplace_back(canon,
                                                             canonUse);
                }
                // Also merge with any other class holding the same node.
                const auto hc = hashcons_.find(canon);
                if (hc != hashcons_.end() && find(hc->second) != find(canonUse))
                    merge(hc->second, canonUse);
                else if (hc == hashcons_.end())
                    hashcons_[canon] = canonUse;
            }
            // Deduplicate the class's own node list.
            auto& nodes = classes_[find(cls)].nodes;
            std::unordered_map<Node, bool, NodeHash> nodeSeen;
            std::vector<Node> unique;
            unique.reserve(nodes.size());
            for (const Node& node : nodes) {
                const Node canon = canonicalize(node);
                if (!nodeSeen.count(canon)) {
                    nodeSeen[canon] = true;
                    unique.push_back(canon);
                }
            }
            nodes = std::move(unique);
        }
    }
    rebuildMerges.add(obs::counter("eqsat.merges").get() - mergesBefore);
}

std::optional<std::string>
MutEGraph::checkInvariants() const
{
    const auto problem = [](auto&&... parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        return std::optional<std::string>(oss.str());
    };

    if (parent_.size() != classes_.size())
        return problem("union-find has ", parent_.size(),
                       " ids but class table has ", classes_.size());
    for (Id id = 0; id < parent_.size(); ++id) {
        if (parent_[id] >= parent_.size())
            return problem("parent_[", id, "] = ", parent_[id],
                           " is out of range (", parent_.size(), " ids)");
    }
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) != id &&
            (!classes_[id].nodes.empty() || !classes_[id].parents.empty()))
            return problem("absorbed e-class ", id,
                           " still holds nodes or parent uses");
    }
    for (const auto& [node, cls] : hashcons_) {
        if (node.op >= symbols_.size())
            return problem("hashcons node has unknown symbol id ", node.op);
        for (Id child : node.children) {
            if (child >= parent_.size())
                return problem("hashcons node child ", child,
                               " is out of range (", parent_.size(), " ids)");
        }
        if (cls >= parent_.size())
            return problem("hashcons maps a node to out-of-range class ",
                           cls);
    }

    // Validate the pending delta log against the materialized graph.
    if (deltaLog_) {
        if (pendingDelta_.baseNodes + pendingDelta_.numAdds() !=
            parent_.size())
            return problem("delta log records ", pendingDelta_.numAdds(),
                           " adds on a base of ", pendingDelta_.baseNodes,
                           " ids but the graph holds ", parent_.size());
        if (pendingDelta_.baseSymbols + pendingDelta_.symbolsAdded.size() !=
            symbols_.size())
            return problem("delta log records ",
                           pendingDelta_.symbolsAdded.size(),
                           " symbols on a base of ",
                           pendingDelta_.baseSymbols,
                           " but the symbol table holds ", symbols_.size());
        for (std::size_t i = 0; i < pendingDelta_.symbolsAdded.size(); ++i) {
            if (symbols_[pendingDelta_.baseSymbols + i] !=
                pendingDelta_.symbolsAdded[i])
                return problem("delta log symbol ", i, " is \"",
                               pendingDelta_.symbolsAdded[i],
                               "\" but the symbol table holds \"",
                               symbols_[pendingDelta_.baseSymbols + i],
                               "\"");
        }
        Id nextId = static_cast<Id>(pendingDelta_.baseNodes);
        for (const DeltaEntry& entry : pendingDelta_.entries) {
            if (entry.kind == DeltaEntry::Kind::AddNode) {
                if (entry.cls != nextId)
                    return problem("delta log add created e-class ",
                                   entry.cls, " out of sequence (expected ",
                                   nextId, ")");
                ++nextId;
                if (entry.op >= symbols_.size())
                    return problem("delta log add has unknown symbol id ",
                                   entry.op);
                for (Id child : entry.children) {
                    if (child >= entry.cls)
                        return problem("delta log add for e-class ",
                                       entry.cls, " references child ",
                                       child, " from the future");
                }
            } else {
                if (entry.from >= parent_.size() ||
                    entry.into >= parent_.size())
                    return problem("delta log merge ", entry.from, " -> ",
                                   entry.into, " is out of range");
                if (find(entry.from) != find(entry.into))
                    return problem("delta log merge ", entry.from, " -> ",
                                   entry.into,
                                   " was logged but the classes are not "
                                   "merged");
            }
        }
    }

    // The deep congruence checks only hold once rebuild() has drained the
    // worklist; between merge() and rebuild() staleness is by design.
    if (!worklist_.empty())
        return std::nullopt;

    // With a drained worklist, every logged add must still resolve
    // through the hashcons into the class it was logged against.
    if (deltaLog_) {
        for (const DeltaEntry& entry : pendingDelta_.entries) {
            if (entry.kind != DeltaEntry::Kind::AddNode)
                continue;
            Node form;
            form.op = entry.op;
            form.children = entry.children;
            const Node canon = canonicalize(form);
            const auto hc = hashcons_.find(canon);
            if (hc == hashcons_.end())
                return problem("delta log add \"", symbols_[entry.op],
                               "\" no longer resolves in the hashcons");
            if (find(hc->second) != find(entry.cls))
                return problem("delta log add \"", symbols_[entry.op],
                               "\" resolves to e-class ", find(hc->second),
                               " but was logged into e-class ",
                               find(entry.cls));
        }
    }

    // Ownership map: canonical node form -> the canonical class storing it.
    std::unordered_map<Node, Id, NodeHash> owner;
    for (Id cls = 0; cls < parent_.size(); ++cls) {
        if (find(cls) != cls)
            continue;
        if (classes_[cls].nodes.empty())
            return problem("canonical e-class ", cls, " has no e-nodes");
        for (const Node& node : classes_[cls].nodes) {
            if (node.op >= symbols_.size())
                return problem("e-class ", cls,
                               " holds a node with unknown symbol id ",
                               node.op);
            for (Id child : node.children) {
                if (child >= parent_.size())
                    return problem("e-class ", cls, " node child ", child,
                                   " is out of range");
            }
            const Node canon = canonicalize(node);
            const auto [it, inserted] = owner.emplace(canon, cls);
            if (!inserted && it->second != cls)
                return problem("node \"", symbols_[canon.op],
                               "\" is stored in both e-class ", it->second,
                               " and e-class ", cls);
            const auto hc = hashcons_.find(canon);
            if (hc == hashcons_.end())
                return problem("e-class ", cls, " node \"",
                               symbols_[canon.op],
                               "\" is missing from the hashcons");
            if (find(hc->second) != cls)
                return problem("hashcons resolves e-class ", cls,
                               " node \"", symbols_[canon.op],
                               "\" to e-class ", find(hc->second));
        }
    }
    for (const auto& [node, cls] : hashcons_) {
        if (!(canonicalize(node) == node))
            return problem("hashcons key \"", symbols_[node.op],
                           "\" is not canonical after rebuild");
        const auto it = owner.find(node);
        if (it == owner.end())
            return problem("hashcons node \"", symbols_[node.op],
                           "\" is stored in no e-class");
        if (it->second != find(cls))
            return problem("hashcons places \"", symbols_[node.op],
                           "\" in e-class ", find(cls),
                           " but e-class ", it->second, " stores it");
    }
    return std::nullopt;
}

std::size_t
MutEGraph::numClasses() const
{
    std::size_t count = 0;
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) == id)
            ++count;
    }
    return count;
}

std::vector<Subst>
MutEGraph::ematch(const Pattern& pattern, Id cls,
                  std::size_t max_matches) const
{
    cls = find(cls);
    std::vector<Subst> results;
    if (max_matches == 0)
        return results;
    if (pattern.isVar()) {
        Subst subst;
        subst[pattern.var] = cls;
        results.push_back(std::move(subst));
        return results;
    }
    const auto opIt = symbolIds_.find(pattern.op);
    if (opIt == symbolIds_.end())
        return results;
    const std::uint32_t opId = opIt->second;

    for (const Node& node : classes_[cls].nodes) {
        if (results.size() >= max_matches)
            break;
        if (node.op != opId || node.children.size() != pattern.children.size())
            continue;
        // Recursively match children with backtracking over substitutions.
        // The budget bounds the working cross-product as well as the
        // result: merged classes can hold thousands of congruent nodes,
        // and an unbounded product of per-child matches is what turns a
        // saturation run into a memory explosion.
        const std::size_t room = max_matches - results.size();
        std::vector<Subst> partials{Subst{}};
        bool dead = false;
        for (std::size_t i = 0; i < pattern.children.size() && !dead; ++i) {
            std::vector<Subst> next;
            for (const Subst& partial : partials) {
                if (next.size() >= room)
                    break;
                // Bind pattern child i against node child class i.
                const Pattern& childPattern = *pattern.children[i];
                if (childPattern.isVar()) {
                    const auto bound = partial.find(childPattern.var);
                    if (bound != partial.end()) {
                        if (find(bound->second) == find(node.children[i]))
                            next.push_back(partial);
                        continue;
                    }
                    Subst extended = partial;
                    extended[childPattern.var] = find(node.children[i]);
                    next.push_back(std::move(extended));
                    continue;
                }
                for (Subst sub :
                     ematch(childPattern, node.children[i], room)) {
                    if (next.size() >= room)
                        break;
                    bool ok = true;
                    for (const auto& [var, boundCls] : partial) {
                        const auto it = sub.find(var);
                        if (it != sub.end() &&
                            find(it->second) != find(boundCls)) {
                            ok = false;
                            break;
                        }
                    }
                    if (!ok)
                        continue;
                    for (const auto& [var, boundCls] : partial)
                        sub.emplace(var, boundCls);
                    next.push_back(std::move(sub));
                }
            }
            partials = std::move(next);
            if (partials.empty())
                dead = true;
        }
        for (auto& subst : partials) {
            if (results.size() >= max_matches)
                break;
            results.push_back(std::move(subst));
        }
    }
    return results;
}

std::vector<std::pair<Id, Subst>>
MutEGraph::ematchAll(const Pattern& pattern, std::size_t max_matches) const
{
    std::vector<std::pair<Id, Subst>> results;
    std::set<Id> canonical;
    for (Id id = 0; id < parent_.size(); ++id)
        canonical.insert(find(id));
    for (Id cls : canonical) {
        if (results.size() >= max_matches)
            break;
        for (Subst& subst :
             ematch(pattern, cls, max_matches - results.size()))
            results.emplace_back(cls, std::move(subst));
    }
    return results;
}

Id
MutEGraph::instantiate(const Pattern& pattern, const Subst& subst)
{
    if (pattern.isVar()) {
        const auto it = subst.find(pattern.var);
        SMOOTHE_ASSERT(it != subst.end(), "unbound pattern variable \"%s\"",
                       pattern.var.c_str());
        return find(it->second);
    }
    std::vector<Id> children;
    children.reserve(pattern.children.size());
    for (const auto& child : pattern.children)
        children.push_back(instantiate(*child, subst));
    return add(pattern.op, std::move(children));
}

RunStats
MutEGraph::run(const std::vector<Rewrite>& rules, const RunLimits& limits)
{
    static obs::Logger logger("eqsat");
    obs::Span runSpan("eqsat.run", "eqsat");
    RunStats stats;
    for (std::size_t iter = 0; iter < limits.maxIterations; ++iter) {
        ++stats.iterations;
        obs::Span iterSpan("eqsat.iteration", "eqsat");
        // Phase 1: read-only match collection (egg's two-phase scheme
        // keeps match sets consistent while the graph mutates).
        std::vector<std::tuple<const Rewrite*, Id, Subst>> matches;
        for (const Rewrite& rule : rules) {
            auto found = ematchAll(*rule.lhs, limits.maxMatchesPerRule);
            for (auto& [cls, subst] : found)
                matches.emplace_back(&rule, cls, std::move(subst));
        }
        stats.totalMatches += matches.size();
        obs::counter("eqsat.matches").add(matches.size());

        // Phase 2: apply.
        const std::size_t nodesBefore = numNodes();
        bool changed = false;
        for (auto& [rule, cls, subst] : matches) {
            const Id rhsClass = instantiate(*rule->rhs, subst);
            if (find(rhsClass) != find(cls)) {
                merge(cls, rhsClass);
                changed = true;
            }
            if (numNodes() > limits.maxNodes) {
                stats.hitNodeLimit = true;
                break;
            }
        }
        rebuild();
        SMOOTHE_DCHECK_OK(checkInvariants());
        if (numNodes() != nodesBefore)
            changed = true;
        if (stats.hitNodeLimit) {
            logger.debug("iteration %zu: node limit hit (%zu nodes)",
                         iter, numNodes());
            break;
        }
        if (!changed) {
            stats.saturated = true;
            logger.debug("saturated after %zu iterations",
                         stats.iterations);
            break;
        }
    }
    stats.finalNodes = numNodes();
    stats.finalClasses = numClasses();
    logger.info("run: %zu iterations, %zu matches, %zu nodes, %zu classes",
                stats.iterations, stats.totalMatches, stats.finalNodes,
                stats.finalClasses);
    return stats;
}

eg::EGraph
MutEGraph::exportGraph(
    Id root,
    const std::function<double(const std::string&, std::size_t)>& cost_of)
    const
{
    eg::EGraph out;
    // Map canonical mutable ids -> dense export class ids.
    std::vector<Id> canonical;
    std::unordered_map<Id, eg::ClassId> classMap;
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) == id) {
            classMap[id] = out.addClass();
            canonical.push_back(id);
        }
    }
    // Emit each class's member nodes, deduplicated after canonicalization.
    for (Id cls : canonical) {
        std::unordered_map<Node, bool, NodeHash> emitted;
        for (const Node& node : classes_[cls].nodes) {
            const Node canon = canonicalize(node);
            if (emitted.count(canon))
                continue;
            emitted[canon] = true;
            std::vector<eg::ClassId> children;
            children.reserve(canon.children.size());
            for (Id child : canon.children)
                children.push_back(classMap.at(find(child)));
            const std::string& opName = symbols_[canon.op];
            out.addNode(classMap.at(cls), opName, std::move(children),
                        cost_of(opName, canon.children.size()));
        }
    }
    out.setRoot(classMap.at(find(root)));
    const auto err = out.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "exported e-graph must be well-formed: %s",
                   err ? err->c_str() : "");
    SMOOTHE_DCHECK_OK(out.checkInvariants());
    return out;
}

void
MutEGraph::enableDeltaLog(bool on)
{
    deltaLog_ = on;
    pendingDelta_ = Delta{};
    if (on) {
        pendingDelta_.baseNodes = parent_.size();
        pendingDelta_.baseSymbols = symbols_.size();
    }
}

Delta
MutEGraph::drainDelta()
{
    SMOOTHE_CHECK(deltaLog_, "drainDelta called with the delta log off");
    Delta out = std::move(pendingDelta_);
    pendingDelta_ = Delta{};
    pendingDelta_.baseNodes = parent_.size();
    pendingDelta_.baseSymbols = symbols_.size();
    return out;
}

void
MutEGraph::applyDelta(const Delta& delta)
{
    SMOOTHE_CHECK(parent_.size() == delta.baseNodes,
                  "applyDelta: graph holds %zu ids but the delta was "
                  "logged on a base of %zu",
                  parent_.size(), delta.baseNodes);
    SMOOTHE_CHECK(symbols_.size() == delta.baseSymbols,
                  "applyDelta: graph holds %zu symbols but the delta was "
                  "logged on a base of %zu",
                  symbols_.size(), delta.baseSymbols);
    static obs::Counter& merges = obs::counter("eqsat.merges");
    for (const std::string& name : delta.symbolsAdded) {
        const std::uint32_t id = internSymbol(name);
        SMOOTHE_ASSERT(id + 1 == symbols_.size(),
                       "applyDelta: symbol \"%s\" was already interned",
                       name.c_str());
    }
    for (const DeltaEntry& entry : delta.entries) {
        if (entry.kind == DeltaEntry::Kind::AddNode) {
            // Replay of add()'s hashcons-miss path. The children were
            // canonical when logged and every prior mutation has been
            // replayed, so they are canonical here too.
            Node node;
            node.op = entry.op;
            node.children = entry.children;
            for (Id& child : node.children)
                child = find(child);
            SMOOTHE_ASSERT(hashcons_.find(node) == hashcons_.end(),
                           "applyDelta: replayed add of \"%s\" already "
                           "exists",
                           symbols_[entry.op].c_str());
            const Id id = static_cast<Id>(parent_.size());
            SMOOTHE_ASSERT(id == entry.cls,
                           "applyDelta: replayed add created e-class %u "
                           "but the log expected %u",
                           id, entry.cls);
            parent_.push_back(id);
            classes_.emplace_back();
            classes_[id].nodes.push_back(node);
            hashcons_[node] = id;
            for (Id child : node.children)
                classes_[child].parents.emplace_back(node, id);
            if (deltaLog_) {
                DeltaEntry logged;
                logged.kind = DeltaEntry::Kind::AddNode;
                logged.op = node.op;
                logged.children = node.children;
                logged.cls = id;
                pendingDelta_.entries.push_back(std::move(logged));
            }
        } else {
            // Forced-direction union: the log records which side survived,
            // and replay must reproduce that choice exactly — the usual
            // union-by-size tie-break could pick differently here because
            // parent lists are deduplicated lazily.
            const Id from = entry.from;
            const Id into = entry.into;
            SMOOTHE_ASSERT(from < parent_.size() && into < parent_.size(),
                           "applyDelta: merge %u -> %u is out of range",
                           entry.from, entry.into);
            SMOOTHE_ASSERT(find(from) == from && find(into) == into &&
                               from != into,
                           "applyDelta: merge %u -> %u does not name two "
                           "distinct canonical classes",
                           entry.from, entry.into);
            merges.add(1);
            parent_[from] = into;
            auto& survivor = classes_[into];
            auto& absorbed = classes_[from];
            survivor.nodes.insert(survivor.nodes.end(),
                                  absorbed.nodes.begin(),
                                  absorbed.nodes.end());
            survivor.parents.insert(survivor.parents.end(),
                                    absorbed.parents.begin(),
                                    absorbed.parents.end());
            absorbed.nodes.clear();
            absorbed.nodes.shrink_to_fit();
            absorbed.parents.clear();
            absorbed.parents.shrink_to_fit();
            worklist_.push_back(into);
            if (deltaLog_) {
                DeltaEntry logged;
                logged.kind = DeltaEntry::Kind::Merge;
                logged.from = from;
                logged.into = into;
                pendingDelta_.entries.push_back(logged);
            }
        }
    }
    // The congruence merges the original run discovered inside rebuild()
    // are part of the log and were just replayed; this final rebuild only
    // re-canonicalizes storage so the graphs compare equal.
    rebuild();
}

std::optional<std::string>
MutEGraph::structurallyEquals(const MutEGraph& other) const
{
    const auto problem = [](auto&&... parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        return std::optional<std::string>(oss.str());
    };

    if (!worklist_.empty() || !other.worklist_.empty())
        return problem("structural comparison requires drained worklists");
    if (parent_.size() != other.parent_.size())
        return problem("id counts differ: ", parent_.size(), " vs ",
                       other.parent_.size());
    if (symbols_ != other.symbols_)
        return problem("symbol tables differ");

    // The union-find partitions must induce a bijection between the two
    // sets of canonical representatives.
    constexpr Id kUnmapped = static_cast<Id>(-1);
    std::vector<Id> map(parent_.size(), kUnmapped);
    std::vector<Id> reverse(parent_.size(), kUnmapped);
    for (Id id = 0; id < parent_.size(); ++id) {
        const Id a = find(id);
        const Id b = other.find(id);
        if (map[a] == kUnmapped) {
            if (reverse[b] != kUnmapped)
                return problem("partitions differ: ids ", id, " and ",
                               reverse[b],
                               " are equivalent in one graph only");
            map[a] = b;
            reverse[b] = a;
        } else if (map[a] != b) {
            return problem("partitions differ at id ", id, ": class ", a,
                           " maps to both ", map[a], " and ", b);
        }
    }

    // Each paired class must store the same set of canonical e-nodes,
    // compared in the other graph's id space. Node lists may hold stale
    // forms (rebuild re-canonicalizes lazily), so canonicalize and
    // deduplicate both sides before comparing.
    const auto nodeLess = [](const Node& x, const Node& y) {
        if (x.op != y.op)
            return x.op < y.op;
        return x.children < y.children;
    };
    const auto canonSet = [&](const MutEGraph& graph, Id cls) {
        std::vector<Node> out;
        out.reserve(graph.classes_[cls].nodes.size());
        for (const Node& node : graph.classes_[cls].nodes) {
            Node mapped;
            mapped.op = node.op;
            mapped.children.reserve(node.children.size());
            for (Id child : node.children)
                mapped.children.push_back(other.find(child));
            out.push_back(std::move(mapped));
        }
        std::sort(out.begin(), out.end(), nodeLess);
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    };
    for (Id cls = 0; cls < parent_.size(); ++cls) {
        if (find(cls) != cls)
            continue;
        const std::vector<Node> mine = canonSet(*this, cls);
        const std::vector<Node> theirs = canonSet(other, map[cls]);
        if (!(mine == theirs))
            return problem("e-class ", cls, " stores ", mine.size(),
                           " canonical nodes but its counterpart ",
                           map[cls], " stores ", theirs.size(),
                           " (or the sets differ)");
    }
    return std::nullopt;
}

ExportResult
MutEGraph::exportIncremental(
    Id root,
    const std::function<double(const std::string&, std::size_t)>& cost_of,
    ExportState& state) const
{
    SMOOTHE_CHECK(worklist_.empty(),
                  "exportIncremental requires a rebuilt graph");
    ExportResult result;
    eg::EGraph& out = result.graph;

    // Identical emission order to exportGraph() — the exported graph is
    // bit-for-bit the same — additionally recording export ids so the
    // delta can relate this epoch to the last one held in `state`.
    std::vector<Id> canonical;
    std::unordered_map<Id, eg::ClassId> classMap;
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) == id) {
            classMap[id] = out.addClass();
            canonical.push_back(id);
        }
    }
    std::unordered_map<Node, eg::NodeId, NodeHash> nodeByForm;
    std::vector<std::size_t> classNodeCount(canonical.size(), 0);
    for (Id cls : canonical) {
        for (const Node& node : classes_[cls].nodes) {
            const Node canon = canonicalize(node);
            if (nodeByForm.count(canon))
                continue;
            std::vector<eg::ClassId> children;
            children.reserve(canon.children.size());
            for (Id child : canon.children)
                children.push_back(classMap.at(find(child)));
            const std::string& opName = symbols_[canon.op];
            const eg::NodeId nodeId =
                out.addNode(classMap.at(cls), opName, std::move(children),
                            cost_of(opName, canon.children.size()));
            nodeByForm[canon] = nodeId;
            ++classNodeCount[classMap.at(cls)];
        }
    }
    out.setRoot(classMap.at(find(root)));
    const auto err = out.finalize();
    SMOOTHE_ASSERT(!err.has_value(),
                   "exported e-graph must be well-formed: %s",
                   err ? err->c_str() : "");
    SMOOTHE_DCHECK_OK(out.checkInvariants());

    // Relate the previous export to this one. Saturation is grow-only:
    // every previous class still exists (possibly merged) and every
    // previous node's canonical form is still stored (possibly collapsed
    // with a congruent sibling), so both forward maps are total.
    eg::GraphDelta& delta = result.delta;
    if (state.valid) {
        delta.prevNumNodes = state.prevNumNodes;
        delta.prevNumClasses = state.prevNumClasses;
        delta.classForward.resize(state.prevNumClasses);
        for (const auto& [mutId, prevCls] : state.classOfMut)
            delta.classForward[prevCls] = classMap.at(find(mutId));
        delta.nodeForward.resize(state.prevNumNodes);
        for (const auto& [prevForm, prevNodeId] : state.nodeByForm) {
            const Node canon = canonicalize(prevForm);
            const auto it = nodeByForm.find(canon);
            SMOOTHE_ASSERT(it != nodeByForm.end(),
                           "exportIncremental: previous node \"%s\" "
                           "vanished — was the graph rebuilt from scratch?",
                           symbols_[prevForm.op].c_str());
            delta.nodeForward[prevNodeId] = it->second;
        }
    }
    delta.deriveReverseMaps(out.numNodes(), out.numClasses());

    // A class is dirty when it was created or merged this epoch, gained
    // a genuinely new node, or its member count changed (congruent
    // collapse). Those are exactly the classes whose cost-table rows an
    // incremental extractor must recompute.
    std::vector<char> dirty(out.numClasses(), 0);
    for (eg::ClassId c = 0; c < out.numClasses(); ++c) {
        if (delta.prevClasses[c].size() != 1) {
            dirty[c] = 1;
            continue;
        }
        const eg::ClassId p = delta.prevClasses[c][0];
        if (state.classNodeCount[p] != classNodeCount[c])
            dirty[c] = 1;
    }
    for (eg::NodeId n = 0; n < out.numNodes(); ++n) {
        if (delta.prevNode[n] == eg::kNoNode)
            dirty[out.classOf(n)] = 1;
    }
    for (eg::ClassId c = 0; c < out.numClasses(); ++c) {
        if (dirty[c])
            delta.dirtyClasses.push_back(c);
    }
    SMOOTHE_DCHECK_OK(delta.checkConsistent(out));

    state.valid = true;
    state.prevNumNodes = out.numNodes();
    state.prevNumClasses = out.numClasses();
    state.classOfMut = std::move(classMap);
    state.nodeByForm = std::move(nodeByForm);
    state.classNodeCount = std::move(classNodeCount);
    return result;
}

} // namespace smoothe::eqsat
