#include "eqsat/mut_egraph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "check/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smoothe::eqsat {

std::uint32_t
MutEGraph::internSymbol(const std::string& name)
{
    const auto it = symbolIds_.find(name);
    if (it != symbolIds_.end())
        return it->second;
    const std::uint32_t id = static_cast<std::uint32_t>(symbols_.size());
    symbols_.push_back(name);
    symbolIds_[name] = id;
    return id;
}

const std::string&
MutEGraph::symbolName(std::uint32_t id) const
{
    return symbols_[id];
}

Id
MutEGraph::find(Id id) const
{
    // Path halving.
    while (parent_[id] != id) {
        parent_[id] = parent_[parent_[id]];
        id = parent_[id];
    }
    return id;
}

Id
MutEGraph::findMutable(Id id)
{
    return find(id);
}

Node
MutEGraph::canonicalize(const Node& node) const
{
    Node out;
    out.op = node.op;
    out.children.reserve(node.children.size());
    for (Id child : node.children)
        out.children.push_back(find(child));
    return out;
}

Id
MutEGraph::add(const std::string& op, std::vector<Id> children)
{
    Node node;
    node.op = internSymbol(op);
    node.children = std::move(children);
    for (Id& child : node.children)
        child = find(child);

    const auto it = hashcons_.find(node);
    if (it != hashcons_.end())
        return find(it->second);

    const Id id = static_cast<Id>(parent_.size());
    parent_.push_back(id);
    classes_.emplace_back();
    classes_[id].nodes.push_back(node);
    hashcons_[node] = id;
    for (Id child : node.children)
        classes_[child].parents.emplace_back(node, id);
    return id;
}

Id
MutEGraph::addTerm(const Term& term)
{
    std::vector<Id> children;
    children.reserve(term.children.size());
    for (const auto& child : term.children)
        children.push_back(addTerm(*child));
    return add(term.op, std::move(children));
}

Id
MutEGraph::merge(Id a, Id b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return a;
    static obs::Counter& merges = obs::counter("eqsat.merges");
    merges.add(1);
    // Union by parent-list size so congruence repair touches fewer uses.
    if (classes_[a].parents.size() < classes_[b].parents.size())
        std::swap(a, b);
    parent_[b] = a;
    // Move nodes and parents into the survivor.
    auto& survivor = classes_[a];
    auto& absorbed = classes_[b];
    survivor.nodes.insert(survivor.nodes.end(), absorbed.nodes.begin(),
                          absorbed.nodes.end());
    survivor.parents.insert(survivor.parents.end(), absorbed.parents.begin(),
                            absorbed.parents.end());
    absorbed.nodes.clear();
    absorbed.nodes.shrink_to_fit();
    absorbed.parents.clear();
    absorbed.parents.shrink_to_fit();
    worklist_.push_back(a);
    return a;
}

void
MutEGraph::rebuild()
{
    obs::Span span("rebuild", "eqsat");
    static obs::Counter& rebuildMerges =
        obs::counter("eqsat.rebuild_merges");
    const std::uint64_t mergesBefore = obs::counter("eqsat.merges").get();
    while (!worklist_.empty()) {
        std::vector<Id> todo;
        todo.swap(worklist_);
        std::set<Id> deduped;
        for (Id id : todo)
            deduped.insert(find(id));
        for (Id cls : deduped) {
            // Repair the uses of this class: re-canonicalize each parent
            // node; congruent duplicates trigger upward merges.
            auto parents = classes_[cls].parents;
            classes_[cls].parents.clear();
            std::unordered_map<Node, Id, NodeHash> seen;
            for (auto& [node, useClass] : parents) {
                const Node canon = canonicalize(node);
                // Update the hashcons entry for the canonical form.
                const auto old = hashcons_.find(node);
                if (old != hashcons_.end() && !(node == canon)) {
                    const Id target = old->second;
                    hashcons_.erase(old);
                    // Keep the canonical entry pointing at the merged class.
                    const auto existing = hashcons_.find(canon);
                    if (existing == hashcons_.end())
                        hashcons_[canon] = target;
                }
                const Id canonUse = find(useClass);
                const auto it = seen.find(canon);
                if (it != seen.end()) {
                    merge(it->second, canonUse);
                } else {
                    seen[canon] = canonUse;
                    classes_[find(cls)].parents.emplace_back(canon,
                                                             canonUse);
                }
                // Also merge with any other class holding the same node.
                const auto hc = hashcons_.find(canon);
                if (hc != hashcons_.end() && find(hc->second) != find(canonUse))
                    merge(hc->second, canonUse);
                else if (hc == hashcons_.end())
                    hashcons_[canon] = canonUse;
            }
            // Deduplicate the class's own node list.
            auto& nodes = classes_[find(cls)].nodes;
            std::unordered_map<Node, bool, NodeHash> nodeSeen;
            std::vector<Node> unique;
            unique.reserve(nodes.size());
            for (const Node& node : nodes) {
                const Node canon = canonicalize(node);
                if (!nodeSeen.count(canon)) {
                    nodeSeen[canon] = true;
                    unique.push_back(canon);
                }
            }
            nodes = std::move(unique);
        }
    }
    rebuildMerges.add(obs::counter("eqsat.merges").get() - mergesBefore);
}

std::optional<std::string>
MutEGraph::checkInvariants() const
{
    const auto problem = [](auto&&... parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        return std::optional<std::string>(oss.str());
    };

    if (parent_.size() != classes_.size())
        return problem("union-find has ", parent_.size(),
                       " ids but class table has ", classes_.size());
    for (Id id = 0; id < parent_.size(); ++id) {
        if (parent_[id] >= parent_.size())
            return problem("parent_[", id, "] = ", parent_[id],
                           " is out of range (", parent_.size(), " ids)");
    }
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) != id &&
            (!classes_[id].nodes.empty() || !classes_[id].parents.empty()))
            return problem("absorbed e-class ", id,
                           " still holds nodes or parent uses");
    }
    for (const auto& [node, cls] : hashcons_) {
        if (node.op >= symbols_.size())
            return problem("hashcons node has unknown symbol id ", node.op);
        for (Id child : node.children) {
            if (child >= parent_.size())
                return problem("hashcons node child ", child,
                               " is out of range (", parent_.size(), " ids)");
        }
        if (cls >= parent_.size())
            return problem("hashcons maps a node to out-of-range class ",
                           cls);
    }

    // The deep congruence checks only hold once rebuild() has drained the
    // worklist; between merge() and rebuild() staleness is by design.
    if (!worklist_.empty())
        return std::nullopt;

    // Ownership map: canonical node form -> the canonical class storing it.
    std::unordered_map<Node, Id, NodeHash> owner;
    for (Id cls = 0; cls < parent_.size(); ++cls) {
        if (find(cls) != cls)
            continue;
        if (classes_[cls].nodes.empty())
            return problem("canonical e-class ", cls, " has no e-nodes");
        for (const Node& node : classes_[cls].nodes) {
            if (node.op >= symbols_.size())
                return problem("e-class ", cls,
                               " holds a node with unknown symbol id ",
                               node.op);
            for (Id child : node.children) {
                if (child >= parent_.size())
                    return problem("e-class ", cls, " node child ", child,
                                   " is out of range");
            }
            const Node canon = canonicalize(node);
            const auto [it, inserted] = owner.emplace(canon, cls);
            if (!inserted && it->second != cls)
                return problem("node \"", symbols_[canon.op],
                               "\" is stored in both e-class ", it->second,
                               " and e-class ", cls);
            const auto hc = hashcons_.find(canon);
            if (hc == hashcons_.end())
                return problem("e-class ", cls, " node \"",
                               symbols_[canon.op],
                               "\" is missing from the hashcons");
            if (find(hc->second) != cls)
                return problem("hashcons resolves e-class ", cls,
                               " node \"", symbols_[canon.op],
                               "\" to e-class ", find(hc->second));
        }
    }
    for (const auto& [node, cls] : hashcons_) {
        if (!(canonicalize(node) == node))
            return problem("hashcons key \"", symbols_[node.op],
                           "\" is not canonical after rebuild");
        const auto it = owner.find(node);
        if (it == owner.end())
            return problem("hashcons node \"", symbols_[node.op],
                           "\" is stored in no e-class");
        if (it->second != find(cls))
            return problem("hashcons places \"", symbols_[node.op],
                           "\" in e-class ", find(cls),
                           " but e-class ", it->second, " stores it");
    }
    return std::nullopt;
}

std::size_t
MutEGraph::numClasses() const
{
    std::size_t count = 0;
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) == id)
            ++count;
    }
    return count;
}

std::vector<Subst>
MutEGraph::ematch(const Pattern& pattern, Id cls,
                  std::size_t max_matches) const
{
    cls = find(cls);
    std::vector<Subst> results;
    if (max_matches == 0)
        return results;
    if (pattern.isVar()) {
        Subst subst;
        subst[pattern.var] = cls;
        results.push_back(std::move(subst));
        return results;
    }
    const auto opIt = symbolIds_.find(pattern.op);
    if (opIt == symbolIds_.end())
        return results;
    const std::uint32_t opId = opIt->second;

    for (const Node& node : classes_[cls].nodes) {
        if (results.size() >= max_matches)
            break;
        if (node.op != opId || node.children.size() != pattern.children.size())
            continue;
        // Recursively match children with backtracking over substitutions.
        // The budget bounds the working cross-product as well as the
        // result: merged classes can hold thousands of congruent nodes,
        // and an unbounded product of per-child matches is what turns a
        // saturation run into a memory explosion.
        const std::size_t room = max_matches - results.size();
        std::vector<Subst> partials{Subst{}};
        bool dead = false;
        for (std::size_t i = 0; i < pattern.children.size() && !dead; ++i) {
            std::vector<Subst> next;
            for (const Subst& partial : partials) {
                if (next.size() >= room)
                    break;
                // Bind pattern child i against node child class i.
                const Pattern& childPattern = *pattern.children[i];
                if (childPattern.isVar()) {
                    const auto bound = partial.find(childPattern.var);
                    if (bound != partial.end()) {
                        if (find(bound->second) == find(node.children[i]))
                            next.push_back(partial);
                        continue;
                    }
                    Subst extended = partial;
                    extended[childPattern.var] = find(node.children[i]);
                    next.push_back(std::move(extended));
                    continue;
                }
                for (Subst sub :
                     ematch(childPattern, node.children[i], room)) {
                    if (next.size() >= room)
                        break;
                    bool ok = true;
                    for (const auto& [var, boundCls] : partial) {
                        const auto it = sub.find(var);
                        if (it != sub.end() &&
                            find(it->second) != find(boundCls)) {
                            ok = false;
                            break;
                        }
                    }
                    if (!ok)
                        continue;
                    for (const auto& [var, boundCls] : partial)
                        sub.emplace(var, boundCls);
                    next.push_back(std::move(sub));
                }
            }
            partials = std::move(next);
            if (partials.empty())
                dead = true;
        }
        for (auto& subst : partials) {
            if (results.size() >= max_matches)
                break;
            results.push_back(std::move(subst));
        }
    }
    return results;
}

std::vector<std::pair<Id, Subst>>
MutEGraph::ematchAll(const Pattern& pattern, std::size_t max_matches) const
{
    std::vector<std::pair<Id, Subst>> results;
    std::set<Id> canonical;
    for (Id id = 0; id < parent_.size(); ++id)
        canonical.insert(find(id));
    for (Id cls : canonical) {
        if (results.size() >= max_matches)
            break;
        for (Subst& subst :
             ematch(pattern, cls, max_matches - results.size()))
            results.emplace_back(cls, std::move(subst));
    }
    return results;
}

Id
MutEGraph::instantiate(const Pattern& pattern, const Subst& subst)
{
    if (pattern.isVar()) {
        const auto it = subst.find(pattern.var);
        SMOOTHE_ASSERT(it != subst.end(), "unbound pattern variable \"%s\"",
                       pattern.var.c_str());
        return find(it->second);
    }
    std::vector<Id> children;
    children.reserve(pattern.children.size());
    for (const auto& child : pattern.children)
        children.push_back(instantiate(*child, subst));
    return add(pattern.op, std::move(children));
}

RunStats
MutEGraph::run(const std::vector<Rewrite>& rules, const RunLimits& limits)
{
    static obs::Logger logger("eqsat");
    obs::Span runSpan("eqsat.run", "eqsat");
    RunStats stats;
    for (std::size_t iter = 0; iter < limits.maxIterations; ++iter) {
        ++stats.iterations;
        obs::Span iterSpan("eqsat.iteration", "eqsat");
        // Phase 1: read-only match collection (egg's two-phase scheme
        // keeps match sets consistent while the graph mutates).
        std::vector<std::tuple<const Rewrite*, Id, Subst>> matches;
        for (const Rewrite& rule : rules) {
            auto found = ematchAll(*rule.lhs, limits.maxMatchesPerRule);
            for (auto& [cls, subst] : found)
                matches.emplace_back(&rule, cls, std::move(subst));
        }
        stats.totalMatches += matches.size();
        obs::counter("eqsat.matches").add(matches.size());

        // Phase 2: apply.
        const std::size_t nodesBefore = numNodes();
        bool changed = false;
        for (auto& [rule, cls, subst] : matches) {
            const Id rhsClass = instantiate(*rule->rhs, subst);
            if (find(rhsClass) != find(cls)) {
                merge(cls, rhsClass);
                changed = true;
            }
            if (numNodes() > limits.maxNodes) {
                stats.hitNodeLimit = true;
                break;
            }
        }
        rebuild();
        SMOOTHE_DCHECK_OK(checkInvariants());
        if (numNodes() != nodesBefore)
            changed = true;
        if (stats.hitNodeLimit) {
            logger.debug("iteration %zu: node limit hit (%zu nodes)",
                         iter, numNodes());
            break;
        }
        if (!changed) {
            stats.saturated = true;
            logger.debug("saturated after %zu iterations",
                         stats.iterations);
            break;
        }
    }
    stats.finalNodes = numNodes();
    stats.finalClasses = numClasses();
    logger.info("run: %zu iterations, %zu matches, %zu nodes, %zu classes",
                stats.iterations, stats.totalMatches, stats.finalNodes,
                stats.finalClasses);
    return stats;
}

eg::EGraph
MutEGraph::exportGraph(
    Id root,
    const std::function<double(const std::string&, std::size_t)>& cost_of)
    const
{
    eg::EGraph out;
    // Map canonical mutable ids -> dense export class ids.
    std::vector<Id> canonical;
    std::unordered_map<Id, eg::ClassId> classMap;
    for (Id id = 0; id < parent_.size(); ++id) {
        if (find(id) == id) {
            classMap[id] = out.addClass();
            canonical.push_back(id);
        }
    }
    // Emit each class's member nodes, deduplicated after canonicalization.
    for (Id cls : canonical) {
        std::unordered_map<Node, bool, NodeHash> emitted;
        for (const Node& node : classes_[cls].nodes) {
            const Node canon = canonicalize(node);
            if (emitted.count(canon))
                continue;
            emitted[canon] = true;
            std::vector<eg::ClassId> children;
            children.reserve(canon.children.size());
            for (Id child : canon.children)
                children.push_back(classMap.at(find(child)));
            const std::string& opName = symbols_[canon.op];
            out.addNode(classMap.at(cls), opName, std::move(children),
                        cost_of(opName, canon.children.size()));
        }
    }
    out.setRoot(classMap.at(find(root)));
    const auto err = out.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "exported e-graph must be well-formed: %s",
                   err ? err->c_str() : "");
    SMOOTHE_DCHECK_OK(out.checkInvariants());
    return out;
}

} // namespace smoothe::eqsat
