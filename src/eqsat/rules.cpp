#include "eqsat/rules.hpp"

namespace smoothe::eqsat {

const std::vector<Rewrite>&
arithmeticRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        rewrite("add-assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        rewrite("mul-assoc", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
        rewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
        rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
        rewrite("add-zero", "(+ ?a zero)", "?a"),
        rewrite("mul-one", "(* ?a one)", "?a"),
        rewrite("mul-zero", "(* ?a zero)", "zero"),
        rewrite("mul-two-shift", "(* ?a two)", "(<< ?a one)"),
        rewrite("shift-mul-two", "(<< ?a one)", "(* ?a two)"),
        rewrite("square-form", "(* ?a ?a)", "(square ?a)"),
        rewrite("square-unform", "(square ?a)", "(* ?a ?a)"),
        rewrite("double", "(+ ?a ?a)", "(* ?a two)"),
    };
    return rules;
}

const std::vector<Rewrite>&
trigRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
        rewrite("cos-to-sec", "(recip (cos ?x))", "(sec ?x)"),
        rewrite("sec2-to-tan2", "(square (sec ?x))",
                "(+ one (square (tan ?x)))"),
        rewrite("tan-as-ratio", "(tan ?x)", "(* (sin ?x) (recip (cos ?x)))"),
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
    };
    return rules;
}

const std::vector<Rewrite>&
datapathRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("mac-fuse", "(+ (* ?a ?b) ?c)", "(mac ?a ?b ?c)"),
        rewrite("mac-unfuse", "(mac ?a ?b ?c)", "(+ (* ?a ?b) ?c)"),
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        rewrite("add-assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        rewrite("mul-three", "(* ?a three)", "(+ ?a (<< ?a one))"),
        rewrite("mul-five", "(* ?a five)", "(+ ?a (<< ?a two))"),
        rewrite("shift-combine", "(<< (<< ?a one) one)", "(<< ?a two)"),
        rewrite("distribute", "(* ?a (+ ?b ?c))",
                "(+ (* ?a ?b) (* ?a ?c))"),
        rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
    };
    return rules;
}

const std::vector<std::vector<Rewrite>>&
caviarRulePhases()
{
    // Phase order follows Caviar's phased TRS scheduling: normalize
    // cheaply before opening up the search space, and keep the
    // min/max lemmas (the biggest match producers) for last so the
    // node budget is spent on already-normalized classes.
    static const std::vector<std::vector<Rewrite>> phases = {
        // Phase 1: cheap normalization / cancellation.
        {
            rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
            rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
            rewrite("add-zero", "(+ ?a zero)", "?a"),
            rewrite("mul-one", "(* ?a one)", "?a"),
            rewrite("mul-zero", "(* ?a zero)", "zero"),
            rewrite("sub-self", "(- ?a ?a)", "zero"),
            rewrite("sub-zero", "(- ?a zero)", "?a"),
            rewrite("neg-neg", "(neg (neg ?a))", "?a"),
        },
        // Phase 2: structural expansion.
        {
            rewrite("add-assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
            rewrite("mul-assoc", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
            rewrite("distribute", "(* ?a (+ ?b ?c))",
                    "(+ (* ?a ?b) (* ?a ?c))"),
            rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))",
                    "(* ?a (+ ?b ?c))"),
            rewrite("sub-to-addneg", "(- ?a ?b)", "(+ ?a (neg ?b))"),
            rewrite("addneg-to-sub", "(+ ?a (neg ?b))", "(- ?a ?b)"),
            rewrite("neg-mul", "(neg (* ?a ?b))", "(* (neg ?a) ?b)"),
        },
        // Phase 3: min/max lemmas (Halide's simplifier workhorses).
        {
            rewrite("min-comm", "(min ?a ?b)", "(min ?b ?a)"),
            rewrite("max-comm", "(max ?a ?b)", "(max ?b ?a)"),
            rewrite("min-self", "(min ?a ?a)", "?a"),
            rewrite("max-self", "(max ?a ?a)", "?a"),
            rewrite("min-assoc", "(min ?a (min ?b ?c))",
                    "(min (min ?a ?b) ?c)"),
            rewrite("max-assoc", "(max ?a (max ?b ?c))",
                    "(max (max ?a ?b) ?c)"),
            rewrite("min-max-absorb", "(min ?a (max ?a ?b))", "?a"),
            rewrite("max-min-absorb", "(max ?a (min ?a ?b))", "?a"),
            rewrite("min-add-distrib", "(+ (min ?a ?b) ?c)",
                    "(min (+ ?a ?c) (+ ?b ?c))"),
            rewrite("min-add-factor", "(min (+ ?a ?c) (+ ?b ?c))",
                    "(+ (min ?a ?b) ?c)"),
            rewrite("max-add-distrib", "(+ (max ?a ?b) ?c)",
                    "(max (+ ?a ?c) (+ ?b ?c))"),
        },
    };
    return phases;
}

const std::vector<Rewrite>&
caviarRules()
{
    static const std::vector<Rewrite> rules = [] {
        std::vector<Rewrite> all;
        for (const auto& phase : caviarRulePhases())
            all.insert(all.end(), phase.begin(), phase.end());
        return all;
    }();
    return rules;
}

} // namespace smoothe::eqsat
