#include "eqsat/rules.hpp"

namespace smoothe::eqsat {

const std::vector<Rewrite>&
arithmeticRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        rewrite("add-assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        rewrite("mul-assoc", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
        rewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
        rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
        rewrite("add-zero", "(+ ?a zero)", "?a"),
        rewrite("mul-one", "(* ?a one)", "?a"),
        rewrite("mul-zero", "(* ?a zero)", "zero"),
        rewrite("mul-two-shift", "(* ?a two)", "(<< ?a one)"),
        rewrite("shift-mul-two", "(<< ?a one)", "(* ?a two)"),
        rewrite("square-form", "(* ?a ?a)", "(square ?a)"),
        rewrite("square-unform", "(square ?a)", "(* ?a ?a)"),
        rewrite("double", "(+ ?a ?a)", "(* ?a two)"),
    };
    return rules;
}

const std::vector<Rewrite>&
trigRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("sec-to-cos", "(sec ?x)", "(recip (cos ?x))"),
        rewrite("cos-to-sec", "(recip (cos ?x))", "(sec ?x)"),
        rewrite("sec2-to-tan2", "(square (sec ?x))",
                "(+ one (square (tan ?x)))"),
        rewrite("tan-as-ratio", "(tan ?x)", "(* (sin ?x) (recip (cos ?x)))"),
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
    };
    return rules;
}

const std::vector<Rewrite>&
datapathRules()
{
    static const std::vector<Rewrite> rules = {
        rewrite("mac-fuse", "(+ (* ?a ?b) ?c)", "(mac ?a ?b ?c)"),
        rewrite("mac-unfuse", "(mac ?a ?b ?c)", "(+ (* ?a ?b) ?c)"),
        rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        rewrite("add-assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        rewrite("mul-three", "(* ?a three)", "(+ ?a (<< ?a one))"),
        rewrite("mul-five", "(* ?a five)", "(+ ?a (<< ?a two))"),
        rewrite("shift-combine", "(<< (<< ?a one) one)", "(<< ?a two)"),
        rewrite("distribute", "(* ?a (+ ?b ?c))",
                "(+ (* ?a ?b) (* ?a ?c))"),
        rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
    };
    return rules;
}

} // namespace smoothe::eqsat
