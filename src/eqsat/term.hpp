/**
 * @file
 * Term language for the equality-saturation engine: ground terms (ASTs)
 * and patterns (terms with variables) plus an s-expression parser so
 * examples and tests can write rules like "(* (sec a) (sec a))".
 */

#ifndef SMOOTHE_EQSAT_TERM_HPP
#define SMOOTHE_EQSAT_TERM_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace smoothe::eqsat {

/** A ground term: operator applied to subterms (leaves have none). */
struct Term
{
    std::string op;
    std::vector<std::shared_ptr<Term>> children;

    Term(std::string op_, std::vector<std::shared_ptr<Term>> children_ = {})
        : op(std::move(op_)), children(std::move(children_))
    {}

    /** Renders as an s-expression, e.g. "(+ a (* b c))". */
    std::string toString() const;
};

using TermPtr = std::shared_ptr<Term>;

/** Builds a leaf term. */
TermPtr leaf(std::string op);

/** Builds an application term. */
TermPtr app(std::string op, std::vector<TermPtr> children);

/**
 * A pattern: like a term, but identifiers beginning with '?' are pattern
 * variables that bind to e-classes during matching.
 */
struct Pattern
{
    /** Variable name when this is a variable (e.g. "?x"), else empty. */
    std::string var;
    /** Operator when this is an application. */
    std::string op;
    std::vector<std::shared_ptr<Pattern>> children;

    bool isVar() const { return !var.empty(); }

    std::string toString() const;
};

using PatternPtr = std::shared_ptr<Pattern>;

/** Builds a pattern variable node ("?x"). */
PatternPtr pvar(std::string name);

/** Builds a pattern application node. */
PatternPtr papp(std::string op, std::vector<PatternPtr> children = {});

/**
 * Parses an s-expression into a ground term.
 * Examples: "x", "(+ x y)", "(* (sec a) (sec a))".
 */
std::optional<TermPtr> parseTerm(const std::string& text);

/** Parses an s-expression into a pattern ('?'-prefixed ids are vars). */
std::optional<PatternPtr> parsePattern(const std::string& text);

/** A named rewrite rule lhs -> rhs. */
struct Rewrite
{
    std::string name;
    PatternPtr lhs;
    PatternPtr rhs;
};

/** Convenience: builds a rewrite from two s-expressions; asserts on parse
 *  failure (rules are compile-time constants in practice). */
Rewrite rewrite(std::string name, const std::string& lhs,
                const std::string& rhs);

} // namespace smoothe::eqsat

#endif // SMOOTHE_EQSAT_TERM_HPP
