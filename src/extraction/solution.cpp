#include "extraction/solution.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace smoothe::extract {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

std::vector<bool>
Selection::toNodeIndicator(const eg::EGraph& graph) const
{
    std::vector<bool> s(graph.numNodes(), false);
    for (ClassId cls = 0; cls < choice.size(); ++cls) {
        if (choice[cls] != kNoNode)
            s[choice[cls]] = true;
    }
    return s;
}

ValidationResult
validate(const EGraph& graph, const Selection& sel, bool allow_unreachable)
{
    ValidationResult result;
    auto fail = [&](Violation v, const std::string& message) {
        result.violation = v;
        result.message = message;
        return result;
    };

    if (sel.choice.size() != graph.numClasses())
        return fail(Violation::DanglingNode, "selection size mismatch");

    // Membership consistency.
    for (ClassId cls = 0; cls < graph.numClasses(); ++cls) {
        const NodeId nid = sel.choice[cls];
        if (nid == kNoNode)
            continue;
        if (nid >= graph.numNodes() || graph.classOf(nid) != cls) {
            std::ostringstream oss;
            oss << "choice for class " << cls
                << " is not a member of that class";
            return fail(Violation::DanglingNode, oss.str());
        }
    }

    // Constraint (a).
    if (!sel.chosen(graph.root()))
        return fail(Violation::RootUnchosen, "root e-class has no choice");

    // Constraint (b) + reachability, via BFS from the root.
    std::vector<bool> needed(graph.numClasses(), false);
    std::vector<ClassId> worklist{graph.root()};
    needed[graph.root()] = true;
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        const NodeId nid = sel.choice[cls];
        if (nid == kNoNode) {
            std::ostringstream oss;
            oss << "needed class " << cls << " has no chosen e-node";
            return fail(Violation::MissingChild, oss.str());
        }
        for (ClassId child : graph.node(nid).children) {
            if (!needed[child]) {
                needed[child] = true;
                worklist.push_back(child);
            }
        }
    }

    if (!allow_unreachable) {
        for (ClassId cls = 0; cls < graph.numClasses(); ++cls) {
            if (sel.chosen(cls) && !needed[cls]) {
                std::ostringstream oss;
                oss << "class " << cls
                    << " is chosen but not needed by the extraction";
                return fail(Violation::UnreachableChoice, oss.str());
            }
        }
    }

    // Constraint (c): DFS cycle detection on the chosen subgraph.
    enum class Color : unsigned char { White, Gray, Black };
    std::vector<Color> color(graph.numClasses(), Color::White);
    struct Frame
    {
        ClassId cls;
        std::size_t childIdx;
    };
    std::vector<Frame> stack;
    stack.push_back({graph.root(), 0});
    color[graph.root()] = Color::Gray;
    while (!stack.empty()) {
        Frame& frame = stack.back();
        const NodeId nid = sel.choice[frame.cls];
        const auto& children = graph.node(nid).children;
        if (frame.childIdx < children.size()) {
            const ClassId child = children[frame.childIdx++];
            if (color[child] == Color::Gray) {
                std::ostringstream oss;
                oss << "cycle through class " << child;
                return fail(Violation::Cyclic, oss.str());
            }
            if (color[child] == Color::White) {
                color[child] = Color::Gray;
                stack.push_back({child, 0});
            }
        } else {
            color[frame.cls] = Color::Black;
            stack.pop_back();
        }
    }

    return result;
}

double
dagCost(const EGraph& graph, const Selection& sel)
{
    if (!sel.chosen(graph.root()))
        return kInf;
    std::vector<bool> counted(graph.numClasses(), false);
    std::vector<ClassId> worklist{graph.root()};
    counted[graph.root()] = true;
    double total = 0.0;
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        const NodeId nid = sel.choice[cls];
        if (nid == kNoNode)
            return kInf;
        total += graph.node(nid).cost;
        for (ClassId child : graph.node(nid).children) {
            if (!counted[child]) {
                counted[child] = true;
                worklist.push_back(child);
            }
        }
    }
    return total;
}

double
treeCost(const EGraph& graph, const Selection& sel)
{
    if (!sel.chosen(graph.root()))
        return kInf;

    // Memoized DFS; Gray on the stack means a cycle.
    enum class State : unsigned char { Unvisited, InProgress, Done };
    std::vector<State> state(graph.numClasses(), State::Unvisited);
    std::vector<double> memo(graph.numClasses(), 0.0);

    struct Frame
    {
        ClassId cls;
        std::size_t childIdx;
        double partial;
    };
    std::vector<Frame> stack;
    auto push = [&](ClassId cls) -> bool {
        if (sel.choice[cls] == kNoNode)
            return false;
        state[cls] = State::InProgress;
        stack.push_back({cls, 0, graph.node(sel.choice[cls]).cost});
        return true;
    };
    if (!push(graph.root()))
        return kInf;
    while (!stack.empty()) {
        Frame& frame = stack.back();
        const auto& children = graph.node(sel.choice[frame.cls]).children;
        if (frame.childIdx < children.size()) {
            const ClassId child = children[frame.childIdx++];
            switch (state[child]) {
              case State::Done:
                frame.partial += memo[child];
                break;
              case State::InProgress:
                return kInf; // cycle
              case State::Unvisited:
                if (!push(child))
                    return kInf;
                break;
            }
        } else {
            memo[frame.cls] = frame.partial;
            state[frame.cls] = State::Done;
            const double value = frame.partial;
            stack.pop_back();
            if (!stack.empty())
                stack.back().partial += value;
            else
                return value;
        }
    }
    return memo[graph.root()];
}

std::optional<std::vector<ClassId>>
neededClasses(const EGraph& graph, const Selection& sel)
{
    if (!sel.chosen(graph.root()))
        return std::nullopt;
    std::vector<bool> seen(graph.numClasses(), false);
    std::vector<ClassId> order;
    std::vector<ClassId> worklist{graph.root()};
    seen[graph.root()] = true;
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        order.push_back(cls);
        const NodeId nid = sel.choice[cls];
        if (nid == kNoNode)
            return std::nullopt;
        for (ClassId child : graph.node(nid).children) {
            if (!seen[child]) {
                seen[child] = true;
                worklist.push_back(child);
            }
        }
    }
    return order;
}

} // namespace smoothe::extract
