/**
 * @file
 * Worklist-based heuristic extractors.
 *
 * BottomUpExtractor reimplements egg's default cost-propagation heuristic
 * ("Heuristic (egg)" in the paper's tables): e-class costs start at
 * infinity, leaves seed a queue, and dequeuing an e-node updates its
 * class's best (tree) cost, enqueueing parents on improvement. It
 * minimizes *tree* cost and therefore over-counts shared subexpressions.
 *
 * FasterBottomUpExtractor is the improved variant from the extraction gym
 * ("Heuristic+"): identical fixed point, but pending-children counting
 * avoids redundant requeues, and ties are broken toward e-nodes with fewer
 * children, then smaller DAG footprint via a post-pass that rebuilds the
 * selection top-down sharing already-selected classes.
 */

#ifndef SMOOTHE_EXTRACTION_BOTTOM_UP_HPP
#define SMOOTHE_EXTRACTION_BOTTOM_UP_HPP

#include "extraction/extractor.hpp"

namespace smoothe::extract {

/** egg's default greedy/iterative heuristic. */
class BottomUpExtractor : public Extractor
{
  public:
    std::string name() const override { return "heuristic"; }

    bool supportsIncremental() const override { return true; }

  protected:
    ExtractionResult extractImpl(const eg::EGraph& graph,
                                 const ExtractOptions& options) override;

    /**
     * Carries the converged per-class cost table across epochs; only
     * classes the delta marks dirty (and their transitive parents) are
     * re-relaxed, reaching the same fixed point as from scratch.
     */
    ExtractionResult
    extractIncrementalImpl(const eg::EGraph& graph,
                           const eg::GraphDelta& delta,
                           IncrementalState& state,
                           const ExtractOptions& options) override;
};

/** The extraction-gym "faster-bottom-up" improved heuristic. */
class FasterBottomUpExtractor : public Extractor
{
  public:
    std::string name() const override { return "heuristic+"; }

    bool supportsIncremental() const override { return true; }

  protected:
    ExtractionResult extractImpl(const eg::EGraph& graph,
                                 const ExtractOptions& options) override;

    /**
     * Carries the pre-refinement fixed point (the DAG-aware post-pass
     * is root-dependent and cheap, so it reruns every epoch on top of
     * the incrementally repaired cost table).
     */
    ExtractionResult
    extractIncrementalImpl(const eg::EGraph& graph,
                           const eg::GraphDelta& delta,
                           IncrementalState& state,
                           const ExtractOptions& options) override;
};

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_BOTTOM_UP_HPP
