#include "extraction/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "extraction/random_sample.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::extract {

using eg::EGraph;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Genome = std::vector<double>;

Genome
randomGenome(std::size_t n, util::Rng& rng)
{
    Genome g(n);
    for (double& key : g)
        key = rng.uniform(0.01, 1.0);
    return g;
}

} // namespace

ExtractionResult
GeneticExtractor::extractImpl(const EGraph& graph,
                              const ExtractOptions& options)
{
    return extractWithCost(graph, dagCost, options);
}

ExtractionResult
GeneticExtractor::extractWithCost(const EGraph& graph,
                                  const DiscreteCost& cost,
                                  const ExtractOptions& options)
{
    util::Timer timer;
    util::Deadline deadline(options.timeLimitSeconds);
    util::Rng rng(options.seed);

    const std::size_t n = graph.numNodes();
    const std::size_t pop = std::max<std::size_t>(4, config_.populationSize);

    struct Individual
    {
        Genome genome;
        Selection selection;
        double fitness = kInf;
    };

    auto evaluate = [&](Individual& ind) {
        ind.selection = bottomUpWithCosts(graph, ind.genome);
        if (!ind.selection.chosen(graph.root())) {
            ind.fitness = kInf;
            return;
        }
        ind.fitness = cost(graph, ind.selection);
    };

    std::vector<Individual> population(pop);
    for (auto& ind : population) {
        ind.genome = randomGenome(n, rng);
        evaluate(ind);
    }

    auto best = [&]() -> const Individual& {
        const auto it = std::min_element(
            population.begin(), population.end(),
            [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
            });
        return *it;
    };

    ExtractionResult result;
    double incumbent = best().fitness;
    if (options.recordTrace && incumbent < kInf)
        result.trace.push_back({timer.seconds(), incumbent});

    auto tournament = [&]() -> const Individual& {
        const Individual* winner =
            &population[rng.uniformIndex(population.size())];
        for (std::size_t k = 1; k < config_.tournamentSize; ++k) {
            const Individual& candidate =
                population[rng.uniformIndex(population.size())];
            if (candidate.fitness < winner->fitness)
                winner = &candidate;
        }
        return *winner;
    };

    static obs::Counter& generations = obs::counter("genetic.generations");
    static obs::Logger logger("genetic");
    for (std::size_t gen = 0;
         gen < config_.generations && !deadline.expired(); ++gen) {
        obs::Span genSpan("generation", "genetic");
        generations.add(1);
        std::vector<Individual> next;
        next.reserve(pop);

        // Elitism: carry the best genomes unchanged.
        std::vector<std::size_t> order(population.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::partial_sort(
            order.begin(),
            order.begin() +
                std::min(config_.eliteCount, order.size()),
            order.end(), [&](std::size_t a, std::size_t b) {
                return population[a].fitness < population[b].fitness;
            });
        for (std::size_t e = 0;
             e < std::min(config_.eliteCount, order.size()); ++e)
            next.push_back(population[order[e]]);

        while (next.size() < pop) {
            Individual child;
            const Individual& parentA = tournament();
            if (rng.bernoulli(config_.crossoverRate)) {
                const Individual& parentB = tournament();
                child.genome.resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                    child.genome[i] = rng.bernoulli(0.5)
                                          ? parentA.genome[i]
                                          : parentB.genome[i];
                }
            } else {
                child.genome = parentA.genome;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (rng.bernoulli(config_.mutationRate))
                    child.genome[i] = rng.uniform(0.01, 1.0);
            }
            evaluate(child);
            next.push_back(std::move(child));
        }
        population = std::move(next);

        const double current = best().fitness;
        if (current < incumbent) {
            incumbent = current;
            logger.debug("generation %zu: new incumbent %.6g", gen,
                         incumbent);
            obs::traceCounter("genetic.best_cost", incumbent);
            if (options.recordTrace)
                result.trace.push_back({timer.seconds(), incumbent});
        }
    }

    const Individual& winner = best();
    result.seconds = timer.seconds();
    if (winner.fitness == kInf) {
        result.status = SolveStatus::Failed;
        result.cost = kInf;
        return result;
    }
    result.status = SolveStatus::Feasible;
    result.selection = winner.selection;
    result.cost = winner.fitness;
    return result;
}

} // namespace smoothe::extract
