/**
 * @file
 * DAG-aware greedy extraction (the extraction gym's "greedy-dag"
 * baseline): instead of scalar tree costs, each e-class carries a *cost
 * set* — the concrete per-class choices its best known solution uses —
 * so shared subexpressions are charged once during propagation. Strictly
 * stronger than the tree-cost heuristics on CSE-rich e-graphs, at the
 * price of set unions per update.
 */

#ifndef SMOOTHE_EXTRACTION_GREEDY_DAG_HPP
#define SMOOTHE_EXTRACTION_GREEDY_DAG_HPP

#include "extraction/extractor.hpp"

namespace smoothe::extract {

/** Cost-set greedy extractor. */
class GreedyDagExtractor : public Extractor
{
  public:
    std::string name() const override { return "greedy-dag"; }

    bool supportsIncremental() const override { return true; }

  protected:
    ExtractionResult extractImpl(const eg::EGraph& graph,
                                 const ExtractOptions& options) override;

    /**
     * Carries every class's converged cost set across epochs, remapped
     * through the delta (merged classes keep the cheaper set) and
     * re-relaxed from the dirty frontier only.
     */
    ExtractionResult
    extractIncrementalImpl(const eg::EGraph& graph,
                           const eg::GraphDelta& delta,
                           IncrementalState& state,
                           const ExtractOptions& options) override;
};

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_GREEDY_DAG_HPP
