#include "extraction/greedy_dag.hpp"

#include <deque>
#include <limits>
#include <map>

#include "extraction/bottom_up.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::extract {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A class's best known solution: per-class choices + cached DAG cost. */
struct CostSet
{
    std::map<ClassId, NodeId> choices;
    double cost = kInf;
};

} // namespace

ExtractionResult
GreedyDagExtractor::extractImpl(const EGraph& graph,
                            const ExtractOptions& options)
{
    util::Timer timer;
    util::Deadline deadline(options.timeLimitSeconds);
    obs::Span span("greedy_dag.extract", "extraction");
    static obs::Counter& updates = obs::counter("greedy_dag.updates");

    const std::size_t m = graph.numClasses();
    std::vector<CostSet> best(m);

    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
        if (graph.node(nid).children.empty()) {
            queue.push_back(nid);
            inQueue[nid] = true;
        }
    }

    while (!queue.empty() && !deadline.expired()) {
        const NodeId nid = queue.front();
        queue.pop_front();
        inQueue[nid] = false;
        const ClassId owner = graph.classOf(nid);

        // Merge the children's cost sets around this node's choice.
        CostSet candidate;
        candidate.choices[owner] = nid;
        bool feasible = true;
        for (ClassId child : graph.node(nid).children) {
            if (best[child].cost == kInf) {
                feasible = false;
                break;
            }
            for (const auto& [cls, choice] : best[child].choices) {
                // A child solution that already uses this node's class
                // would close a cycle through `owner`; reject.
                if (cls == owner) {
                    feasible = false;
                    break;
                }
                candidate.choices.emplace(cls, choice); // keep first
            }
            if (!feasible)
                break;
        }
        if (!feasible)
            continue;

        candidate.cost = 0.0;
        for (const auto& [cls, choice] : candidate.choices)
            candidate.cost += graph.node(choice).cost;

        if (candidate.cost + 1e-12 < best[owner].cost) {
            updates.add(1);
            best[owner] = std::move(candidate);
            for (NodeId parent : graph.parents(owner)) {
                if (!inQueue[parent]) {
                    queue.push_back(parent);
                    inQueue[parent] = true;
                }
            }
        }
    }

    ExtractionResult result;
    result.seconds = timer.seconds();
    if (best[graph.root()].cost == kInf) {
        result.status = SolveStatus::Infeasible;
        result.cost = kInf;
        return result;
    }

    Selection sel = Selection::empty(graph);
    for (const auto& [cls, choice] : best[graph.root()].choices)
        sel.choice[cls] = choice;
    // The union may contain entries no longer needed after conflicts were
    // resolved by "keep first"; restrict to the rooted closure.
    Selection rooted = Selection::empty(graph);
    std::vector<ClassId> worklist{graph.root()};
    rooted.choice[graph.root()] = sel.choice[graph.root()];
    bool complete = true;
    while (!worklist.empty() && complete) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        for (ClassId child : graph.node(rooted.choice[cls]).children) {
            if (rooted.choice[child] != kNoNode)
                continue;
            if (sel.choice[child] == kNoNode) {
                complete = false;
                break;
            }
            rooted.choice[child] = sel.choice[child];
            worklist.push_back(child);
        }
    }

    const auto check = complete
                           ? validate(graph, rooted)
                           : ValidationResult{Violation::MissingChild,
                                              "incomplete cost set"};
    if (!check.ok()) {
        // Inconsistent union (possible when conflicting child sets were
        // resolved keep-first): fall back to the tree-cost fixed point.
        static obs::Logger logger("extraction");
        logger.warn("greedy-dag union invalid (%s); falling back to "
                    "heuristic+",
                    check.message.c_str());
        obs::counter("greedy_dag.fallbacks").add(1);
        FasterBottomUpExtractor fallback;
        ExtractionResult safe = fallback.extract(graph, options);
        safe.seconds += timer.seconds();
        safe.note = "greedy-dag union invalid (" + check.message +
                    "); fell back to heuristic+";
        return safe;
    }
    result.status = SolveStatus::Feasible;
    result.selection = std::move(rooted);
    result.cost = dagCost(graph, result.selection);
    return result;
}

} // namespace smoothe::extract
