#include "extraction/greedy_dag.hpp"

#include <deque>
#include <limits>
#include <map>

#include "egraph/delta.hpp"
#include "extraction/bottom_up.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::extract {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A class's best known solution: per-class choices + cached DAG cost. */
struct CostSet
{
    std::map<ClassId, NodeId> choices;
    double cost = kInf;
};

/** Carried per-class cost sets for incremental re-extraction. */
struct CarriedCostSets : IncrementalBlob
{
    std::vector<CostSet> best;
};

/** The cost-set propagation loop shared by cold and warm starts. */
void
relaxCostSets(const EGraph& graph, std::vector<CostSet>& best,
              std::deque<NodeId>& queue, std::vector<bool>& inQueue,
              util::Deadline& deadline)
{
    static obs::Counter& updates = obs::counter("greedy_dag.updates");
    while (!queue.empty() && !deadline.expired()) {
        const NodeId nid = queue.front();
        queue.pop_front();
        inQueue[nid] = false;
        const ClassId owner = graph.classOf(nid);

        // Merge the children's cost sets around this node's choice.
        CostSet candidate;
        candidate.choices[owner] = nid;
        bool feasible = true;
        for (ClassId child : graph.node(nid).children) {
            if (best[child].cost == kInf) {
                feasible = false;
                break;
            }
            for (const auto& [cls, choice] : best[child].choices) {
                // A child solution that already uses this node's class
                // would close a cycle through `owner`; reject.
                if (cls == owner) {
                    feasible = false;
                    break;
                }
                candidate.choices.emplace(cls, choice); // keep first
            }
            if (!feasible)
                break;
        }
        if (!feasible)
            continue;

        candidate.cost = 0.0;
        for (const auto& [cls, choice] : candidate.choices)
            candidate.cost += graph.node(choice).cost;

        if (candidate.cost + 1e-12 < best[owner].cost) {
            updates.add(1);
            best[owner] = std::move(candidate);
            for (NodeId parent : graph.parents(owner)) {
                if (!inQueue[parent]) {
                    queue.push_back(parent);
                    inQueue[parent] = true;
                }
            }
        }
    }
}

/** Turns converged cost sets into a validated rooted selection. */
ExtractionResult
finishFromCostSets(const EGraph& graph, const std::vector<CostSet>& best,
                   const util::Timer& timer, const ExtractOptions& options)
{
    ExtractionResult result;
    result.seconds = timer.seconds();
    if (best[graph.root()].cost == kInf) {
        result.status = SolveStatus::Infeasible;
        result.cost = kInf;
        return result;
    }

    Selection sel = Selection::empty(graph);
    for (const auto& [cls, choice] : best[graph.root()].choices)
        sel.choice[cls] = choice;
    // The union may contain entries no longer needed after conflicts were
    // resolved by "keep first"; restrict to the rooted closure.
    Selection rooted = Selection::empty(graph);
    std::vector<ClassId> worklist{graph.root()};
    rooted.choice[graph.root()] = sel.choice[graph.root()];
    bool complete = true;
    while (!worklist.empty() && complete) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        for (ClassId child : graph.node(rooted.choice[cls]).children) {
            if (rooted.choice[child] != kNoNode)
                continue;
            if (sel.choice[child] == kNoNode) {
                complete = false;
                break;
            }
            rooted.choice[child] = sel.choice[child];
            worklist.push_back(child);
        }
    }

    const auto check = complete
                           ? validate(graph, rooted)
                           : ValidationResult{Violation::MissingChild,
                                              "incomplete cost set"};
    if (!check.ok()) {
        // Inconsistent union (possible when conflicting child sets were
        // resolved keep-first): fall back to the tree-cost fixed point.
        static obs::Logger logger("extraction");
        logger.warn("greedy-dag union invalid (%s); falling back to "
                    "heuristic+",
                    check.message.c_str());
        obs::counter("greedy_dag.fallbacks").add(1);
        FasterBottomUpExtractor fallback;
        ExtractionResult safe = fallback.extract(graph, options);
        safe.seconds += timer.seconds();
        safe.note = "greedy-dag union invalid (" + check.message +
                    "); fell back to heuristic+";
        return safe;
    }
    result.status = SolveStatus::Feasible;
    result.selection = std::move(rooted);
    result.cost = dagCost(graph, result.selection);
    return result;
}

/**
 * Remaps the previous epoch's cost sets into the new id space. Merged
 * classes keep the cheaper preimage set; choices that collapse onto the
 * same new class are resolved keep-first and the cached cost is
 * recomputed over the deduplicated set. The result may have gone stale
 * against new cheaper nodes — the dirty-frontier relaxation repairs it.
 */
std::vector<CostSet>
remapCostSets(const EGraph& graph, const eg::GraphDelta& delta,
              const std::vector<CostSet>& prev)
{
    std::vector<CostSet> best(graph.numClasses());
    for (ClassId p = 0; p < delta.prevNumClasses; ++p) {
        if (prev[p].cost == kInf)
            continue;
        CostSet mapped;
        mapped.choices.clear();
        for (const auto& [cls, choice] : prev[p].choices)
            mapped.choices.emplace(delta.classForward[cls],
                                   delta.nodeForward[choice]); // keep first
        mapped.cost = 0.0;
        for (const auto& [cls, choice] : mapped.choices)
            mapped.cost += graph.node(choice).cost;
        const ClassId c = delta.classForward[p];
        if (mapped.cost + 1e-12 < best[c].cost)
            best[c] = std::move(mapped);
    }
    return best;
}

} // namespace

ExtractionResult
GreedyDagExtractor::extractImpl(const EGraph& graph,
                            const ExtractOptions& options)
{
    util::Timer timer;
    util::Deadline deadline(options.timeLimitSeconds);
    obs::Span span("greedy_dag.extract", "extraction");

    std::vector<CostSet> best(graph.numClasses());
    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
        if (graph.node(nid).children.empty()) {
            queue.push_back(nid);
            inQueue[nid] = true;
        }
    }
    relaxCostSets(graph, best, queue, inQueue, deadline);
    return finishFromCostSets(graph, best, timer, options);
}

ExtractionResult
GreedyDagExtractor::extractIncrementalImpl(const EGraph& graph,
                                           const eg::GraphDelta& delta,
                                           IncrementalState& state,
                                           const ExtractOptions& options)
{
    util::Timer timer;
    util::Deadline deadline(options.timeLimitSeconds);
    obs::Span span("greedy_dag.extract", "extraction");

    const auto* prev = blobOf<CarriedCostSets>(state);
    std::vector<CostSet> best;
    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    if (prev) {
        best = remapCostSets(graph, delta, prev->best);
        for (ClassId c : delta.dirtyClasses) {
            for (NodeId nid : graph.nodesInClass(c)) {
                if (!inQueue[nid]) {
                    queue.push_back(nid);
                    inQueue[nid] = true;
                }
            }
            for (NodeId parent : graph.parents(c)) {
                if (!inQueue[parent]) {
                    queue.push_back(parent);
                    inQueue[parent] = true;
                }
            }
        }
    } else {
        best.assign(graph.numClasses(), CostSet{});
        for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
            if (graph.node(nid).children.empty()) {
                queue.push_back(nid);
                inQueue[nid] = true;
            }
        }
    }
    relaxCostSets(graph, best, queue, inQueue, deadline);
    ExtractionResult result = finishFromCostSets(graph, best, timer, options);
    storeBlob<CarriedCostSets>(state).best = std::move(best);
    return result;
}

} // namespace smoothe::extract
