#include "extraction/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace smoothe::extract {

ValidationResult
validateResult(const eg::EGraph& graph, const ExtractionResult& result,
               double cost_tolerance)
{
    ValidationResult out;
    auto fail = [&](Violation v, const std::string& message) {
        out.violation = v;
        out.message = message;
        return out;
    };

    if (!result.ok()) {
        // Failed runs may attach their broken selection for debugging
        // (bottom_up does, with a note), but a failed/infeasible status
        // alongside a fully VALID solution means the solver is lying
        // about its outcome — callers branching on ok() would silently
        // discard a usable answer.
        if (result.selection.choice.size() == graph.numClasses() &&
            result.selection.chosen(graph.root()) &&
            validate(graph, result.selection).ok()) {
            return fail(Violation::StatusMismatch,
                        std::string("status is ") + toString(result.status) +
                            " but the result carries a valid solution");
        }
        return out;
    }

    ValidationResult structural = validate(graph, result.selection);
    if (!structural.ok())
        return structural;

    const double recomputed = dagCost(graph, result.selection);
    const double reported = result.cost;
    const double scale = std::max({std::fabs(recomputed),
                                   std::fabs(reported), 1.0});
    if (!std::isfinite(reported) ||
        std::fabs(recomputed - reported) > cost_tolerance * scale) {
        std::ostringstream oss;
        oss << "reported cost " << reported
            << " does not match recomputed DAG cost " << recomputed;
        return fail(Violation::CostMismatch, oss.str());
    }
    return out;
}

std::optional<std::string>
checkResultInvariants(const eg::EGraph& graph,
                      const ExtractionResult& result)
{
    const ValidationResult check = validateResult(graph, result);
    if (check.ok())
        return std::nullopt;
    return std::string(toString(result.status)) + " result invalid: " +
           check.message;
}

} // namespace smoothe::extract
