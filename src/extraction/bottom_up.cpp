#include "extraction/bottom_up.hpp"

#include <cmath>
#include <deque>
#include <limits>

#include "egraph/delta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::extract {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Shared fixed-point: per-class best tree cost and chosen node. */
struct FixedPoint
{
    std::vector<double> classCost;
    std::vector<NodeId> classChoice;
};

/** The carried cost table for incremental re-extraction. */
struct CarriedFixedPoint : IncrementalBlob
{
    FixedPoint fp;
};

/**
 * Relaxes the egg-style worklist to a fixed point from the given seeds.
 * When tie_break_children is true, equal-cost updates prefer the node
 * with fewer children (the gym's heuristic+ tweak).
 */
void
relax(const EGraph& graph, FixedPoint& fp, std::deque<NodeId>& queue,
      std::vector<bool>& inQueue, bool tie_break_children)
{
    obs::Span span("bottom_up.worklist", "extraction");
    static obs::Counter& updates = obs::counter("bottom_up.relaxations");

    auto aggregated = [&](NodeId nid) -> double {
        double total = graph.node(nid).cost;
        for (ClassId child : graph.node(nid).children) {
            if (fp.classCost[child] == kInf)
                return kInf;
            total += fp.classCost[child];
        }
        return total;
    };

    while (!queue.empty()) {
        const NodeId nid = queue.front();
        queue.pop_front();
        inQueue[nid] = false;

        const double cost = aggregated(nid);
        if (cost == kInf)
            continue;
        const ClassId cls = graph.classOf(nid);
        bool better = cost < fp.classCost[cls];
        if (!better && tie_break_children && cost == fp.classCost[cls] &&
            fp.classChoice[cls] != kNoNode) {
            better = graph.node(nid).children.size() <
                     graph.node(fp.classChoice[cls]).children.size();
        }
        if (better) {
            updates.add(1);
            fp.classCost[cls] = cost;
            fp.classChoice[cls] = nid;
            for (NodeId parent : graph.parents(cls)) {
                if (!inQueue[parent]) {
                    queue.push_back(parent);
                    inQueue[parent] = true;
                }
            }
        }
    }
}

/** Cold start: infinite costs everywhere, leaves seed the queue. */
FixedPoint
runWorklist(const EGraph& graph, bool tie_break_children)
{
    const std::size_t m = graph.numClasses();
    FixedPoint fp;
    fp.classCost.assign(m, kInf);
    fp.classChoice.assign(m, kNoNode);

    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
        if (graph.node(nid).children.empty()) {
            queue.push_back(nid);
            inQueue[nid] = true;
        }
    }
    relax(graph, fp, queue, inQueue, tie_break_children);
    return fp;
}

/**
 * Warm start: remap the previous epoch's converged table into the new id
 * space and re-relax only from the delta's dirty classes.
 *
 * Saturation is grow-only, so a carried cost is the cost of a tree that
 * still exists — an achievable upper bound — and per-class costs are
 * monotone non-increasing across epochs. Any class whose true cost
 * dropped lies upward of a dirty class through parent edges, which is
 * exactly the frontier the seed queue covers, so the relaxation reaches
 * the same least fixed point a cold run would.
 */
FixedPoint
resumeWorklist(const EGraph& graph, const eg::GraphDelta& delta,
               const FixedPoint& prev, bool tie_break_children)
{
    static obs::Counter& resumed = obs::counter("bottom_up.resumed_classes");
    const std::size_t m = graph.numClasses();
    FixedPoint fp;
    fp.classCost.assign(m, kInf);
    fp.classChoice.assign(m, kNoNode);
    for (ClassId p = 0; p < delta.prevNumClasses; ++p) {
        if (prev.classCost[p] == kInf)
            continue;
        const ClassId c = delta.classForward[p];
        if (prev.classCost[p] < fp.classCost[c]) {
            fp.classCost[c] = prev.classCost[p];
            fp.classChoice[c] = delta.nodeForward[prev.classChoice[p]];
        }
    }
    resumed.add(m - delta.dirtyClasses.size());

    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    const auto enqueue = [&](NodeId nid) {
        if (!inQueue[nid]) {
            queue.push_back(nid);
            inQueue[nid] = true;
        }
    };
    for (ClassId c : delta.dirtyClasses) {
        for (NodeId nid : graph.nodesInClass(c))
            enqueue(nid);
        for (NodeId parent : graph.parents(c))
            enqueue(parent);
    }
    relax(graph, fp, queue, inQueue, tie_break_children);
    return fp;
}

/**
 * One round of DAG-aware refinement (the gym's heuristic+ post-pass).
 * Walks needed classes top-down; for each, re-evaluates every member
 * e-node charging zero for children already selected elsewhere in the
 * extraction, and switches when strictly cheaper.
 */
void
refineDagAware(const EGraph& graph, FixedPoint& fp)
{
    if (fp.classChoice[graph.root()] == kNoNode)
        return;
    std::vector<bool> selectedClass(graph.numClasses(), false);
    std::vector<ClassId> order{graph.root()};
    selectedClass[graph.root()] = true;
    for (std::size_t head = 0; head < order.size(); ++head) {
        const ClassId cls = order[head];
        const NodeId cur = fp.classChoice[cls];
        NodeId best = cur;
        double bestCost = kInf;
        auto scoreNode = [&](NodeId nid) -> double {
            double total = graph.node(nid).cost;
            for (ClassId child : graph.node(nid).children) {
                if (selectedClass[child])
                    continue; // shared: already paid for
                if (fp.classCost[child] == kInf)
                    return kInf;
                total += fp.classCost[child];
            }
            return total;
        };
        bestCost = scoreNode(cur);
        for (NodeId nid : graph.nodesInClass(cls)) {
            if (nid == cur)
                continue;
            const double cost = scoreNode(nid);
            if (cost < bestCost) {
                bestCost = cost;
                best = nid;
            }
        }
        fp.classChoice[cls] = best;
        for (ClassId child : graph.node(best).children) {
            if (!selectedClass[child] && fp.classChoice[child] != kNoNode) {
                selectedClass[child] = true;
                order.push_back(child);
            }
        }
    }
}

/** Builds the final Selection from per-class choices, rooted pruning. */
ExtractionResult
buildResult(const EGraph& graph, const FixedPoint& fp, double seconds)
{
    ExtractionResult result;
    result.seconds = seconds;
    if (fp.classChoice[graph.root()] == kNoNode) {
        result.status = SolveStatus::Infeasible;
        result.cost = kInf;
        return result;
    }
    Selection sel = Selection::empty(graph);
    std::vector<ClassId> worklist{graph.root()};
    sel.choice[graph.root()] = fp.classChoice[graph.root()];
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        for (ClassId child : graph.node(sel.choice[cls]).children) {
            if (sel.choice[child] == kNoNode) {
                sel.choice[child] = fp.classChoice[child];
                worklist.push_back(child);
            }
        }
    }
    result.selection = std::move(sel);
    const auto check = validate(graph, result.selection);
    if (!check.ok()) {
        result.status = SolveStatus::Failed;
        result.cost = kInf;
        result.note = check.message;
        return result;
    }
    result.status = SolveStatus::Feasible;
    result.cost = dagCost(graph, result.selection);
    return result;
}

} // namespace

ExtractionResult
BottomUpExtractor::extractImpl(const EGraph& graph,
                               const ExtractOptions& options)
{
    (void)options;
    util::Timer timer;
    const FixedPoint fp = runWorklist(graph, /*tie_break_children=*/false);
    return buildResult(graph, fp, timer.seconds());
}

ExtractionResult
BottomUpExtractor::extractIncrementalImpl(const EGraph& graph,
                                          const eg::GraphDelta& delta,
                                          IncrementalState& state,
                                          const ExtractOptions& options)
{
    (void)options;
    util::Timer timer;
    const auto* prev = blobOf<CarriedFixedPoint>(state);
    FixedPoint fp =
        prev ? resumeWorklist(graph, delta, prev->fp,
                              /*tie_break_children=*/false)
             : runWorklist(graph, /*tie_break_children=*/false);
    ExtractionResult result = buildResult(graph, fp, timer.seconds());
    storeBlob<CarriedFixedPoint>(state).fp = std::move(fp);
    return result;
}

ExtractionResult
FasterBottomUpExtractor::extractImpl(const EGraph& graph,
                                 const ExtractOptions& options)
{
    (void)options;
    util::Timer timer;
    FixedPoint fp = runWorklist(graph, /*tie_break_children=*/true);
    refineDagAware(graph, fp);
    ExtractionResult refined = buildResult(graph, fp, timer.seconds());
    if (refined.ok())
        return refined;
    // The DAG-aware refinement can, on cyclic e-graphs, select into a
    // cycle; fall back to the plain fixed point which is always acyclic.
    const FixedPoint safe = runWorklist(graph, /*tie_break_children=*/true);
    return buildResult(graph, safe, timer.seconds());
}

ExtractionResult
FasterBottomUpExtractor::extractIncrementalImpl(const EGraph& graph,
                                                const eg::GraphDelta& delta,
                                                IncrementalState& state,
                                                const ExtractOptions& options)
{
    (void)options;
    util::Timer timer;
    const auto* prev = blobOf<CarriedFixedPoint>(state);
    // The carried table is the pure (pre-refinement) fixed point: the
    // DAG-aware post-pass depends on the root path, so its choices are
    // not safe upper bounds to seed the next epoch with.
    FixedPoint pure =
        prev ? resumeWorklist(graph, delta, prev->fp,
                              /*tie_break_children=*/true)
             : runWorklist(graph, /*tie_break_children=*/true);
    FixedPoint fp = pure;
    refineDagAware(graph, fp);
    ExtractionResult refined = buildResult(graph, fp, timer.seconds());
    if (!refined.ok())
        refined = buildResult(graph, pure, timer.seconds());
    storeBlob<CarriedFixedPoint>(state).fp = std::move(pure);
    return refined;
}

} // namespace smoothe::extract
