/**
 * @file
 * Random valid-extraction sampling.
 *
 * Sampling a uniformly random *valid* extraction is itself nontrivial on
 * cyclic e-graphs. We use the standard trick: draw random per-e-node
 * weights and run the bottom-up fixed point with those weights — the
 * resulting selection is always complete and acyclic, and different weight
 * draws explore different regions of the solution space. This powers the
 * genetic extractor's decoder (random-key encoding), the MLP cost model's
 * synthetic training data, and the property-based tests.
 */

#ifndef SMOOTHE_EXTRACTION_RANDOM_SAMPLE_HPP
#define SMOOTHE_EXTRACTION_RANDOM_SAMPLE_HPP

#include <vector>

#include "extraction/solution.hpp"
#include "util/rng.hpp"

namespace smoothe::extract {

/**
 * Runs the bottom-up fixed point with the given per-node weights and
 * returns the rooted selection. choice entries stay eg::kNoNode for
 * classes not needed (or when the root is infeasible, in which case the
 * root entry is also eg::kNoNode).
 */
Selection bottomUpWithCosts(const eg::EGraph& graph,
                            const std::vector<double>& node_costs);

/** Draws a random valid extraction (see file comment for the method). */
Selection sampleRandomSelection(const eg::EGraph& graph, util::Rng& rng);

/** Draws @p count random valid extractions. */
std::vector<Selection> sampleRandomSelections(const eg::EGraph& graph,
                                              std::size_t count,
                                              util::Rng& rng);

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_RANDOM_SAMPLE_HPP
