#include "extraction/extractor.hpp"

#include "check/contracts.hpp"
#include "extraction/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smoothe::extract {

ExtractionResult
Extractor::extract(const eg::EGraph& graph, const ExtractOptions& options)
{
    // Uniform observability for every extractor — including ones with
    // no internal spans of their own (ILP presets, random baselines):
    // one span covering the whole run plus a per-extractor run counter.
    // The name string must outlive the Span, which stores a raw
    // pointer.
    const std::string extractorName = name();
    obs::Span span(extractorName.c_str(), "extraction");
    obs::counter("extraction." + extractorName + ".runs").add(1);
    ExtractionResult result = extractImpl(graph, options);
    SMOOTHE_DCHECK_OK(checkResultInvariants(graph, result));
    return result;
}

const char*
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal: return "optimal";
      case SolveStatus::Feasible: return "feasible";
      case SolveStatus::Infeasible: return "infeasible";
      case SolveStatus::Failed: return "failed";
    }
    return "?";
}

} // namespace smoothe::extract
