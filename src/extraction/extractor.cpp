#include "extraction/extractor.hpp"

#include "check/contracts.hpp"
#include "extraction/validate.hpp"

namespace smoothe::extract {

ExtractionResult
Extractor::extract(const eg::EGraph& graph, const ExtractOptions& options)
{
    ExtractionResult result = extractImpl(graph, options);
    SMOOTHE_DCHECK_OK(checkResultInvariants(graph, result));
    return result;
}

const char*
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal: return "optimal";
      case SolveStatus::Feasible: return "feasible";
      case SolveStatus::Infeasible: return "infeasible";
      case SolveStatus::Failed: return "failed";
    }
    return "?";
}

} // namespace smoothe::extract
