#include "extraction/extractor.hpp"

namespace smoothe::extract {

const char*
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal: return "optimal";
      case SolveStatus::Feasible: return "feasible";
      case SolveStatus::Infeasible: return "infeasible";
      case SolveStatus::Failed: return "failed";
    }
    return "?";
}

} // namespace smoothe::extract
