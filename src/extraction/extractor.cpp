#include "extraction/extractor.hpp"

#include "check/contracts.hpp"
#include "extraction/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smoothe::extract {

ExtractionResult
Extractor::extract(const eg::EGraph& graph, const ExtractOptions& options)
{
    // Uniform observability for every extractor — including ones with
    // no internal spans of their own (ILP presets, random baselines):
    // one span covering the whole run plus a per-extractor run counter.
    // The name string must outlive the Span, which stores a raw
    // pointer.
    const std::string extractorName = name();
    obs::Span span(extractorName.c_str(), "extraction");
    obs::counter("extraction." + extractorName + ".runs").add(1);
    ExtractionResult result = extractImpl(graph, options);
    SMOOTHE_DCHECK_OK(checkResultInvariants(graph, result));
    return result;
}

ExtractionResult
Extractor::extractIncremental(const eg::EGraph& graph,
                              const eg::GraphDelta& delta,
                              IncrementalState& state,
                              const ExtractOptions& options)
{
    const std::string extractorName = name();
    obs::Span span(extractorName.c_str(), "extraction");
    obs::counter("extraction." + extractorName + ".incremental_runs")
        .add(1);
    SMOOTHE_DCHECK_OK(delta.checkConsistent(graph));
    if (!state.empty()) {
        // Reusing a state across extractors or e-graph lineages would
        // silently warm-start from unrelated ids; the delta's prev
        // counts must describe exactly the graph this state last saw.
        SMOOTHE_CHECK(state.owner_ == this,
                      "incremental state belongs to extractor \"%s\"",
                      state.owner_ ? state.owner_->name().c_str() : "?");
        SMOOTHE_CHECK(state.graphNodes_ == delta.prevNumNodes &&
                          state.graphClasses_ == delta.prevNumClasses,
                      "stale incremental state: it last saw %zu nodes / "
                      "%zu classes but the delta maps from %zu / %zu — "
                      "reset() the state before switching e-graphs",
                      state.graphNodes_, state.graphClasses_,
                      delta.prevNumNodes, delta.prevNumClasses);
    }
    ExtractionResult result =
        extractIncrementalImpl(graph, delta, state, options);
    state.owner_ = this;
    ++state.epoch_;
    state.graphNodes_ = graph.numNodes();
    state.graphClasses_ = graph.numClasses();
    SMOOTHE_DCHECK_OK(checkResultInvariants(graph, result));
    return result;
}

ExtractionResult
Extractor::extractIncrementalImpl(const eg::EGraph& graph,
                                  const eg::GraphDelta& delta,
                                  IncrementalState& state,
                                  const ExtractOptions& options)
{
    (void)delta;
    (void)state;
    return extractImpl(graph, options);
}

const char*
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal: return "optimal";
      case SolveStatus::Feasible: return "feasible";
      case SolveStatus::Infeasible: return "infeasible";
      case SolveStatus::Failed: return "failed";
    }
    return "?";
}

} // namespace smoothe::extract
