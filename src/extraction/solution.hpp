/**
 * @file
 * Extraction solutions, validity checking, and DAG cost evaluation.
 *
 * An extraction assigns to each *needed* e-class exactly one chosen e-node.
 * Needed classes are the root plus, transitively, every child class of a
 * chosen e-node. The paper's constraints (Section 2):
 *   (a) exactly one e-node chosen in the root e-class,
 *   (b) for every chosen e-node, exactly one e-node chosen in each child
 *       e-class (completeness),
 *   (c) the chosen subgraph is acyclic.
 */

#ifndef SMOOTHE_EXTRACTION_SOLUTION_HPP
#define SMOOTHE_EXTRACTION_SOLUTION_HPP

#include <optional>
#include <string>
#include <vector>

#include "egraph/egraph.hpp"

namespace smoothe::extract {

/**
 * A (possibly partial) extraction: choice[c] is the chosen e-node of
 * e-class c, or eg::kNoNode when the class is not part of the extraction.
 */
struct Selection
{
    std::vector<eg::NodeId> choice;

    /** Creates an empty selection sized for the graph. */
    static Selection
    empty(const eg::EGraph& graph)
    {
        Selection sel;
        sel.choice.assign(graph.numClasses(), eg::kNoNode);
        return sel;
    }

    bool
    chosen(eg::ClassId cls) const
    {
        return choice[cls] != eg::kNoNode;
    }

    /** Converts to the paper's binary e-node indicator vector s. */
    std::vector<bool> toNodeIndicator(const eg::EGraph& graph) const;
};

/** Why a selection failed validation. */
enum class Violation {
    None,
    RootUnchosen,        ///< constraint (a)
    MissingChild,        ///< constraint (b): chosen node, unchosen child class
    UnreachableChoice,   ///< a chosen class not needed by the extraction
    Cyclic,              ///< constraint (c)
    DanglingNode,        ///< choice[c] is not a member of class c
    CostMismatch,        ///< reported cost != recomputed DAG cost
    StatusMismatch,      ///< result status inconsistent with its contents
};

/** Validation outcome with a message suitable for test diagnostics. */
struct ValidationResult
{
    Violation violation = Violation::None;
    std::string message;

    bool ok() const { return violation == Violation::None; }
};

/**
 * Checks constraints (a), (b), (c) plus internal consistency.
 * @param graph a finalized e-graph
 * @param sel the candidate extraction
 * @param allow_unreachable when true, chosen classes that are not needed
 *        are tolerated (useful for intermediate sampler states)
 */
ValidationResult validate(const eg::EGraph& graph, const Selection& sel,
                          bool allow_unreachable = false);

/**
 * DAG cost of a complete selection: the sum of chosen e-node costs over
 * the classes reachable from the root through the selection, counting each
 * class once (this is the paper's linear objective u^T s, which naturally
 * accounts for common-subexpression reuse).
 *
 * Returns infinity when the selection is incomplete along the way.
 */
double dagCost(const eg::EGraph& graph, const Selection& sel);

/**
 * Tree cost: expands the selection as a tree from the root, counting
 * shared subexpressions once per use. Guarded against cycles (returns
 * infinity) and against astronomically deep expansions via memoization on
 * the class level — cost(c) = cost(node) + sum cost(children).
 */
double treeCost(const eg::EGraph& graph, const Selection& sel);

/**
 * The classes actually needed by the selection (root + transitive chosen
 * children). Returns std::nullopt when the selection is incomplete.
 */
std::optional<std::vector<eg::ClassId>>
neededClasses(const eg::EGraph& graph, const Selection& sel);

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_SOLUTION_HPP
