/**
 * @file
 * End-to-end certification of extractor outputs.
 *
 * validateResult() is the property the whole pipeline promises (paper
 * Section 2): a successful extraction is a complete, acyclic,
 * root-covering selection whose recomputed DAG cost matches the cost the
 * extractor reported. Every extractor test calls it, `smoothe_extract
 * --validate` runs it on tool output, and SMOOTHE_DEBUG_INVARIANTS
 * builds run it inside every extractor before returning.
 */

#ifndef SMOOTHE_EXTRACTION_VALIDATE_HPP
#define SMOOTHE_EXTRACTION_VALIDATE_HPP

#include <optional>
#include <string>

#include "extraction/extractor.hpp"
#include "extraction/solution.hpp"

namespace smoothe::extract {

/**
 * Certifies one extractor outcome against the graph it was computed on.
 *
 * For ok() results (Optimal/Feasible) the selection must pass
 * validate() — complete from the root, acyclic, no dangling or
 * unreachable choices — and the recomputed dagCost() must equal
 * result.cost within |rel err| <= cost_tolerance. Infeasible/Failed
 * results may attach a broken selection for debugging but must not
 * carry a fully valid solution (a solver that found one but reports
 * failure is lying about its status).
 *
 * @param cost_tolerance relative tolerance for the cost cross-check;
 *        extractors accumulate in doubles so 1e-6 is generous.
 */
ValidationResult validateResult(const eg::EGraph& graph,
                                const ExtractionResult& result,
                                double cost_tolerance = 1e-6);

/**
 * Adapter for the contract macros: nullopt when validateResult() passes,
 * else its message (prefixed with the extractor status).
 */
std::optional<std::string>
checkResultInvariants(const eg::EGraph& graph,
                      const ExtractionResult& result);

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_VALIDATE_HPP
