#include "extraction/random_sample.hpp"

#include <deque>
#include <limits>

#include "obs/trace.hpp"

namespace smoothe::extract {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;

Selection
bottomUpWithCosts(const EGraph& graph, const std::vector<double>& node_costs)
{
    obs::Span span("random_sample.bottom_up", "extraction");
    const std::size_t m = graph.numClasses();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> classCost(m, kInf);
    std::vector<NodeId> classChoice(m, kNoNode);

    std::deque<NodeId> queue;
    std::vector<bool> inQueue(graph.numNodes(), false);
    for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
        if (graph.node(nid).children.empty()) {
            queue.push_back(nid);
            inQueue[nid] = true;
        }
    }
    while (!queue.empty()) {
        const NodeId nid = queue.front();
        queue.pop_front();
        inQueue[nid] = false;
        double total = node_costs[nid];
        bool feasible = true;
        for (ClassId child : graph.node(nid).children) {
            if (classCost[child] == kInf) {
                feasible = false;
                break;
            }
            total += classCost[child];
        }
        if (!feasible)
            continue;
        const ClassId cls = graph.classOf(nid);
        if (total < classCost[cls]) {
            classCost[cls] = total;
            classChoice[cls] = nid;
            for (NodeId parent : graph.parents(cls)) {
                if (!inQueue[parent]) {
                    queue.push_back(parent);
                    inQueue[parent] = true;
                }
            }
        }
    }

    Selection sel = Selection::empty(graph);
    if (classChoice[graph.root()] == kNoNode)
        return sel;
    std::vector<ClassId> worklist{graph.root()};
    sel.choice[graph.root()] = classChoice[graph.root()];
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        for (ClassId child : graph.node(sel.choice[cls]).children) {
            if (sel.choice[child] == kNoNode) {
                sel.choice[child] = classChoice[child];
                worklist.push_back(child);
            }
        }
    }
    return sel;
}

Selection
sampleRandomSelection(const EGraph& graph, util::Rng& rng)
{
    std::vector<double> costs(graph.numNodes());
    for (double& c : costs)
        c = rng.uniform(0.01, 1.0);
    return bottomUpWithCosts(graph, costs);
}

std::vector<Selection>
sampleRandomSelections(const EGraph& graph, std::size_t count, util::Rng& rng)
{
    obs::Span span("random_sample.batch", "extraction");
    std::vector<Selection> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(sampleRandomSelection(graph, rng));
    return out;
}

} // namespace smoothe::extract
