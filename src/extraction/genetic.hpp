/**
 * @file
 * Genetic-algorithm extractor (the paper's meta-heuristic baseline for
 * non-linear cost models, Section 5.5).
 *
 * Uses a random-key encoding: a genome is one weight per e-node, decoded
 * into a valid extraction by the bottom-up fixed point (always complete
 * and acyclic, so no repair step is needed). Fitness is an arbitrary
 * black-box cost over discrete selections, which is exactly why the paper
 * includes a GA: unlike ILP/heuristics it can score non-linear models —
 * but it explores large spaces poorly and gets stuck in local minima.
 */

#ifndef SMOOTHE_EXTRACTION_GENETIC_HPP
#define SMOOTHE_EXTRACTION_GENETIC_HPP

#include <functional>

#include "extraction/extractor.hpp"

namespace smoothe::extract {

/** Black-box discrete cost: lower is better. */
using DiscreteCost =
    std::function<double(const eg::EGraph&, const Selection&)>;

/** Tunables for the genetic extractor. */
struct GeneticConfig
{
    std::size_t populationSize = 48;
    std::size_t generations = 60;
    std::size_t tournamentSize = 3;
    double crossoverRate = 0.9;
    double mutationRate = 0.02;  ///< per-gene reset probability
    std::size_t eliteCount = 2;  ///< genomes copied unchanged each generation
};

/** Single-objective GA over random-key genomes. */
class GeneticExtractor : public Extractor
{
  public:
    GeneticExtractor() = default;
    explicit GeneticExtractor(GeneticConfig config) : config_(config) {}

    std::string name() const override { return "genetic"; }

    /** Arbitrary discrete objective (e.g. trained MLP cost). */
    ExtractionResult extractWithCost(const eg::EGraph& graph,
                                     const DiscreteCost& cost,
                                     const ExtractOptions& options);

  protected:
    /** Linear objective (graph per-node costs). */
    ExtractionResult extractImpl(const eg::EGraph& graph,
                                 const ExtractOptions& options) override;

  private:
    GeneticConfig config_;
};

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_GENETIC_HPP
