/**
 * @file
 * Common interface for all e-graph extractors (SmoothE, ILP, heuristics,
 * genetic) plus the shared result type and anytime trace.
 */

#ifndef SMOOTHE_EXTRACTION_EXTRACTOR_HPP
#define SMOOTHE_EXTRACTION_EXTRACTOR_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "egraph/delta.hpp"
#include "egraph/egraph.hpp"
#include "extraction/solution.hpp"

namespace smoothe::extract {

/** Terminal status of an extraction run. */
enum class SolveStatus {
    Optimal,    ///< proven optimal (ILP with closed gap)
    Feasible,   ///< valid solution, optimality unknown
    Infeasible, ///< no valid extraction exists
    Failed,     ///< solver could not produce a valid solution in time
};

/** Returns a short human-readable name for a status. */
const char* toString(SolveStatus status);

/** One point on the anytime cost-vs-time curve (Figure 4). */
struct AnytimePoint
{
    double seconds = 0.0;
    double cost = 0.0;
};

/** Outcome of one extractor invocation. */
struct ExtractionResult
{
    SolveStatus status = SolveStatus::Failed;
    Selection selection;
    /** DAG cost under the graph's linear costs (infinity when failed). */
    double cost = 0.0;
    /** Wall-clock seconds spent. */
    double seconds = 0.0;
    /** Incumbent improvements over time, for anytime plots. */
    std::vector<AnytimePoint> trace;
    /** Extractor-specific diagnostics. */
    std::string note;

    bool ok() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }
};

/** Options shared by all extractors. */
struct ExtractOptions
{
    /** Wall-clock budget in seconds; <= 0 means unlimited. */
    double timeLimitSeconds = 0.0;
    /** Base random seed for stochastic extractors. */
    std::uint64_t seed = 1;
    /** Record the anytime trace (costs a little bookkeeping). */
    bool recordTrace = false;
};

class Extractor;

/** Base class for extractor-specific state carried across epochs. */
struct IncrementalBlob
{
    virtual ~IncrementalBlob() = default;
};

/**
 * Opaque cross-epoch state for incremental extraction. One state tracks
 * one evolving e-graph under one extractor: the base class records which
 * extractor owns it and the node/class counts of the last graph it saw,
 * and extractIncremental() rejects a state reused across different
 * e-graph lineages (see the `stale-delta-state` lint rule). Call reset()
 * before pointing an existing state at a fresh graph.
 */
class IncrementalState
{
  public:
    IncrementalState() = default;

    /** True when no previous extraction has been recorded. */
    bool empty() const { return blob_ == nullptr; }

    /** Forgets the previous extraction; the next call starts cold. */
    void reset()
    {
        blob_.reset();
        owner_ = nullptr;
        epoch_ = 0;
        graphNodes_ = 0;
        graphClasses_ = 0;
    }

    /** Number of extractions recorded into this state. */
    std::size_t epoch() const { return epoch_; }

  private:
    friend class Extractor;

    std::unique_ptr<IncrementalBlob> blob_;
    const Extractor* owner_ = nullptr;
    std::size_t epoch_ = 0;
    std::size_t graphNodes_ = 0;
    std::size_t graphClasses_ = 0;
};

/**
 * Abstract extractor. Implementations keep no hidden state across
 * calls: everything carried between epochs lives in the caller-owned
 * IncrementalState, so plain extract() stays reproducible and
 * side-effect free.
 */
class Extractor
{
  public:
    virtual ~Extractor() = default;

    /** Human-readable extractor name for tables. */
    virtual std::string name() const = 0;

    /**
     * Extracts a valid solution from a finalized e-graph, minimizing the
     * graph's per-node linear costs (non-linear objectives are handled by
     * extractor-specific entry points). In invariant builds
     * (SMOOTHE_DEBUG_INVARIANTS or Debug) the result is certified with
     * extraction::validateResult() before it reaches the caller, for
     * every extractor uniformly.
     */
    ExtractionResult extract(const eg::EGraph& graph,
                             const ExtractOptions& options);

    /**
     * True when extractIncremental() actually reuses previous work;
     * extractors that leave the default fall back to a from-scratch
     * extractImpl() on every epoch (still valid, just not faster).
     */
    virtual bool supportsIncremental() const { return false; }

    /**
     * Re-extracts after the e-graph grew. `delta` must relate the graph
     * `state` last saw to `graph` (eqsat::MutEGraph::exportIncremental
     * produces exactly that pairing); on a fresh or reset() state the
     * previous extraction is forgotten and this epoch runs cold. The
     * call aborts (SMOOTHE_CHECK) when `state` was produced by a
     * different extractor or against a different e-graph lineage.
     */
    ExtractionResult extractIncremental(const eg::EGraph& graph,
                                        const eg::GraphDelta& delta,
                                        IncrementalState& state,
                                        const ExtractOptions& options);

  protected:
    /** The extractor-specific search behind extract(). */
    virtual ExtractionResult extractImpl(const eg::EGraph& graph,
                                         const ExtractOptions& options) = 0;

    /**
     * The extractor-specific incremental search behind
     * extractIncremental(). The default ignores the delta and state and
     * re-runs extractImpl() from scratch. Overrides read their carried
     * state with blobOf<T>() — null on the first epoch or after a
     * reset() — and persist the new state with storeBlob<T>().
     */
    virtual ExtractionResult
    extractIncrementalImpl(const eg::EGraph& graph,
                           const eg::GraphDelta& delta,
                           IncrementalState& state,
                           const ExtractOptions& options);

    /** Typed view of the carried state; null when absent or foreign. */
    template <typename T>
    static T*
    blobOf(IncrementalState& state)
    {
        return dynamic_cast<T*>(state.blob_.get());
    }

    /** Replaces the carried state with a fresh T, returning it. */
    template <typename T, typename... Args>
    static T&
    storeBlob(IncrementalState& state, Args&&... args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *owned;
        state.blob_ = std::move(owned);
        return ref;
    }
};

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_EXTRACTOR_HPP
