/**
 * @file
 * Common interface for all e-graph extractors (SmoothE, ILP, heuristics,
 * genetic) plus the shared result type and anytime trace.
 */

#ifndef SMOOTHE_EXTRACTION_EXTRACTOR_HPP
#define SMOOTHE_EXTRACTION_EXTRACTOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "egraph/egraph.hpp"
#include "extraction/solution.hpp"

namespace smoothe::extract {

/** Terminal status of an extraction run. */
enum class SolveStatus {
    Optimal,    ///< proven optimal (ILP with closed gap)
    Feasible,   ///< valid solution, optimality unknown
    Infeasible, ///< no valid extraction exists
    Failed,     ///< solver could not produce a valid solution in time
};

/** Returns a short human-readable name for a status. */
const char* toString(SolveStatus status);

/** One point on the anytime cost-vs-time curve (Figure 4). */
struct AnytimePoint
{
    double seconds = 0.0;
    double cost = 0.0;
};

/** Outcome of one extractor invocation. */
struct ExtractionResult
{
    SolveStatus status = SolveStatus::Failed;
    Selection selection;
    /** DAG cost under the graph's linear costs (infinity when failed). */
    double cost = 0.0;
    /** Wall-clock seconds spent. */
    double seconds = 0.0;
    /** Incumbent improvements over time, for anytime plots. */
    std::vector<AnytimePoint> trace;
    /** Extractor-specific diagnostics. */
    std::string note;

    bool ok() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }
};

/** Options shared by all extractors. */
struct ExtractOptions
{
    /** Wall-clock budget in seconds; <= 0 means unlimited. */
    double timeLimitSeconds = 0.0;
    /** Base random seed for stochastic extractors. */
    std::uint64_t seed = 1;
    /** Record the anytime trace (costs a little bookkeeping). */
    bool recordTrace = false;
};

/** Abstract extractor. Implementations must be stateless across calls. */
class Extractor
{
  public:
    virtual ~Extractor() = default;

    /** Human-readable extractor name for tables. */
    virtual std::string name() const = 0;

    /**
     * Extracts a valid solution from a finalized e-graph, minimizing the
     * graph's per-node linear costs (non-linear objectives are handled by
     * extractor-specific entry points). In invariant builds
     * (SMOOTHE_DEBUG_INVARIANTS or Debug) the result is certified with
     * extraction::validateResult() before it reaches the caller, for
     * every extractor uniformly.
     */
    ExtractionResult extract(const eg::EGraph& graph,
                             const ExtractOptions& options);

  protected:
    /** The extractor-specific search behind extract(). */
    virtual ExtractionResult extractImpl(const eg::EGraph& graph,
                                         const ExtractOptions& options) = 0;
};

} // namespace smoothe::extract

#endif // SMOOTHE_EXTRACTION_EXTRACTOR_HPP
