/**
 * @file
 * A cross-file index for smoothe_lint's project-level rules.
 *
 * Single-file rules see one token stream; contract rules like
 * avx2-parity-coverage ("every kernel in kernels_avx2.cpp is exercised
 * by tests/test_simd.cpp") need facts from several files at once. The
 * linter's first pass lexes and scope-parses every file and feeds the
 * results here; the second pass hands the finished model to the rules.
 *
 * The model stores *facts*, not token streams: function definitions
 * (with anonymous-namespace internality), every identifier referenced,
 * `avx2::symbol` references mapped to their enclosing dispatcher
 * function, and string literals (which is how profiler kernel-slot
 * names appear in src/autodiff/program.cpp and src/tensor). Files are
 * addressed by repo-relative path suffix so tests can build synthetic
 * models with fake paths.
 */

#ifndef SMOOTHE_LINT_PROJECT_MODEL_HPP
#define SMOOTHE_LINT_PROJECT_MODEL_HPP

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/scope_tree.hpp"

namespace smoothe::lint {

/** One function definition found by the scope parser. */
struct FunctionDef
{
    std::string name; ///< as written, e.g. "spmvRows8" or "Csr::spmv"
    int line = 0;
    /** True when any enclosing namespace is anonymous — internal
     *  helpers are exempt from cross-file coverage contracts. */
    bool internal = false;
};

/** Facts extracted from one file. */
struct FileFacts
{
    std::string path; ///< repo-relative, forward slashes
    std::vector<FunctionDef> functions;
    std::set<std::string> identifiers; ///< every identifier token text
    /** String literals (text, line) — profiler slot names live here. */
    std::vector<std::pair<std::string, int>> stringLiterals;
    /**
     * avx2::symbol references outside the defining file, keyed by
     * symbol, valued by the unqualified names of the enclosing
     * functions (the runtime dispatchers).
     */
    std::map<std::string, std::set<std::string>> avx2Refs;
    /**
     * Identifiers referenced inside each named function's body, keyed
     * by the unqualified function name. Feeds callersOf(), which lets
     * coverage rules walk call chains (kernel → internal helper →
     * public entry point → test).
     */
    std::map<std::string, std::set<std::string>> functionRefs;
};

class ProjectModel
{
  public:
    /** Indexes one lexed + scope-parsed file. */
    void addFile(const std::string& path, const LexedFile& lexed,
                 const ScopeTree& scopes);

    /** The facts for the first file whose path ends with `suffix`, or
     *  nullptr. */
    const FileFacts* file(const std::string& suffix) const;

    /** True when the file at `suffix` references identifier `name`. */
    bool identifierIn(const std::string& suffix,
                      const std::string& name) const;

    /**
     * Unqualified names of every function, in any indexed file except
     * ones matching `excludeSuffix`, whose body references
     * `avx2::symbol` — i.e. the dispatchers a test can reach the
     * kernel through.
     */
    std::vector<std::string>
    dispatchersOf(const std::string& symbol,
                  const std::string& excludeSuffix) const;

    /**
     * Unqualified names of every function, in any indexed file except
     * ones matching `excludeSuffix`, whose body references the
     * identifier `name`. Over-approximate (token match, not call
     * resolution) — right for reachability questions.
     */
    std::vector<std::string>
    callersOf(const std::string& name,
              const std::string& excludeSuffix) const;

    /** All string literals from files whose path contains `pathPart`
     *  (profiler slot names when pointed at program.cpp/kernels). */
    std::set<std::string> stringLiterals(const std::string& pathPart) const;

    const std::vector<FileFacts>& files() const { return files_; }

  private:
    std::vector<FileFacts> files_;
};

/** The unqualified last component of a `::`-qualified name. */
std::string unqualify(const std::string& name);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_PROJECT_MODEL_HPP
