#include "lint/project_model.hpp"

#include <algorithm>

namespace smoothe::lint {

namespace {

bool
endsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** True when `scope` or any ancestor is an anonymous namespace. */
bool
inAnonymousNamespace(const ScopeTree& scopes, int scope)
{
    for (int s = scope; s >= 0; s = scopes.scopes[s].parent) {
        if (scopes.scopes[s].kind == ScopeKind::Namespace &&
            scopes.scopes[s].name.empty())
            return true;
    }
    return false;
}

} // namespace

std::string
unqualify(const std::string& name)
{
    const std::size_t at = name.rfind("::");
    return at == std::string::npos ? name : name.substr(at + 2);
}

void
ProjectModel::addFile(const std::string& path, const LexedFile& lexed,
                      const ScopeTree& scopes)
{
    FileFacts facts;
    facts.path = path;

    for (std::size_t s = 0; s < scopes.scopes.size(); ++s) {
        const Scope& scope = scopes.scopes[s];
        if (scope.kind != ScopeKind::Function || scope.name.empty())
            continue;
        FunctionDef def;
        def.name = scope.name;
        def.line = scope.beginLine;
        def.internal =
            inAnonymousNamespace(scopes, static_cast<int>(s));
        facts.functions.push_back(std::move(def));

        std::set<std::string>& refs =
            facts.functionRefs[unqualify(scope.name)];
        const std::size_t end =
            std::min(scope.endTok, lexed.tokens.size());
        for (std::size_t i = scope.beginTok; i < end; ++i) {
            if (lexed.tokens[i].kind == TokenKind::Identifier)
                refs.insert(lexed.tokens[i].text);
        }
    }

    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind == TokenKind::StringLiteral) {
            if (!tok.text.empty())
                facts.stringLiterals.emplace_back(tok.text, tok.line);
            continue;
        }
        if (tok.kind != TokenKind::Identifier)
            continue;
        facts.identifiers.insert(tok.text);
        // avx2::symbol — attribute the reference to the nearest
        // enclosing *named* function (dispatch bodies are usually
        // lambdas handed to parallelChunks; the tests call the named
        // dispatcher around them).
        if (tok.text == "avx2" && i + 2 < tokens.size() &&
            tokens[i + 1].kind == TokenKind::Punct &&
            tokens[i + 1].text == "::" &&
            tokens[i + 2].kind == TokenKind::Identifier) {
            for (int s = scopes.scopeAt(i); s >= 0;
                 s = scopes.scopes[s].parent) {
                const Scope& scope = scopes.scopes[s];
                if (scope.kind == ScopeKind::Function &&
                    !scope.name.empty()) {
                    facts.avx2Refs[tokens[i + 2].text].insert(
                        unqualify(scope.name));
                    break;
                }
            }
        }
    }

    files_.push_back(std::move(facts));
}

const FileFacts*
ProjectModel::file(const std::string& suffix) const
{
    for (const FileFacts& facts : files_) {
        if (endsWith(facts.path, suffix))
            return &facts;
    }
    return nullptr;
}

bool
ProjectModel::identifierIn(const std::string& suffix,
                           const std::string& name) const
{
    const FileFacts* facts = file(suffix);
    return facts != nullptr && facts->identifiers.count(name) > 0;
}

std::vector<std::string>
ProjectModel::dispatchersOf(const std::string& symbol,
                            const std::string& excludeSuffix) const
{
    std::vector<std::string> out;
    for (const FileFacts& facts : files_) {
        if (endsWith(facts.path, excludeSuffix))
            continue;
        const auto it = facts.avx2Refs.find(symbol);
        if (it == facts.avx2Refs.end())
            continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<std::string>
ProjectModel::callersOf(const std::string& name,
                        const std::string& excludeSuffix) const
{
    std::vector<std::string> out;
    for (const FileFacts& facts : files_) {
        if (endsWith(facts.path, excludeSuffix))
            continue;
        for (const auto& [fn, refs] : facts.functionRefs) {
            if (fn != name && refs.count(name) > 0)
                out.push_back(fn);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::set<std::string>
ProjectModel::stringLiterals(const std::string& pathPart) const
{
    std::set<std::string> out;
    for (const FileFacts& facts : files_) {
        if (facts.path.find(pathPart) == std::string::npos)
            continue;
        for (const auto& [text, line] : facts.stringLiterals)
            out.insert(text);
    }
    return out;
}

} // namespace smoothe::lint
