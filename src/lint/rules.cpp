#include "lint/rules.hpp"

#include <algorithm>

namespace smoothe::lint {

namespace {

/** The previous token, or nullptr at the start of the file. */
const Token*
prev(const std::vector<Token>& tokens, std::size_t i)
{
    return i == 0 ? nullptr : &tokens[i - 1];
}

bool
nextIsOpenParen(const std::vector<Token>& tokens, std::size_t i)
{
    return i + 1 < tokens.size() && tokens[i + 1].kind == TokenKind::Punct &&
           tokens[i + 1].text == "(";
}

bool
isText(const Token* token, const char* text)
{
    return token != nullptr && token->text == text;
}

void
rawNewDelete(const FileContext&, const LexedFile& lexed,
             std::vector<Finding>& out)
{
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        const Token* before = prev(tokens, i);
        if (tok.text == "new") {
            // `operator new` overloads/calls are the allocator
            // machinery itself, not a raw allocation.
            if (isText(before, "operator"))
                continue;
            out.push_back({"raw-new", "", tok.line,
                           "raw `new` — use a container, std::unique_ptr, "
                           "or the tensor Arena"});
        } else if (tok.text == "delete") {
            if (isText(before, "operator") || isText(before, "="))
                continue;
            out.push_back({"raw-delete", "", tok.line,
                           "raw `delete` — ownership belongs in a "
                           "container or smart pointer"});
        }
    }
}

void
stdThread(const FileContext& ctx, const LexedFile& lexed,
          std::vector<Finding>& out)
{
    if (ctx.path.find("util/thread_pool") != std::string::npos)
        return;
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text == "std" && tokens[i + 1].text == "::" &&
            tokens[i + 2].text == "thread" &&
            tokens[i].kind == TokenKind::Identifier) {
            out.push_back({"std-thread", "", tokens[i].line,
                           "std::thread — run work on util::ThreadPool "
                           "so --threads and shutdown stay centralized"});
        }
    }
}

void
noRand(const FileContext& ctx, const LexedFile& lexed,
       std::vector<Finding>& out)
{
    if (!ctx.isLibrary)
        return;
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokenKind::Identifier ||
            (tok.text != "rand" && tok.text != "srand" &&
             tok.text != "time"))
            continue;
        if (!nextIsOpenParen(tokens, i))
            continue;
        const Token* before = prev(tokens, i);
        // Member calls like timer.time() are someone else's API.
        if (isText(before, ".") || isText(before, "->"))
            continue;
        // Qualified names are only flagged for std:: itself.
        if (isText(before, "::") &&
            !(i >= 2 && tokens[i - 2].text == "std"))
            continue;
        out.push_back({"no-rand", "", tok.line,
                       "`" + tok.text +
                           "()` — library code must draw from util::Rng "
                           "so runs are reproducible"});
    }
}

void
noAssert(const FileContext&, const LexedFile& lexed,
         std::vector<Finding>& out)
{
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind == TokenKind::HeaderName &&
            (tok.text == "<cassert>" || tok.text == "<assert.h>")) {
            out.push_back({"no-assert", "", tok.line,
                           "include of " + tok.text +
                               " — use check/contracts.hpp"});
            continue;
        }
        if (tok.kind == TokenKind::Identifier && tok.text == "assert" &&
            nextIsOpenParen(tokens, i) &&
            !isText(prev(tokens, i), ".") &&
            !isText(prev(tokens, i), "->") &&
            !isText(prev(tokens, i), "::")) {
            out.push_back({"no-assert", "", tok.line,
                           "assert() vanishes under NDEBUG — use "
                           "SMOOTHE_ASSERT / SMOOTHE_CHECK / "
                           "SMOOTHE_DCHECK"});
        }
    }
}

void
iostreamHeader(const FileContext& ctx, const LexedFile& lexed,
               std::vector<Finding>& out)
{
    if (!ctx.isHeader || !ctx.isLibrary)
        return;
    for (const Token& tok : lexed.tokens) {
        if (tok.kind == TokenKind::HeaderName && tok.text == "<iostream>") {
            out.push_back({"iostream-header", "", tok.line,
                           "<iostream> in a library header — use <iosfwd> "
                           "in the header and <ostream>/<istream> in the "
                           ".cpp"});
        }
    }
}

void
includeGuard(const FileContext& ctx, const LexedFile& lexed,
             std::vector<Finding>& out)
{
    if (!ctx.isHeader)
        return;
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::Preprocessor &&
            tokens[i].text == "pragma" && tokens[i + 1].text == "once")
            return;
    }
    // Expect the classic pattern: the first two directives are
    // `#ifndef GUARD` / `#define GUARD` with a SMOOTHE_ name.
    std::string guard;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Preprocessor)
            continue;
        if (tokens[i].text == "ifndef" && i + 1 < tokens.size() &&
            guard.empty()) {
            guard = tokens[i + 1].text;
            continue;
        }
        if (tokens[i].text == "define" && i + 1 < tokens.size() &&
            !guard.empty() && tokens[i + 1].text == guard) {
            if (ctx.isLibrary && guard.rfind("SMOOTHE_", 0) != 0) {
                out.push_back({"include-guard", "", tokens[i].line,
                               "include guard `" + guard +
                                   "` must start with SMOOTHE_"});
            }
            return;
        }
        break; // some other directive first, or a mismatched #define
    }
    out.push_back({"include-guard", "", 1,
                   "header lacks an include guard (#ifndef SMOOTHE_... / "
                   "#define, or #pragma once)"});
}

void
tapeInLoop(const FileContext& ctx, const LexedFile& lexed,
           std::vector<Finding>& out)
{
    if (!ctx.isLibrary)
        return;
    const auto& tokens = lexed.tokens;
    int braceDepth = 0;
    int parenDepth = 0;
    // Brace depths of the loop bodies currently open.
    std::vector<int> loopBodies;
    // A for/while/do was seen; the next `{` outside parens opens its body.
    bool pendingLoop = false;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind == TokenKind::Punct) {
            if (tok.text == "(") {
                ++parenDepth;
            } else if (tok.text == ")") {
                if (parenDepth > 0)
                    --parenDepth;
            } else if (tok.text == "{") {
                ++braceDepth;
                if (pendingLoop && parenDepth == 0) {
                    loopBodies.push_back(braceDepth);
                    pendingLoop = false;
                }
            } else if (tok.text == "}") {
                if (!loopBodies.empty() && loopBodies.back() == braceDepth)
                    loopBodies.pop_back();
                if (braceDepth > 0)
                    --braceDepth;
            } else if (tok.text == ";" && parenDepth == 0) {
                // Brace-less body (`for (...) stmt;`) or the trailing
                // `while (...)` of a do-while: no body to track.
                pendingLoop = false;
            }
            continue;
        }
        if (tok.kind != TokenKind::Identifier)
            continue;
        if (tok.text == "for" || tok.text == "while" || tok.text == "do") {
            pendingLoop = true;
            continue;
        }
        if (tok.text != "Tape" || loopBodies.empty())
            continue;
        // Only declarations that construct: `Tape t(...)`, a temporary
        // `Tape(...)`, or a wrapper like `optional<Tape>`. References,
        // pointers, and qualified mentions (`Tape::`) don't allocate.
        const Token* after =
            i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
        const bool constructs =
            after != nullptr &&
            (after->kind == TokenKind::Identifier ||
             (after->kind == TokenKind::Punct &&
              (after->text == "(" || after->text == ">")));
        if (!constructs)
            continue;
        const Token* before = prev(tokens, i);
        if (isText(before, "class") || isText(before, "struct") ||
            isText(before, "enum"))
            continue;
        out.push_back({"tape-in-loop", "", tok.line,
                       "Tape constructed inside a loop — record once and "
                       "replay through ad::Program (suppress if the eager "
                       "path is intentional)"});
    }
}

using RuleFn = void (*)(const FileContext&, const LexedFile&,
                        std::vector<Finding>&);

struct Rule
{
    RuleInfo info;
    RuleFn fn;
};

const std::vector<Rule>&
rules()
{
    static const std::vector<Rule> all = {
        {{"raw-new", "no raw new outside the allocator machinery"},
         &rawNewDelete},
        {{"raw-delete", "no raw delete (covered by raw-new's walker)"},
         nullptr},
        {{"std-thread", "threads only via util::ThreadPool"}, &stdThread},
        {{"no-rand", "library randomness/time only via util::Rng"},
         &noRand},
        {{"no-assert", "contracts instead of assert()"}, &noAssert},
        {{"iostream-header", "no <iostream> in library headers"},
         &iostreamHeader},
        {{"include-guard", "SMOOTHE_-prefixed guards or pragma once"},
         &includeGuard},
        {{"tape-in-loop",
          "no per-iteration Tape construction — compile once, replay"},
         &tapeInLoop},
    };
    return all;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> out;
        for (const Rule& rule : rules())
            out.push_back(rule.info);
        return out;
    }();
    return catalog;
}

std::vector<Finding>
runRules(const FileContext& ctx, const LexedFile& lexed)
{
    std::vector<Finding> all;
    for (const Rule& rule : rules()) {
        if (rule.fn != nullptr)
            rule.fn(ctx, lexed, all);
    }
    std::vector<Finding> kept;
    for (Finding& finding : all) {
        if (lexed.suppressed(finding.rule, finding.line))
            continue;
        finding.path = ctx.path;
        kept.push_back(std::move(finding));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return kept;
}

} // namespace smoothe::lint
