#include "lint/rules.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace smoothe::lint {

namespace {

/** The previous token, or nullptr at the start of the file. */
const Token*
prev(const std::vector<Token>& tokens, std::size_t i)
{
    return i == 0 ? nullptr : &tokens[i - 1];
}

bool
nextIsOpenParen(const std::vector<Token>& tokens, std::size_t i)
{
    return i + 1 < tokens.size() && tokens[i + 1].kind == TokenKind::Punct &&
           tokens[i + 1].text == "(";
}

bool
isText(const Token* token, const char* text)
{
    return token != nullptr && token->text == text;
}

bool
isPunctAt(const std::vector<Token>& tokens, std::size_t i,
          const char* text)
{
    return i < tokens.size() && tokens[i].kind == TokenKind::Punct &&
           tokens[i].text == text;
}

bool
startsWith(const std::string& text, const char* head)
{
    return text.rfind(head, 0) == 0;
}

bool
contains(const std::string& text, const char* needle)
{
    return text.find(needle) != std::string::npos;
}

void
rawNewDelete(const RuleInputs& in, std::vector<Finding>& out)
{
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        const Token* before = prev(tokens, i);
        if (tok.text == "new") {
            // `operator new` overloads/calls are the allocator
            // machinery itself, not a raw allocation.
            if (isText(before, "operator"))
                continue;
            out.push_back({"raw-new", "", tok.line,
                           "raw `new` — use a container, std::unique_ptr, "
                           "or the tensor Arena"});
        } else if (tok.text == "delete") {
            if (isText(before, "operator") || isText(before, "="))
                continue;
            out.push_back({"raw-delete", "", tok.line,
                           "raw `delete` — ownership belongs in a "
                           "container or smart pointer"});
        }
    }
}

void
stdThread(const RuleInputs& in, std::vector<Finding>& out)
{
    if (in.ctx.path.find("util/thread_pool") != std::string::npos)
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text == "std" && tokens[i + 1].text == "::" &&
            tokens[i + 2].text == "thread" &&
            tokens[i].kind == TokenKind::Identifier) {
            out.push_back({"std-thread", "", tokens[i].line,
                           "std::thread — run work on util::ThreadPool "
                           "so --threads and shutdown stay centralized"});
        }
    }
}

void
noRand(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isLibrary)
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokenKind::Identifier ||
            (tok.text != "rand" && tok.text != "srand" &&
             tok.text != "time"))
            continue;
        if (!nextIsOpenParen(tokens, i))
            continue;
        const Token* before = prev(tokens, i);
        // Member calls like timer.time() are someone else's API.
        if (isText(before, ".") || isText(before, "->"))
            continue;
        // Qualified names are only flagged for std:: itself.
        if (isText(before, "::") &&
            !(i >= 2 && tokens[i - 2].text == "std"))
            continue;
        out.push_back({"no-rand", "", tok.line,
                       "`" + tok.text +
                           "()` — library code must draw from util::Rng "
                           "so runs are reproducible"});
    }
}

void
noAssert(const RuleInputs& in, std::vector<Finding>& out)
{
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind == TokenKind::HeaderName &&
            (tok.text == "<cassert>" || tok.text == "<assert.h>")) {
            out.push_back({"no-assert", "", tok.line,
                           "include of " + tok.text +
                               " — use check/contracts.hpp"});
            continue;
        }
        if (tok.kind == TokenKind::Identifier && tok.text == "assert" &&
            nextIsOpenParen(tokens, i) &&
            !isText(prev(tokens, i), ".") &&
            !isText(prev(tokens, i), "->") &&
            !isText(prev(tokens, i), "::")) {
            out.push_back({"no-assert", "", tok.line,
                           "assert() vanishes under NDEBUG — use "
                           "SMOOTHE_ASSERT / SMOOTHE_CHECK / "
                           "SMOOTHE_DCHECK"});
        }
    }
}

void
iostreamHeader(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isHeader || !in.ctx.isLibrary)
        return;
    for (const Token& tok : in.lexed.tokens) {
        if (tok.kind == TokenKind::HeaderName && tok.text == "<iostream>") {
            out.push_back({"iostream-header", "", tok.line,
                           "<iostream> in a library header — use <iosfwd> "
                           "in the header and <ostream>/<istream> in the "
                           ".cpp"});
        }
    }
}

void
includeGuard(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isHeader)
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::Preprocessor &&
            tokens[i].text == "pragma" && tokens[i + 1].text == "once")
            return;
    }
    // Expect the classic pattern: the first two directives are
    // `#ifndef GUARD` / `#define GUARD` with a SMOOTHE_ name.
    std::string guard;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Preprocessor)
            continue;
        if (tokens[i].text == "ifndef" && i + 1 < tokens.size() &&
            guard.empty()) {
            guard = tokens[i + 1].text;
            continue;
        }
        if (tokens[i].text == "define" && i + 1 < tokens.size() &&
            !guard.empty() && tokens[i + 1].text == guard) {
            if (in.ctx.isLibrary && guard.rfind("SMOOTHE_", 0) != 0) {
                out.push_back({"include-guard", "", tokens[i].line,
                               "include guard `" + guard +
                                   "` must start with SMOOTHE_"});
            }
            return;
        }
        break; // some other directive first, or a mismatched #define
    }
    out.push_back({"include-guard", "", 1,
                   "header lacks an include guard (#ifndef SMOOTHE_... / "
                   "#define, or #pragma once)"});
}

/**
 * tape-in-loop, scope-aware since v2. Flags constructions of ad::Tape
 * inside a Loop scope in library code: `Tape t(...)`, a temporary
 * `Tape(...)`, or an owning wrapper like std::optional<Tape>. The
 * scope tree kills v1's false-positive class: `span<Tape>`,
 * `std::is_same_v<T, Tape>`, and any mention outside a loop no longer
 * fire.
 */
void
tapeInLoop(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isLibrary)
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind != TokenKind::Identifier || tok.text != "Tape")
            continue;
        const int scope = in.scopes.scopeAt(i);
        if (in.scopes.scopes[scope].loopDepth == 0)
            continue;
        const Token* before = prev(tokens, i);
        // Qualified mentions (`Tape::replay`), references, pointers,
        // and type definitions don't allocate.
        if (isPunctAt(tokens, i + 1, "::") ||
            isPunctAt(tokens, i + 1, "&") || isPunctAt(tokens, i + 1, "*"))
            continue;
        if (isText(before, "class") || isText(before, "struct") ||
            isText(before, "enum"))
            continue;
        bool constructs = false;
        if (i + 1 < tokens.size() &&
            (tokens[i + 1].kind == TokenKind::Identifier ||
             isPunctAt(tokens, i + 1, "(") || isPunctAt(tokens, i + 1, "{")))
            constructs = true; // `Tape t...` or a temporary
        if (isPunctAt(tokens, i + 1, ">") && i >= 2 &&
            isPunctAt(tokens, i - 1, "<")) {
            // `Wrapper<Tape>` constructs only for owning wrappers.
            static const char* const kOwning[] = {
                "optional",    "unique_ptr", "shared_ptr",
                "make_unique", "make_shared", "vector", "deque",
            };
            for (const char* owner : kOwning) {
                if (tokens[i - 2].kind == TokenKind::Identifier &&
                    tokens[i - 2].text == owner)
                    constructs = true;
            }
        }
        if (!constructs)
            continue;
        out.push_back({"tape-in-loop", "", tok.line,
                       "Tape constructed inside a loop — record once and "
                       "replay through ad::Program (suppress if the eager "
                       "path is intentional)"});
    }
}

// ---------------------------------------------------------------------
// The v2 concurrency & determinism pack.
// ---------------------------------------------------------------------

bool
isParallelEntryPoint(const std::string& name)
{
    return name == "parallelFor" || name == "parallelForChunks" ||
           name == "parallelChunks" || name == "parallel_for" ||
           name == "parallelForEach";
}

/**
 * Token spans `(argBegin, argEnd)` of the argument lists of calls to
 * the thread-pool entry points — lambdas whose body starts inside one
 * of these spans run concurrently.
 */
std::vector<std::pair<std::size_t, std::size_t>>
parallelCallSpans(const LexedFile& lexed)
{
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    const auto& tokens = lexed.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            !isParallelEntryPoint(tokens[i].text) ||
            !isPunctAt(tokens, i + 1, "("))
            continue;
        int depth = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            if (isPunctAt(tokens, j, "(")) {
                ++depth;
            } else if (isPunctAt(tokens, j, ")")) {
                if (--depth == 0) {
                    spans.emplace_back(i + 2, j);
                    break;
                }
            }
        }
    }
    return spans;
}

/** True when `scope` equals or descends from `ancestor`. */
bool
withinScope(const ScopeTree& scopes, int scope, int ancestor)
{
    for (int s = scope; s >= 0; s = scopes.scopes[s].parent) {
        if (s == ancestor)
            return true;
    }
    return false;
}

/** How the lambda at `lambdaScope` captures `name`, resolved against
 *  the declaration it would bind to. */
struct CaptureBinding
{
    bool byRef = false;
    const Declaration* decl = nullptr; ///< the captured local, if known
};

std::optional<CaptureBinding>
resolveCapture(const ScopeTree& scopes, int lambdaScope,
               const std::string& name)
{
    const Scope& lambda = scopes.scopes[lambdaScope];
    bool defaultRef = false;
    bool defaultCopy = false;
    for (const Capture& cap : lambda.captures) {
        if (cap.isDefault) {
            (cap.byRef ? defaultRef : defaultCopy) = true;
            continue;
        }
        if (cap.name != name)
            continue;
        if (cap.isInit)
            return std::nullopt; // init capture owns its own copy
        CaptureBinding binding;
        binding.byRef = cap.byRef;
        binding.decl = scopes.findLocal(lambda.parent, name);
        return binding;
    }
    if (defaultRef || defaultCopy) {
        const Declaration* decl = scopes.findLocal(lambda.parent, name);
        if (decl == nullptr)
            return std::nullopt; // member/global/type — not a capture
        CaptureBinding binding;
        binding.byRef = defaultRef;
        binding.decl = decl;
        return binding;
    }
    return std::nullopt;
}

bool
typeLooksAtomic(const std::string& typeText)
{
    return contains(typeText, "atomic");
}

bool
typeLooksFloating(const std::string& typeText)
{
    return contains(typeText, "float") || contains(typeText, "double");
}

/** True when any scope inside the lambda declares a lock guard — all
 *  writes in the body are then considered synchronized. */
bool
lambdaHoldsLock(const ScopeTree& scopes, int lambdaScope)
{
    for (std::size_t s = 0; s < scopes.scopes.size(); ++s) {
        if (!withinScope(scopes, static_cast<int>(s), lambdaScope))
            continue;
        for (const Declaration& decl : scopes.scopes[s].locals) {
            if (contains(decl.typeText, "lock_guard") ||
                contains(decl.typeText, "scoped_lock") ||
                contains(decl.typeText, "unique_lock"))
                return true;
        }
    }
    return false;
}

/** The kind of write starting at identifier index i, or none. */
enum class WriteKind { None, Assign, Accumulate, IncDec };

WriteKind
classifyWrite(const std::vector<Token>& tokens, std::size_t i)
{
    // Subscripted writes (`out[chunk] = ...`) are the sanctioned
    // disjoint-indexing idiom; member writes we cannot reason about.
    if (isPunctAt(tokens, i + 1, "["))
        return WriteKind::None;
    const Token* before = prev(tokens, i);
    if (isText(before, ".") || isText(before, "->") ||
        isText(before, "::"))
        return WriteKind::None;
    if (isPunctAt(tokens, i + 1, "=")) {
        // The lexer splits `==` into two tokens: require a lone `=`.
        if (isPunctAt(tokens, i + 2, "="))
            return WriteKind::None;
        return WriteKind::Assign;
    }
    if (i + 2 < tokens.size() && isPunctAt(tokens, i + 2, "=")) {
        const std::string& op = tokens[i + 1].text;
        if (tokens[i + 1].kind == TokenKind::Punct &&
            (op == "+" || op == "-" || op == "*" || op == "/" ||
             op == "|" || op == "&" || op == "^"))
            return WriteKind::Accumulate;
    }
    const bool postInc = isPunctAt(tokens, i + 1, "+") &&
                         isPunctAt(tokens, i + 2, "+");
    const bool postDec = isPunctAt(tokens, i + 1, "-") &&
                         isPunctAt(tokens, i + 2, "-");
    const bool preInc = i >= 2 && isPunctAt(tokens, i - 2, "+") &&
                        isPunctAt(tokens, i - 1, "+");
    const bool preDec = i >= 2 && isPunctAt(tokens, i - 2, "-") &&
                        isPunctAt(tokens, i - 1, "-");
    if (postInc || postDec || preInc || preDec)
        return WriteKind::IncDec;
    return WriteKind::None;
}

/**
 * parallel-capture-race + nondet-reduction: writes to by-ref-captured
 * locals inside lambdas that run on the thread pool.
 */
void
parallelCaptureRules(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isLibrary)
        return;
    const auto spans = parallelCallSpans(in.lexed);
    if (spans.empty())
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t s = 0; s < in.scopes.scopes.size(); ++s) {
        const Scope& lambda = in.scopes.scopes[s];
        if (lambda.kind != ScopeKind::Lambda)
            continue;
        const bool parallel =
            std::any_of(spans.begin(), spans.end(), [&](const auto& span) {
                return span.first <= lambda.beginTok &&
                       lambda.beginTok < span.second;
            });
        if (!parallel)
            continue;
        const int lambdaScope = static_cast<int>(s);
        if (lambdaHoldsLock(in.scopes, lambdaScope))
            continue;
        for (std::size_t i = lambda.beginTok; i < lambda.endTok; ++i) {
            if (tokens[i].kind != TokenKind::Identifier)
                continue;
            const WriteKind write = classifyWrite(tokens, i);
            if (write == WriteKind::None)
                continue;
            const std::string& name = tokens[i].text;
            // A name redeclared inside the lambda is per-invocation.
            const Declaration* inner =
                in.scopes.findLocal(in.scopes.scopeAt(i), name);
            const Declaration* outer =
                in.scopes.findLocal(lambda.parent, name);
            if (inner != nullptr && inner != outer)
                continue;
            const auto binding =
                resolveCapture(in.scopes, lambdaScope, name);
            if (!binding || !binding->byRef)
                continue;
            const std::string typeText =
                binding->decl != nullptr ? binding->decl->typeText : "";
            if (typeLooksAtomic(typeText) || contains(typeText, "mutex"))
                continue;
            if (write == WriteKind::Accumulate &&
                typeLooksFloating(typeText)) {
                out.push_back(
                    {"nondet-reduction", "", tokens[i].line,
                     "floating-point accumulation into by-ref capture `" +
                         name +
                         "` inside a parallel lambda — the sum order "
                         "depends on chunking; reduce into per-chunk "
                         "buffers and combine in index order"});
            } else {
                out.push_back(
                    {"parallel-capture-race", "", tokens[i].line,
                     "write to by-ref capture `" + name +
                         "` inside a parallel lambda without atomics, a "
                         "lock, or per-chunk indexing"});
            }
        }
    }
}

/**
 * fma-in-kernel: the SIMD parity contract (DESIGN.md "Vectorized
 * backend") requires AVX2 results to be bit-identical to the scalar
 * loops, which bans fused multiply-add's single rounding.
 */
void
fmaInKernel(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!startsWith(in.ctx.path, "src/tensor/"))
        return;
    const auto& tokens = in.lexed.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& tok = tokens[i];
        if (tok.kind == TokenKind::Identifier) {
            const bool intrinsic = startsWith(tok.text, "_mm256_fmadd") ||
                                   startsWith(tok.text, "_mm256_fmsub") ||
                                   startsWith(tok.text, "_mm_fmadd") ||
                                   startsWith(tok.text, "_mm_fmsub");
            const bool stdFma =
                (tok.text == "fma" || tok.text == "fmaf") &&
                nextIsOpenParen(tokens, i) &&
                !isText(prev(tokens, i), ".") &&
                !isText(prev(tokens, i), "->");
            if (intrinsic || stdFma) {
                out.push_back({"fma-in-kernel", "", tok.line,
                               "`" + tok.text +
                                   "` fuses the multiply-add rounding — "
                                   "scalar and AVX2 kernels must stay "
                                   "bit-identical, keep mul and add "
                                   "separate"});
                continue;
            }
            if (tok.text == "FP_CONTRACT" && i > 0 &&
                tokens[i - 1].text == "STDC") {
                out.push_back({"fma-in-kernel", "", tok.line,
                               "#pragma STDC FP_CONTRACT can fuse "
                               "multiply-adds — the SIMD parity contract "
                               "requires explicit rounding"});
            }
            continue;
        }
        if (tok.kind == TokenKind::StringLiteral &&
            contains(tok.text, "fast-math")) {
            out.push_back({"fma-in-kernel", "", tok.line,
                           "fast-math in a kernel file breaks the "
                           "bitwise scalar/AVX2 parity contract"});
        }
    }
}

/**
 * relaxed-atomic-handshake: memory_order_relaxed gives no ordering for
 * surrounding non-atomic data, so it is reserved for the allowlisted
 * pure-counter and dispatch-cache patterns.
 */
void
relaxedAtomicHandshake(const RuleInputs& in, std::vector<Finding>& out)
{
    if (!in.ctx.isLibrary)
        return;
    // The allowlist: telemetry counters (src/obs) and the SIMD level
    // cache, whose only guarded datum is the atomic itself.
    static const char* const kAllowedFiles[] = {
        "src/obs/",
        "src/tensor/simd.cpp",
        // Arena used_/peak_ accounting counters — pure counters whose
        // atomics guard only their own value; readers tolerate stale
        // totals by design.
        "src/tensor/tensor.hpp",
    };
    for (const char* allowed : kAllowedFiles) {
        if (contains(in.ctx.path, allowed))
            return;
    }
    for (const Token& tok : in.lexed.tokens) {
        if (tok.kind == TokenKind::Identifier &&
            tok.text == "memory_order_relaxed") {
            out.push_back(
                {"relaxed-atomic-handshake", "", tok.line,
                 "memory_order_relaxed outside the allowlisted "
                 "counter/dispatch-cache patterns — relaxed atomics "
                 "cannot hand non-atomic data between threads; use "
                 "acquire/release or justify with a suppression"});
        }
    }
}

/**
 * avx2-parity-coverage (project-level): every non-internal kernel
 * defined in kernels_avx2.cpp must be reachable from
 * tests/test_simd.cpp — either named there directly or through a
 * dispatcher function that references `avx2::kernel` and is itself
 * called from the test.
 */
void
avx2ParityCoverage(const RuleInputs& in, std::vector<Finding>& out)
{
    constexpr const char* kKernelFile = "kernels_avx2.cpp";
    constexpr const char* kTestFile = "tests/test_simd.cpp";
    if (!contains(in.ctx.path, kKernelFile) || in.model == nullptr)
        return;
    if (in.model->file(kTestFile) == nullptr)
        return; // parity tests not in scope of this run
    for (std::size_t s = 0; s < in.scopes.scopes.size(); ++s) {
        const Scope& scope = in.scopes.scopes[s];
        if (scope.kind != ScopeKind::Function || scope.name.empty())
            continue;
        bool internal = false;
        for (int a = static_cast<int>(s); a >= 0;
             a = in.scopes.scopes[a].parent) {
            if (in.scopes.scopes[a].kind == ScopeKind::Namespace &&
                in.scopes.scopes[a].name.empty())
                internal = true;
        }
        if (internal)
            continue;
        const std::string symbol = unqualify(scope.name);
        bool covered = in.model->identifierIn(kTestFile, symbol);
        // Walk the call chain outward: kernel → dispatcher referencing
        // avx2::kernel → its callers → ... until a name shows up in the
        // SIMD test (spmvRows8 is reached as compressedProduct → spmv).
        std::set<std::string> visited;
        std::vector<std::string> frontier =
            in.model->dispatchersOf(symbol, kKernelFile);
        for (int hop = 0; !covered && hop < 6 && !frontier.empty();
             ++hop) {
            std::vector<std::string> next;
            for (const std::string& fn : frontier) {
                if (!visited.insert(fn).second)
                    continue;
                if (in.model->identifierIn(kTestFile, fn)) {
                    covered = true;
                    break;
                }
                const auto callers = in.model->callersOf(fn, kKernelFile);
                next.insert(next.end(), callers.begin(), callers.end());
            }
            frontier = std::move(next);
        }
        if (covered)
            continue;
        out.push_back(
            {"avx2-parity-coverage", "", scope.beginLine,
             "AVX2 kernel `" + symbol +
                 "` is not reachable from tests/test_simd.cpp — add "
                 "a parity test (directly or via its dispatcher) so "
                 "the bitwise scalar/AVX2 contract stays enforced"});
    }
}

/**
 * stale-delta-state: an extract::IncrementalState tracks ONE evolving
 * e-graph lineage; pointing it at a different graph without an
 * intervening .reset() trips the runtime ownership check (or worse,
 * silently warm-starts from foreign parameters in release builds
 * without SMOOTHE_CHECK coverage in the extractor). Flags
 * `x.extractIncremental(graphA, ...)` / `x.extractIncremental(graphB,
 * ...)` pairs that reuse the same state expression with different
 * first arguments and no `state.reset()` between them, within one
 * function.
 */
void
staleDeltaState(const RuleInputs& in, std::vector<Finding>& out)
{
    const auto& tokens = in.lexed.tokens;

    auto enclosingFunction = [&](std::size_t i) {
        for (int s = in.scopes.scopeAt(i); s >= 0;
             s = in.scopes.scopes[s].parent) {
            if (in.scopes.scopes[s].kind == ScopeKind::Function)
                return s;
        }
        return -1;
    };

    struct LastUse
    {
        std::string graph; ///< spelled first argument
        std::size_t tok = 0;
        int function = -1;
    };
    std::map<std::string, LastUse> lastUse; // state expr -> last call

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            tokens[i].text != "extractIncremental" ||
            !isPunctAt(tokens, i + 1, "("))
            continue;
        // Split the argument list at top-level commas.
        std::vector<std::pair<std::size_t, std::size_t>> argSpans;
        int depth = 0;
        std::size_t argBegin = i + 2;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            const std::string& p = tokens[j].text;
            if (tokens[j].kind == TokenKind::Punct &&
                (p == "(" || p == "[" || p == "{")) {
                ++depth;
            } else if (tokens[j].kind == TokenKind::Punct &&
                       (p == ")" || p == "]" || p == "}")) {
                if (--depth == 0) {
                    argSpans.emplace_back(argBegin, j);
                    close = j;
                    break;
                }
            } else if (depth == 1 && isPunctAt(tokens, j, ",")) {
                argSpans.emplace_back(argBegin, j);
                argBegin = j + 1;
            }
        }
        if (close == 0 || argSpans.size() < 3)
            continue; // not the protocol call shape
        auto spelled = [&](const std::pair<std::size_t, std::size_t>& s) {
            std::string text;
            for (std::size_t j = s.first; j < s.second; ++j)
                text += tokens[j].text;
            return text;
        };
        const std::string graphExpr = spelled(argSpans[0]);
        // The state is the second-to-last argument (graph, delta,
        // state, options) — tolerate call shapes with defaulted
        // trailing options by falling back to the third argument.
        const std::string stateExpr =
            spelled(argSpans.size() >= 4 ? argSpans[argSpans.size() - 2]
                                         : argSpans[2]);
        const int function = enclosingFunction(i);

        const auto it = lastUse.find(stateExpr);
        if (it != lastUse.end() && it->second.function == function &&
            it->second.graph != graphExpr) {
            // Any `<state> . reset (` between the two calls clears it.
            bool resetBetween = false;
            for (std::size_t j = it->second.tok; j < i && !resetBetween;
                 ++j) {
                if (tokens[j].kind == TokenKind::Identifier &&
                    tokens[j].text == "reset" && j >= 1 &&
                    (isText(prev(tokens, j), ".") ||
                     isText(prev(tokens, j), "->")) &&
                    nextIsOpenParen(tokens, j)) {
                    // Match the expression before the dot against the
                    // tail of the state spelling.
                    std::string head;
                    for (std::size_t k = j - 1; k-- > 0;) {
                        const Token& t = tokens[k];
                        if (t.kind != TokenKind::Identifier &&
                            !(t.kind == TokenKind::Punct &&
                              (t.text == "." || t.text == "->" ||
                               t.text == "::" || t.text == "]" ||
                               t.text == "[")))
                            break;
                        head = t.text + head;
                        if (head.size() >= stateExpr.size())
                            break;
                    }
                    if (contains(stateExpr, head.c_str()) || head.empty())
                        resetBetween = true;
                }
            }
            if (!resetBetween) {
                out.push_back(
                    {"stale-delta-state", "", tokens[i].line,
                     "IncrementalState `" + stateExpr +
                         "` last fed e-graph `" + it->second.graph +
                         "` is reused for `" + graphExpr +
                         "` without .reset() — one state tracks one "
                         "e-graph lineage"});
            }
        }
        lastUse[stateExpr] = LastUse{graphExpr, i, function};
    }
}

using RuleFn = void (*)(const RuleInputs&, std::vector<Finding>&);

struct Rule
{
    RuleInfo info;
    RuleFn fn;
};

const std::vector<Rule>&
rules()
{
    static const std::vector<Rule> all = {
        {{"raw-new", "no raw new outside the allocator machinery",
          "Manual allocations leak on early returns and exceptions; "
          "ownership lives in containers, std::unique_ptr, or the "
          "tensor Arena, which also feeds the peak-memory telemetry.",
          "auto node = std::make_unique<Node>(args);  // not: new Node"},
         &rawNewDelete},
        {{"raw-delete", "no raw delete (covered by raw-new's walker)",
          "A delete implies a matching raw new somewhere; both sides "
          "move into an owning type.",
          "owner.reset();  // not: delete ptr"},
         nullptr},
        {{"std-thread", "threads only via util::ThreadPool",
          "Ad-hoc std::thread bypasses --threads, deterministic "
          "chunking, and centralized shutdown; the pool also keeps "
          "results bit-identical at any worker count.",
          "pool.parallelFor(0, n, grain, [&](size_t b, size_t e) "
          "{ ... });  // not: std::thread t(...)"},
         &stdThread},
        {{"no-rand", "library randomness/time only via util::Rng",
          "rand()/srand()/time() make runs irreproducible; every "
          "stochastic path must draw from a seeded util::Rng stream.",
          "util::Rng rng(seed); double u = rng.uniform();  // not: "
          "rand()"},
         &noRand},
        {{"no-assert", "contracts instead of assert()",
          "assert() compiles out under NDEBUG, so release builds lose "
          "the check; the SMOOTHE_CHECK family stays on, reports "
          "through telemetry, and supports failure modes.",
          "SMOOTHE_CHECK(n > 0, \"empty e-class\");  // not: "
          "assert(n > 0)"},
         &noAssert},
        {{"iostream-header", "no <iostream> in library headers",
          "<iostream> injects the ios_base static initializer into "
          "every translation unit that includes the header.",
          "#include <iosfwd>  // header; <ostream> in the .cpp"},
         &iostreamHeader},
        {{"include-guard", "SMOOTHE_-prefixed guards or pragma once",
          "Unprefixed guards collide across projects; the SMOOTHE_ "
          "namespace makes every guard unique and greppable.",
          "#ifndef SMOOTHE_TENSOR_KERNELS_HPP"},
         &includeGuard},
        {{"tape-in-loop",
          "no per-iteration Tape construction — compile once, replay",
          "Recording a Tape per iteration rebuilds the whole graph "
          "every step; DESIGN.md \"Compiled execution plan\" records "
          "once and replays the compiled ad::Program. Scope-aware "
          "since v2: only real constructions inside Loop scopes fire.",
          "ad::Tape tape(...); auto prog = tape.compile(); for (...) "
          "{ prog.forward(); }  // not: for (...) { Tape t(...); }"},
         &tapeInLoop},
        {{"parallel-capture-race",
          "no unsynchronized writes to by-ref captures in parallel "
          "lambdas",
          "A lambda handed to ThreadPool::parallelFor runs on several "
          "workers at once; writing a by-ref-captured local without "
          "atomics, a lock, or per-chunk indexing is a data race (TSan "
          "finds it only when the schedule cooperates; this rule finds "
          "it always).",
          "std::vector<T> perChunk(chunks); pool.parallelForChunks(..., "
          "[&](size_t c, ...) { perChunk[c] = ...; });  // not: "
          "[&total](...) { total = ...; }"},
         &parallelCaptureRules},
        {{"nondet-reduction",
          "no order-dependent float accumulation in parallel lambdas",
          "Floating-point addition is not associative: accumulating "
          "+=/*= into a shared capture makes the result depend on "
          "chunk interleaving, breaking the bit-identical-at-any-"
          "thread-count contract (PR 3).",
          "reduce into perChunk[c] inside the lambda, then combine the "
          "chunk results in index order on the caller"},
         nullptr},
        {{"fma-in-kernel",
          "no FMA / fast-math in src/tensor kernels",
          "Fused multiply-add rounds once where mul+add round twice, "
          "so an FMA kernel diverges bitwise from the scalar reference "
          "— the SIMD parity suite (tests/test_simd.cpp) would fail on "
          "exactly the inputs it samples.",
          "acc = _mm256_add_ps(acc, _mm256_mul_ps(a, b));  // not: "
          "_mm256_fmadd_ps(a, b, acc)"},
         &fmaInKernel},
        {{"relaxed-atomic-handshake",
          "memory_order_relaxed only for allowlisted counters/caches",
          "Relaxed atomics order nothing but themselves: publishing "
          "non-atomic data behind a relaxed flag is a race. Telemetry "
          "counters (src/obs), the SIMD level cache, and the Arena "
          "accounting counters guard only their own value and are "
          "allowlisted.",
          "flag.store(true, std::memory_order_release); ... "
          "flag.load(std::memory_order_acquire)"},
         &relaxedAtomicHandshake},
        {{"stale-delta-state",
          "one IncrementalState per e-graph lineage",
          "extract::IncrementalState carries warm-start parameters for "
          "ONE evolving e-graph; feeding a state grown on graph A into "
          "extractIncremental(graphB, ...) without .reset() aborts on "
          "the runtime ownership check at best and warm-starts from "
          "foreign parameters at worst.",
          "state.reset();  // before pointing it at a different graph"},
         &staleDeltaState},
        {{"avx2-parity-coverage",
          "every AVX2 kernel is exercised by tests/test_simd.cpp",
          "An AVX2 kernel without a parity test can silently diverge "
          "from the scalar reference; the cross-file project model "
          "checks each kernel symbol is reachable from the SIMD test, "
          "directly or through its runtime dispatcher.",
          "add a test in tests/test_simd.cpp that drives the kernel's "
          "dispatcher at SMOOTHE_SIMD=avx2 and =scalar and compares "
          "bitwise"},
         &avx2ParityCoverage},
    };
    return all;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = [] {
        std::vector<RuleInfo> out;
        for (const Rule& rule : rules())
            out.push_back(rule.info);
        return out;
    }();
    return catalog;
}

const RuleInfo*
findRule(const std::string& name)
{
    for (const RuleInfo& info : ruleCatalog()) {
        if (name == info.name)
            return &info;
    }
    return nullptr;
}

std::vector<Finding>
runRules(const RuleInputs& inputs)
{
    std::vector<Finding> all;
    for (const Rule& rule : rules()) {
        if (rule.fn != nullptr)
            rule.fn(inputs, all);
    }
    std::vector<Finding> kept;
    for (Finding& finding : all) {
        if (inputs.lexed.suppressed(finding.rule, finding.line))
            continue;
        finding.path = inputs.ctx.path;
        kept.push_back(std::move(finding));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return kept;
}

std::vector<Finding>
runRules(const FileContext& ctx, const LexedFile& lexed)
{
    const ScopeTree scopes = buildScopeTree(lexed);
    return runRules(RuleInputs{ctx, lexed, scopes, nullptr});
}

} // namespace smoothe::lint
