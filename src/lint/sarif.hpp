/**
 * @file
 * SARIF 2.1.0 rendering for smoothe_lint, so CI can upload the report
 * and code hosts annotate the offending lines.
 *
 * Only the required slice of the schema is emitted: one run, one tool
 * driver carrying the rule catalog, and one result per finding with a
 * physical location (artifact URI + start line). `validateSarif`
 * re-checks that shape structurally — the same subset the 2.1.0 schema
 * marks `required` — so the round-trip is testable without an external
 * schema validator (no new dependencies allowed in this container).
 */

#ifndef SMOOTHE_LINT_SARIF_HPP
#define SMOOTHE_LINT_SARIF_HPP

#include <string>

#include "lint/linter.hpp"
#include "util/json.hpp"

namespace smoothe::lint {

/** Renders a lint report as a SARIF 2.1.0 document. */
util::Json renderSarif(const LintReport& report);

/**
 * Structurally validates a SARIF document against the required-property
 * subset of the 2.1.0 schema. Returns true when valid; otherwise fills
 * `error` with the first violated constraint.
 */
bool validateSarif(const util::Json& doc, std::string* error = nullptr);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_SARIF_HPP
