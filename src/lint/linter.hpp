/**
 * @file
 * File discovery and report rendering for smoothe_lint.
 *
 * lintSource() is the unit-testable core: path + contents in, findings
 * out. lintPaths() walks files or directories (only .hpp/.h/.cpp/.cc
 * are scanned), classifying each path relative to the given root so the
 * library-only rules know where they are.
 */

#ifndef SMOOTHE_LINT_LINTER_HPP
#define SMOOTHE_LINT_LINTER_HPP

#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/json.hpp"

namespace smoothe::lint {

/** Outcome of one lint run. */
struct LintReport
{
    std::vector<Finding> findings;
    std::size_t filesScanned = 0;
    /** I/O problems (unreadable file, bad path); independent of findings. */
    std::vector<std::string> errors;

    bool clean() const { return findings.empty() && errors.empty(); }
};

/** Lints one in-memory file; `path` drives the scoping rules. */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source);

/**
 * Lints files and directory trees. Paths are interpreted relative to
 * `root` (also the prefix stripped for reporting), so running from a
 * build directory with root ".." works.
 */
LintReport lintPaths(const std::string& root,
                     const std::vector<std::string>& paths);

/** `path:line: [rule] message` lines plus a summary line. */
std::string renderText(const LintReport& report);

/** Machine-readable report: findings array + counts. */
util::Json renderJson(const LintReport& report);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_LINTER_HPP
