/**
 * @file
 * File discovery and report rendering for smoothe_lint.
 *
 * lintSource() is the unit-testable core: path + contents in, findings
 * out. lintPaths() walks files or directories (only .hpp/.h/.cpp/.cc
 * are scanned), classifying each path relative to the given root so the
 * library-only rules know where they are. It runs two passes: pass one
 * lexes and scope-parses every file into a ProjectModel, pass two runs
 * the rules with the finished cross-file model — which is what lets
 * avx2-parity-coverage see kernels_avx2.cpp and test_simd.cpp at once.
 */

#ifndef SMOOTHE_LINT_LINTER_HPP
#define SMOOTHE_LINT_LINTER_HPP

#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/json.hpp"

namespace smoothe::lint {

/** Outcome of one lint run. */
struct LintReport
{
    std::vector<Finding> findings;
    std::size_t filesScanned = 0;
    /** I/O problems (unreadable file, bad path); independent of findings. */
    std::vector<std::string> errors;

    bool clean() const { return findings.empty() && errors.empty(); }
};

/** Knobs for a lint run. */
struct LintOptions
{
    /** When non-empty, only findings from these rules are reported
     *  (raw-delete rides with raw-new, nondet-reduction with
     *  parallel-capture-race — filtering is by finding name). */
    std::vector<std::string> rules;
};

/** Lints one in-memory file; `path` drives the scoping rules. */
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& source);

/**
 * Lints files and directory trees. Paths are interpreted relative to
 * `root` (also the prefix stripped for reporting), so running from a
 * build directory with root ".." works.
 */
LintReport lintPaths(const std::string& root,
                     const std::vector<std::string>& paths,
                     const LintOptions& options = {});

/** `path:line: [rule] message` lines plus a summary line. */
std::string renderText(const LintReport& report);

/** Machine-readable report: findings array + counts. */
util::Json renderJson(const LintReport& report);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_LINTER_HPP
