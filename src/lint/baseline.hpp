/**
 * @file
 * Suppressions baseline for smoothe_lint: a checked-in JSON file of
 * known findings that new runs subtract before reporting, so a new
 * rule can land without same-PR churn across the whole tree.
 *
 * Entries are keyed by (rule, path, message) — deliberately not line
 * numbers, so unrelated edits that shift a finding up or down do not
 * invalidate the baseline. Matching is multiset-style: each baseline
 * entry absorbs at most one finding, so a *second* identical violation
 * in the same file still surfaces.
 */

#ifndef SMOOTHE_LINT_BASELINE_HPP
#define SMOOTHE_LINT_BASELINE_HPP

#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "util/json.hpp"

namespace smoothe::lint {

/** A parsed baseline file. */
struct Baseline
{
    struct Entry
    {
        std::string rule;
        std::string path;
        std::string message;
    };
    std::vector<Entry> entries;
};

/** Serializes findings as a baseline document. */
util::Json renderBaseline(const std::vector<Finding>& findings);

/**
 * Parses a baseline document. Returns false (and fills `error`) on a
 * malformed file — a silently ignored baseline would un-suppress the
 * whole tree.
 */
bool parseBaseline(const util::Json& doc, Baseline& out,
                   std::string* error = nullptr);

/**
 * Removes findings matched by the baseline (each entry absorbs one
 * finding) and returns the survivors in the original order.
 */
std::vector<Finding> applyBaseline(const Baseline& baseline,
                                   std::vector<Finding> findings);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_BASELINE_HPP
