#include "lint/sarif.hpp"

#include "lint/rules.hpp"

namespace smoothe::lint {

namespace {

constexpr const char* kSarifVersion = "2.1.0";
constexpr const char* kSarifSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json";

bool
fail(std::string* error, const std::string& message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

util::Json
renderSarif(const LintReport& report)
{
    util::Json rules = util::Json::makeArray();
    for (const RuleInfo& info : ruleCatalog()) {
        util::Json rule = util::Json::makeObject();
        rule.set("id", info.name);
        util::Json desc = util::Json::makeObject();
        desc.set("text", info.summary);
        rule.set("shortDescription", std::move(desc));
        util::Json full = util::Json::makeObject();
        full.set("text", info.rationale);
        rule.set("fullDescription", std::move(full));
        rules.push(std::move(rule));
    }

    util::Json driver = util::Json::makeObject();
    driver.set("name", "smoothe_lint");
    driver.set("informationUri",
               "https://github.com/smoothe/smoothe (DESIGN.md \"Static "
               "analysis v2\")");
    driver.set("rules", std::move(rules));
    util::Json tool = util::Json::makeObject();
    tool.set("driver", std::move(driver));

    util::Json results = util::Json::makeArray();
    for (const Finding& finding : report.findings) {
        util::Json message = util::Json::makeObject();
        message.set("text", finding.message);

        util::Json artifact = util::Json::makeObject();
        artifact.set("uri", finding.path);
        util::Json region = util::Json::makeObject();
        region.set("startLine", finding.line);
        util::Json physical = util::Json::makeObject();
        physical.set("artifactLocation", std::move(artifact));
        physical.set("region", std::move(region));
        util::Json location = util::Json::makeObject();
        location.set("physicalLocation", std::move(physical));
        util::Json locations = util::Json::makeArray();
        locations.push(std::move(location));

        util::Json result = util::Json::makeObject();
        result.set("ruleId", finding.rule);
        result.set("level", "error");
        result.set("message", std::move(message));
        result.set("locations", std::move(locations));
        results.push(std::move(result));
    }

    util::Json run = util::Json::makeObject();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    util::Json runs = util::Json::makeArray();
    runs.push(std::move(run));

    util::Json doc = util::Json::makeObject();
    doc.set("$schema", kSarifSchema);
    doc.set("version", kSarifVersion);
    doc.set("runs", std::move(runs));
    return doc;
}

bool
validateSarif(const util::Json& doc, std::string* error)
{
    if (!doc.isObject())
        return fail(error, "document must be an object");
    const util::Json* version = doc.find("version");
    if (version == nullptr || !version->isString() ||
        version->asString() != kSarifVersion)
        return fail(error, "version must be the string \"2.1.0\"");
    const util::Json* runs = doc.find("runs");
    if (runs == nullptr || !runs->isArray())
        return fail(error, "runs must be an array");
    for (const util::Json& run : runs->asArray()) {
        if (!run.isObject())
            return fail(error, "run must be an object");
        const util::Json* tool = run.find("tool");
        if (tool == nullptr || !tool->isObject())
            return fail(error, "run.tool must be an object");
        const util::Json* driver = tool->find("driver");
        if (driver == nullptr || !driver->isObject())
            return fail(error, "run.tool.driver must be an object");
        const util::Json* name = driver->find("name");
        if (name == nullptr || !name->isString())
            return fail(error, "tool.driver.name must be a string");
        const util::Json* rules = driver->find("rules");
        if (rules != nullptr) {
            if (!rules->isArray())
                return fail(error, "tool.driver.rules must be an array");
            for (const util::Json& rule : rules->asArray()) {
                const util::Json* id =
                    rule.isObject() ? rule.find("id") : nullptr;
                if (id == nullptr || !id->isString())
                    return fail(error, "every rule needs a string id");
            }
        }
        const util::Json* results = run.find("results");
        if (results == nullptr || !results->isArray())
            return fail(error, "run.results must be an array");
        for (const util::Json& result : results->asArray()) {
            if (!result.isObject())
                return fail(error, "result must be an object");
            const util::Json* message = result.find("message");
            if (message == nullptr || !message->isObject() ||
                message->find("text") == nullptr ||
                !message->find("text")->isString())
                return fail(error,
                            "result.message.text must be a string");
            const util::Json* ruleId = result.find("ruleId");
            if (ruleId == nullptr || !ruleId->isString())
                return fail(error, "result.ruleId must be a string");
            const util::Json* locations = result.find("locations");
            if (locations == nullptr)
                continue; // locations are optional in the schema
            if (!locations->isArray())
                return fail(error, "result.locations must be an array");
            for (const util::Json& location : locations->asArray()) {
                const util::Json* physical =
                    location.isObject()
                        ? location.find("physicalLocation")
                        : nullptr;
                if (physical == nullptr || !physical->isObject())
                    continue;
                const util::Json* artifact =
                    physical->find("artifactLocation");
                if (artifact == nullptr || !artifact->isObject() ||
                    artifact->find("uri") == nullptr ||
                    !artifact->find("uri")->isString())
                    return fail(error,
                                "physicalLocation.artifactLocation.uri "
                                "must be a string");
                const util::Json* region = physical->find("region");
                if (region != nullptr) {
                    const util::Json* startLine =
                        region->isObject() ? region->find("startLine")
                                           : nullptr;
                    if (startLine == nullptr || !startLine->isNumber() ||
                        startLine->asNumber() < 1)
                        return fail(error,
                                    "region.startLine must be a number "
                                    ">= 1");
                }
            }
        }
    }
    return true;
}

} // namespace smoothe::lint
