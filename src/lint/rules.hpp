/**
 * @file
 * The smoothe_lint rule set. Each rule encodes a project convention the
 * compiler cannot enforce (see DESIGN.md "Correctness tooling & static
 * analysis"):
 *
 *   raw-new / raw-delete  no manual new/delete; memory goes through
 *                         containers, unique_ptr, or the tensor Arena
 *   std-thread            threads only via util::ThreadPool
 *   no-rand               library code must use util::Rng, never
 *                         rand()/srand()/time() (non-reproducible runs)
 *   no-assert             use the SMOOTHE_CHECK/ASSERT/DCHECK contracts;
 *                         assert() vanishes under NDEBUG
 *   iostream-header       no <iostream> in library headers (it injects
 *                         the ios_base static initializer everywhere)
 *   include-guard         headers carry a SMOOTHE_-prefixed include
 *                         guard or #pragma once
 *   tape-in-loop          no Tape construction inside loop bodies in
 *                         library code — record once and replay through
 *                         ad::Program (DESIGN.md "Compiled execution
 *                         plan"); suppress for intentional eager paths
 *
 * Findings on a line with (or directly below) a comment
 * `// smoothe-lint: allow(<rule>)` are suppressed.
 */

#ifndef SMOOTHE_LINT_RULES_HPP
#define SMOOTHE_LINT_RULES_HPP

#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace smoothe::lint {

/** One lint violation. */
struct Finding
{
    std::string rule;
    std::string path;
    int line = 0;
    std::string message;
};

/** What the rules need to know about the file being scanned. */
struct FileContext
{
    std::string path;      ///< repo-relative, forward slashes
    bool isHeader = false; ///< .hpp / .h
    bool isLibrary = false;///< under src/ (library conventions apply)
};

/** Name + summary, for `smoothe_lint --list-rules`. */
struct RuleInfo
{
    const char* name;
    const char* summary;
};

/** All rules, in the order they run. */
const std::vector<RuleInfo>& ruleCatalog();

/**
 * Runs every rule over a lexed file and returns the unsuppressed
 * findings, in line order.
 */
std::vector<Finding> runRules(const FileContext& ctx,
                              const LexedFile& lexed);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_RULES_HPP
