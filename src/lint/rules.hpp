/**
 * @file
 * The smoothe_lint rule set. Each rule encodes a project convention the
 * compiler cannot enforce (see DESIGN.md "Correctness tooling & static
 * analysis" and "Static analysis v2"):
 *
 *   raw-new / raw-delete  no manual new/delete; memory goes through
 *                         containers, unique_ptr, or the tensor Arena
 *   std-thread            threads only via util::ThreadPool
 *   no-rand               library code must use util::Rng, never
 *                         rand()/srand()/time() (non-reproducible runs)
 *   no-assert             use the SMOOTHE_CHECK/ASSERT/DCHECK contracts;
 *                         assert() vanishes under NDEBUG
 *   iostream-header       no <iostream> in library headers (it injects
 *                         the ios_base static initializer everywhere)
 *   include-guard         headers carry a SMOOTHE_-prefixed include
 *                         guard or #pragma once
 *   tape-in-loop          no Tape construction inside loop bodies in
 *                         library code — record once and replay through
 *                         ad::Program (scope-aware since v2)
 *
 * The v2 concurrency & determinism pack (scope tree + project model):
 *
 *   parallel-capture-race    lambda passed to parallelFor/parallel_*
 *                            writes a by-ref-captured local without
 *                            atomics, a lock, or per-chunk indexing
 *   nondet-reduction         float += or *= accumulation in a parallel
 *                            lambda — result depends on chunk order
 *   fma-in-kernel            FMA intrinsics / std::fma / FP_CONTRACT /
 *                            -ffast-math in src/tensor (the bitwise
 *                            SIMD-parity contract bans fused rounding)
 *   relaxed-atomic-handshake memory_order_relaxed outside the allowlisted
 *                            counter/dispatch-cache patterns
 *   avx2-parity-coverage     every kernel defined in kernels_avx2.cpp is
 *                            reachable from tests/test_simd.cpp (cross-
 *                            file, needs the project model)
 *   stale-delta-state        an extract::IncrementalState reused across
 *                            different e-graph expressions without an
 *                            intervening .reset() (one state tracks one
 *                            e-graph lineage)
 *
 * Findings on a line with (or directly below) a comment
 * `// smoothe-lint: allow(<rule>)` are suppressed; the same marker in a
 * block comment ending on that line works too.
 */

#ifndef SMOOTHE_LINT_RULES_HPP
#define SMOOTHE_LINT_RULES_HPP

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/project_model.hpp"
#include "lint/scope_tree.hpp"

namespace smoothe::lint {

/** One lint violation. */
struct Finding
{
    std::string rule;
    std::string path;
    int line = 0;
    std::string message;
};

/** What the rules need to know about the file being scanned. */
struct FileContext
{
    std::string path;      ///< repo-relative, forward slashes
    bool isHeader = false; ///< .hpp / .h
    bool isLibrary = false;///< under src/ (library conventions apply)
};

/** Name, summary, and `--explain` material for one rule. */
struct RuleInfo
{
    const char* name;
    const char* summary;
    const char* rationale; ///< why the convention exists
    const char* fix;       ///< a short fix example
};

/** Everything a rule may consult for one file. */
struct RuleInputs
{
    const FileContext& ctx;
    const LexedFile& lexed;
    const ScopeTree& scopes;
    /** Cross-file facts; nullptr for single-file runs, in which case
     *  project-level rules stay silent. */
    const ProjectModel* model = nullptr;
};

/** All rules, in the order they run. */
const std::vector<RuleInfo>& ruleCatalog();

/** The catalog entry for `name`, or nullptr. */
const RuleInfo* findRule(const std::string& name);

/**
 * Runs every rule over one analyzed file and returns the unsuppressed
 * findings, in line order.
 */
std::vector<Finding> runRules(const RuleInputs& inputs);

/** Single-file convenience: builds the scope tree, no project model. */
std::vector<Finding> runRules(const FileContext& ctx,
                              const LexedFile& lexed);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_RULES_HPP
