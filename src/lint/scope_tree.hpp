/**
 * @file
 * A brace/scope micro-parser over the lint lexer's token stream.
 *
 * smoothe_lint v2 rules need more than tokens: "is this write inside a
 * lambda passed to parallelFor?", "what is the rough type of this
 * local?", "how many loops enclose this line?". This parser recovers
 * exactly that much structure — namespaces, class bodies, function and
 * method definitions, lambda expressions with parsed capture lists and
 * parameters, block/loop scopes with nesting depth, and per-scope local
 * declarations with rough type text — without being a C++ front end.
 *
 * It is resilient by construction: unbalanced braces (macros that open
 * scopes, truncated files) clamp instead of failing, unknown constructs
 * fall back to plain Block scopes, and declaration parsing is a
 * heuristic that prefers missing a declaration over inventing one.
 * Golden dumps under tests/golden/scope/ pin the output on adversarial
 * inputs (nested lambdas, templates with >>, operator overloads,
 * if constexpr, macros spanning braces).
 */

#ifndef SMOOTHE_LINT_SCOPE_TREE_HPP
#define SMOOTHE_LINT_SCOPE_TREE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace smoothe::lint {

/** What kind of construct opened a scope. */
enum class ScopeKind : std::uint8_t {
    File,      ///< the implicit whole-file scope
    Namespace, ///< namespace X { } (anonymous: name "")
    Class,     ///< class/struct/union/enum body
    Function,  ///< free function, method, or constructor definition
    Lambda,    ///< lambda expression body
    Loop,      ///< for/while/do body
    Block,     ///< any other braced scope (if/else/switch/try/plain)
};

/** One local declaration (or parameter) made directly in a scope. */
struct Declaration
{
    std::string name;
    /**
     * Rough declared type as token text, e.g. "std::atomic<int>" or
     * "const float *". Heuristic: cv/storage keywords are dropped,
     * template arguments are included, declarator stars/ampersands are
     * appended. Empty only for constructs the parser gave up on.
     */
    std::string typeText;
    int line = 0;
    bool isParameter = false;
};

/** One entry of a lambda capture list. */
struct Capture
{
    std::string name; ///< empty for the [&] / [=] defaults and *this
    bool byRef = false;
    bool isDefault = false; ///< a bare & or = capturing everything
    bool isInit = false;    ///< init capture [x = expr] (owns a copy)
};

/** One scope; scopes form a tree via parent/children indices. */
struct Scope
{
    ScopeKind kind = ScopeKind::Block;
    /** Namespace/class/function name ("" for anonymous/blocks). Method
     *  definitions keep their qualification, e.g. "CsrMatrix::spmv". */
    std::string name;
    int beginLine = 0;
    int endLine = 0;
    /** Token range [beginTok, endTok) of the scope body including its
     *  braces; the File scope spans every token. */
    std::size_t beginTok = 0;
    std::size_t endTok = 0;
    /** Number of enclosing Loop scopes, counting this one if a Loop. */
    int loopDepth = 0;
    std::vector<Capture> captures; ///< Lambda scopes only
    std::vector<Declaration> locals;
    int parent = -1; ///< index into ScopeTree::scopes; -1 for the root
    std::vector<int> children;
};

/** The parsed scope structure of one file. */
struct ScopeTree
{
    /** scopes[0] is always the File scope. */
    std::vector<Scope> scopes;

    const Scope& root() const { return scopes.front(); }

    /** Index of the innermost scope containing token index `tok`. */
    int scopeAt(std::size_t tok) const;

    /**
     * Resolves `name` against the locals of `scope` and its ancestors
     * (innermost wins). Returns nullptr when no enclosing scope
     * declares it — i.e. the name is a global, member, or unknown.
     */
    const Declaration* findLocal(int scope, const std::string& name) const;

    /** Index of the nearest enclosing Function or Lambda scope
     *  (including `scope` itself), or -1. */
    int enclosingFunction(int scope) const;

    /** Stable indented text rendering, for the golden scope dumps. */
    std::string dump() const;
};

/** Parses the scope structure of a lexed file. Never fails. */
ScopeTree buildScopeTree(const LexedFile& lexed);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_SCOPE_TREE_HPP
