/**
 * @file
 * A minimal C++ lexer for smoothe_lint (see DESIGN.md "Correctness
 * tooling & static analysis").
 *
 * This is not a compiler front end: it only needs to be precise enough
 * that the lint rules never fire inside comments or string literals and
 * can see preprocessor structure. It strips // and block comments
 * (recording `// smoothe-lint: allow(rule, ...)` suppressions as it
 * goes), handles ordinary/raw string and char literals, folds `::` and `->`
 * into one token each, and lexes `#directive` lines so include targets
 * arrive as single HeaderName tokens.
 */

#ifndef SMOOTHE_LINT_LEXER_HPP
#define SMOOTHE_LINT_LEXER_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace smoothe::lint {

enum class TokenKind {
    Identifier,   ///< keywords included; rules match on text
    Number,
    Punct,        ///< one character, except the folded "::" and "->"
    Preprocessor, ///< directive name; text is e.g. "include", "ifndef"
    HeaderName,   ///< include target with delimiters, e.g. "<iostream>"
    StringLiteral,///< text is the literal's contents, delimiters stripped
    CharLiteral,  ///< text is the literal's contents, delimiters stripped
};

struct Token
{
    TokenKind kind;
    std::string text;
    int line; ///< 1-based
};

/** A lexed translation unit plus its lint suppressions. */
struct LexedFile
{
    std::vector<Token> tokens;
    /** Line -> rule names allowed there by `// smoothe-lint: allow(...)`. */
    std::map<int, std::set<std::string>> suppressions;
    int lineCount = 0;

    /**
     * True when `rule` is suppressed at `line`: the allow comment sits
     * on the flagged line itself or alone on the line above.
     */
    bool suppressed(const std::string& rule, int line) const;
};

/** Lexes a whole source file. Never fails: unterminated constructs are
 *  consumed to end of file. */
LexedFile lex(const std::string& source);

} // namespace smoothe::lint

#endif // SMOOTHE_LINT_LEXER_HPP
