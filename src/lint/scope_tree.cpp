#include "lint/scope_tree.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace smoothe::lint {

namespace {

bool
isPunct(const Token& tok, const char* text)
{
    return tok.kind == TokenKind::Punct && tok.text == text;
}

bool
isIdent(const Token& tok, const char* text)
{
    return tok.kind == TokenKind::Identifier && tok.text == text;
}

/** Keywords that can never start a declaration statement. */
bool
isStatementKeyword(const std::string& text)
{
    static const char* const kKeywords[] = {
        "return",   "if",      "else",    "for",       "while",
        "do",       "switch",  "case",    "default",   "break",
        "continue", "goto",    "using",   "typedef",   "template",
        "public",   "private", "protected", "friend",  "namespace",
        "class",    "struct",  "enum",    "union",     "extern",
        "new",      "delete",  "throw",   "try",       "catch",
        "sizeof",   "operator", "co_return", "co_await", "co_yield",
        "static_assert", "asm",
    };
    for (const char* kw : kKeywords) {
        if (text == kw)
            return true;
    }
    return false;
}

/** cv/storage qualifiers skipped (not recorded) before a declared type. */
bool
isDeclPrefix(const std::string& text)
{
    return text == "static" || text == "const" || text == "constexpr" ||
           text == "mutable" || text == "thread_local" ||
           text == "volatile" || text == "inline" || text == "register";
}

/** Identifiers allowed between a function signature's `)` and its `{`. */
bool
isSignatureSuffix(const std::string& text)
{
    return text == "const" || text == "noexcept" || text == "override" ||
           text == "final" || text == "mutable" || text == "constexpr" ||
           text == "try";
}

/** One parsed declarator: the shared machinery of parseDecl. */
struct ParsedDecl
{
    Declaration decl;
    std::size_t next = 0; ///< index of the token after the declared name
};

/**
 * Tries to parse `type name` starting at `pos` (statement or parameter
 * start). Returns std::nullopt when the tokens do not look like a
 * declaration. Initializers are NOT consumed: `next` points at the
 * terminator (`=`, `;`, `(`, `{`, `[`, `,`, `:`, `)`).
 */
std::optional<ParsedDecl>
parseDecl(const std::vector<Token>& tokens, std::size_t pos,
          std::size_t end)
{
    std::string typeText;
    const auto append = [&](const std::string& text) {
        if (!typeText.empty() && (std::isalnum(static_cast<unsigned char>(
                                      text[0])) ||
                                  text[0] == '_'))
            typeText += ' ';
        typeText += text;
    };

    while (pos < end && tokens[pos].kind == TokenKind::Identifier &&
           isDeclPrefix(tokens[pos].text))
        ++pos;

    // Type tokens: identifiers, ::, balanced <...>, then * / & suffixes.
    std::size_t typeIdents = 0;
    std::string lastIdent;
    std::size_t lastIdentAt = 0;
    bool sawRefOrPtr = false;
    while (pos < end) {
        const Token& tok = tokens[pos];
        if (tok.kind == TokenKind::Identifier) {
            if (isStatementKeyword(tok.text))
                return std::nullopt;
            if (sawRefOrPtr) {
                // `int* x` — the identifier after * / & is the name.
                break;
            }
            // Peek: an identifier followed by another identifier (or a
            // terminator) is the declared name, unless what we have so
            // far is empty.
            lastIdent = tok.text;
            lastIdentAt = pos;
            append(tok.text);
            ++typeIdents;
            ++pos;
            continue;
        }
        if (isPunct(tok, "::")) {
            if (pos + 1 >= end ||
                tokens[pos + 1].kind != TokenKind::Identifier)
                return std::nullopt;
            typeText += "::";
            lastIdent = tokens[pos + 1].text;
            lastIdentAt = pos + 1;
            typeText += lastIdent;
            pos += 2;
            continue;
        }
        if (isPunct(tok, "<")) {
            // Balanced template argument list; parentheses inside get
            // their own depth (function types like Fn<void(int)>).
            int angle = 0;
            int paren = 0;
            std::size_t j = pos;
            for (; j < end; ++j) {
                const Token& t = tokens[j];
                if (t.kind != TokenKind::Punct)
                    continue;
                if (t.text == "(") {
                    ++paren;
                } else if (t.text == ")") {
                    if (paren == 0)
                        return std::nullopt;
                    --paren;
                } else if (paren == 0 && t.text == "<") {
                    ++angle;
                } else if (paren == 0 && t.text == ">") {
                    if (--angle == 0)
                        break;
                } else if (paren == 0 &&
                           (t.text == ";" || t.text == "{" ||
                            t.text == "}")) {
                    return std::nullopt; // comparison, not template args
                }
            }
            if (j >= end)
                return std::nullopt;
            for (std::size_t k = pos; k <= j; ++k)
                typeText += tokens[k].text;
            pos = j + 1;
            continue;
        }
        if (isPunct(tok, "*") || isPunct(tok, "&")) {
            if (typeIdents == 0)
                return std::nullopt;
            typeText += ' ';
            typeText += tok.text;
            sawRefOrPtr = true;
            ++pos;
            continue;
        }
        break;
    }

    if (typeIdents == 0)
        return std::nullopt;

    std::string name;
    std::size_t nameAt = pos;
    if (pos < end && tokens[pos].kind == TokenKind::Identifier &&
        !isStatementKeyword(tokens[pos].text)) {
        name = tokens[pos].text;
        ++pos;
    } else if (!sawRefOrPtr && typeIdents >= 2) {
        // `std::vector<int> v` consumed v as the last type ident when
        // the terminator follows directly: back out one identifier.
        name = lastIdent;
        nameAt = lastIdentAt;
        // Remove the trailing identifier (and its separator) from the
        // type text.
        const std::size_t cut = typeText.rfind(name);
        if (cut == std::string::npos || cut + name.size() != typeText.size())
            return std::nullopt;
        typeText.erase(cut);
        while (!typeText.empty() && typeText.back() == ' ')
            typeText.pop_back();
        if (!typeText.empty() && typeText.size() >= 2 &&
            typeText.substr(typeText.size() - 2) == "::")
            return std::nullopt; // qualified name, not type + name
        pos = nameAt + 1;
    } else {
        return std::nullopt;
    }

    if (pos < end) {
        const Token& term = tokens[pos];
        const bool ok =
            term.kind == TokenKind::Punct &&
            (term.text == "=" || term.text == ";" || term.text == "(" ||
             term.text == "{" || term.text == "[" || term.text == "," ||
             term.text == ":" || term.text == ")");
        if (!ok)
            return std::nullopt;
        // `=` might be `==` (comparison, so expressions like `a == b`
        // never parse as declarations).
        if (term.text == "=" && pos + 1 < end &&
            isPunct(tokens[pos + 1], "="))
            return std::nullopt;
    }
    // pos == end means the range boundary (parameter-list segment)
    // terminates the declarator, which is fine.

    ParsedDecl out;
    out.decl.name = std::move(name);
    out.decl.typeText = std::move(typeText);
    out.decl.line = tokens[nameAt].line;
    out.next = pos;
    return out;
}

/** Parses a parameter list in [pos, end) (exclusive of the parens). */
std::vector<Declaration>
parseParams(const std::vector<Token>& tokens, std::size_t pos,
            std::size_t end)
{
    std::vector<Declaration> out;
    std::size_t segment = pos;
    int depth = 0;
    for (std::size_t i = pos; i <= end; ++i) {
        const bool atEnd = i == end;
        if (!atEnd && tokens[i].kind == TokenKind::Punct) {
            const std::string& t = tokens[i].text;
            if (t == "(" || t == "{" || t == "[" || t == "<")
                ++depth;
            else if (t == ")" || t == "}" || t == "]" || t == ">")
                --depth;
        }
        if (atEnd || (depth == 0 && isPunct(tokens[i], ","))) {
            if (auto parsed = parseDecl(tokens, segment, i)) {
                parsed->decl.isParameter = true;
                out.push_back(std::move(parsed->decl));
            }
            segment = i + 1;
        }
    }
    return out;
}

class Parser
{
  public:
    explicit Parser(const LexedFile& lexed) : tokens_(lexed.tokens)
    {
        Scope file;
        file.kind = ScopeKind::File;
        file.beginLine = 1;
        file.endLine = std::max(1, lexed.lineCount);
        file.beginTok = 0;
        file.endTok = tokens_.size();
        tree_.scopes.push_back(std::move(file));
        open_.push_back(0);
        entryParen_.push_back(0);
    }

    ScopeTree
    run()
    {
        bool atStmtStart = true;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            const Token& tok = tokens_[i];
            if (tok.kind == TokenKind::Preprocessor ||
                tok.kind == TokenKind::HeaderName)
                continue; // directives do not affect scope structure
            if (tok.kind == TokenKind::Punct) {
                const std::string& t = tok.text;
                if (t == "(") {
                    ++parenDepth_;
                    atStmtStart = false;
                } else if (t == ")") {
                    if (parenDepth_ > 0)
                        --parenDepth_;
                    atStmtStart = false;
                    maybeEnterCtorInit(i);
                } else if (t == ";") {
                    if (stmtDepth() == 0)
                        pendingReset();
                    atStmtStart = true;
                } else if (t == "{") {
                    if (pendingCtorInit_ && i > 0 &&
                        tokens_[i - 1].kind == TokenKind::Identifier) {
                        i = skipBraces(i);
                        continue;
                    }
                    if (stmtDepth() > 0) {
                        // A brace inside parentheses is a braced init
                        // (`while (x > T{0})`, `f(Opts{...})`), never a
                        // scope — lambda bodies were consumed by
                        // maybeLambda before reaching here.
                        i = skipBraces(i);
                        continue;
                    }
                    openScopeAt(i);
                    atStmtStart = true;
                } else if (t == "}") {
                    closeScopeAt(i);
                    atStmtStart = true;
                } else if (t == "[") {
                    const std::size_t advanced = maybeLambda(i);
                    if (advanced != i) {
                        i = advanced; // now at the lambda body '{'
                        atStmtStart = true;
                    } else {
                        atStmtStart = false;
                    }
                } else {
                    atStmtStart = false;
                }
                continue;
            }
            // Identifier / Number / literal tokens.
            if (tok.kind == TokenKind::Identifier) {
                if (tok.text == "namespace" && stmtDepth() == 0) {
                    i = pendNamespace(i);
                    atStmtStart = false;
                    continue;
                }
                if ((tok.text == "class" || tok.text == "struct" ||
                     tok.text == "union" || tok.text == "enum") &&
                    stmtDepth() == 0 && !inTemplateHeader(i)) {
                    pendClass(i);
                    atStmtStart = false;
                    continue;
                }
                if (tok.text == "for" || tok.text == "while" ||
                    tok.text == "do") {
                    pendingKind_ = ScopeKind::Loop;
                    pendingActive_ = true;
                    atStmtStart = false;
                    continue;
                }
                if (atStmtStart && stmtDepth() == 0) {
                    if (auto parsed = parseDecl(tokens_, i, tokens_.size())) {
                        cur().locals.push_back(parsed->decl);
                        i = parsed->next - 1; // resume at the terminator
                        atStmtStart = false;
                        continue;
                    }
                }
            }
            atStmtStart = false;
        }
        // Close anything a macro left open so ranges stay sane.
        while (open_.size() > 1)
            closeScopeAt(tokens_.empty() ? 0 : tokens_.size() - 1);
        return std::move(tree_);
    }

  private:
    Scope& cur() { return tree_.scopes[open_.back()]; }

    int
    stmtDepth() const
    {
        return parenDepth_ - entryParen_.back();
    }

    void
    pendingReset()
    {
        pendingActive_ = false;
        pendingKind_ = ScopeKind::Block;
        pendingName_.clear();
        pendingCtorInit_ = false;
        pendingLocals_.clear();
    }

    /** `) :` at class/namespace level starts a constructor init list:
     *  remember the signature so the body brace opens a Function. */
    void
    maybeEnterCtorInit(std::size_t i)
    {
        const ScopeKind k = cur().kind;
        if (k != ScopeKind::File && k != ScopeKind::Namespace &&
            k != ScopeKind::Class)
            return;
        if (stmtDepth() != 0)
            return;
        if (i + 1 >= tokens_.size() || !isPunct(tokens_[i + 1], ":") ||
            (i + 2 < tokens_.size() && isPunct(tokens_[i + 2], ":")))
            return;
        // Match the signature parens backwards from i and name the ctor.
        int depth = 0;
        std::size_t p = i;
        while (true) {
            if (isPunct(tokens_[p], ")"))
                ++depth;
            else if (isPunct(tokens_[p], "(")) {
                if (--depth == 0)
                    break;
            }
            if (p == 0)
                return;
            --p;
        }
        if (p == 0 || tokens_[p - 1].kind != TokenKind::Identifier)
            return;
        std::string name = tokens_[p - 1].text;
        std::size_t e = p - 1;
        while (e >= 2 && isPunct(tokens_[e - 1], "::") &&
               tokens_[e - 2].kind == TokenKind::Identifier) {
            name = tokens_[e - 2].text + "::" + name;
            e -= 2;
        }
        pendingCtorInit_ = true;
        pendingActive_ = true;
        pendingKind_ = ScopeKind::Function;
        pendingName_ = std::move(name);
        pendingLocals_ = parseParams(tokens_, p + 1, i);
    }

    /** True when token i sits inside a `template <...>` header, so
     *  `class`/`typename` there are parameter introducers. */
    bool
    inTemplateHeader(std::size_t i) const
    {
        // Walk back a short window: template < ... [i] — with no
        // intervening `>` closing the header.
        int angle = 0;
        for (std::size_t back = 0; back < 32 && back < i; ++back) {
            const Token& tok = tokens_[i - 1 - back];
            if (tok.kind != TokenKind::Punct &&
                tok.kind != TokenKind::Identifier)
                return false;
            if (isPunct(tok, ">"))
                ++angle;
            else if (isPunct(tok, "<")) {
                if (angle == 0) {
                    // found the opening <: is it preceded by `template`?
                    const std::size_t at = i - 1 - back;
                    return at > 0 && isIdent(tokens_[at - 1], "template");
                }
                --angle;
            } else if (isPunct(tok, ";") || isPunct(tok, "{") ||
                       isPunct(tok, "}")) {
                return false;
            }
        }
        return false;
    }

    std::size_t
    pendNamespace(std::size_t i)
    {
        pendingKind_ = ScopeKind::Namespace;
        pendingActive_ = true;
        pendingName_.clear();
        std::size_t j = i + 1;
        while (j < tokens_.size()) {
            if (tokens_[j].kind == TokenKind::Identifier)
                pendingName_ += tokens_[j].text;
            else if (isPunct(tokens_[j], "::"))
                pendingName_ += "::";
            else
                break;
            ++j;
        }
        return j - 1;
    }

    void
    pendClass(std::size_t i)
    {
        pendingKind_ = ScopeKind::Class;
        pendingActive_ = true;
        pendingName_.clear();
        // First identifier after the keyword (skipping `class` of
        // `enum class` and attribute-ish tokens) names the type.
        for (std::size_t j = i + 1;
             j < tokens_.size() && j < i + 8; ++j) {
            const Token& tok = tokens_[j];
            if (tok.kind == TokenKind::Identifier) {
                if (tok.text == "class" || tok.text == "struct" ||
                    tok.text == "final" || tok.text == "alignas")
                    continue;
                pendingName_ = tok.text;
                return;
            }
            if (!isPunct(tok, "::"))
                return; // anonymous or immediate brace
        }
    }

    /** Skips a balanced brace group starting at `{` index i; returns
     *  the index of the matching `}` (or the last token). */
    std::size_t
    skipBraces(std::size_t i)
    {
        int depth = 0;
        for (std::size_t j = i; j < tokens_.size(); ++j) {
            if (isPunct(tokens_[j], "{"))
                ++depth;
            else if (isPunct(tokens_[j], "}")) {
                if (--depth == 0)
                    return j;
            }
        }
        return tokens_.empty() ? 0 : tokens_.size() - 1;
    }

    /**
     * Called on a `[` token. If it introduces a lambda whose body brace
     * is found, parses captures + parameters, opens the Lambda scope at
     * the body `{`, and returns that index. Otherwise returns i.
     */
    std::size_t
    maybeLambda(std::size_t i)
    {
        if (i + 1 < tokens_.size() && isPunct(tokens_[i + 1], "[")) {
            // [[attribute]] — skip to the closing ]].
            for (std::size_t j = i + 2; j + 1 < tokens_.size(); ++j) {
                if (isPunct(tokens_[j], "]") &&
                    isPunct(tokens_[j + 1], "]"))
                    return j + 1;
            }
            return i;
        }
        if (i > 0) {
            const Token& before = tokens_[i - 1];
            const bool subscript =
                (before.kind == TokenKind::Identifier &&
                 !isStatementKeyword(before.text)) ||
                before.kind == TokenKind::Number ||
                isPunct(before, ")") || isPunct(before, "]");
            if (subscript)
                return i;
        }

        // Parse the capture list up to the matching ].
        std::vector<Capture> captures;
        std::size_t j = i + 1;
        int depth = 1;
        std::size_t entryStart = j;
        const auto flushEntry = [&](std::size_t endTok) {
            if (endTok <= entryStart)
                return;
            Capture cap;
            std::size_t p = entryStart;
            if (isPunct(tokens_[p], "&")) {
                cap.byRef = true;
                ++p;
            } else if (isPunct(tokens_[p], "=")) {
                cap.isDefault = true;
                captures.push_back(cap);
                return;
            } else if (isPunct(tokens_[p], "*")) {
                ++p; // *this
            }
            if (p >= endTok) {
                if (cap.byRef)
                    cap.isDefault = true; // bare [&]
                captures.push_back(cap);
                return;
            }
            while (p < endTok && isPunct(tokens_[p], "."))
                ++p; // pack expansion dots
            if (p < endTok && tokens_[p].kind == TokenKind::Identifier)
                cap.name = tokens_[p].text;
            if (p + 1 < endTok && isPunct(tokens_[p + 1], "="))
                cap.isInit = true;
            captures.push_back(cap);
        };
        for (; j < tokens_.size(); ++j) {
            const Token& tok = tokens_[j];
            if (tok.kind != TokenKind::Punct)
                continue;
            if (tok.text == "[" || tok.text == "(" || tok.text == "{")
                ++depth;
            else if (tok.text == ")" || tok.text == "}")
                --depth;
            else if (tok.text == "]") {
                if (--depth == 0)
                    break;
            } else if (tok.text == "," && depth == 1) {
                flushEntry(j);
                entryStart = j + 1;
            }
        }
        if (j >= tokens_.size())
            return i;
        flushEntry(j);
        const std::size_t closeBracket = j;

        // Optional parameter list.
        std::vector<Declaration> params;
        std::size_t k = closeBracket + 1;
        if (k < tokens_.size() && isPunct(tokens_[k], "(")) {
            int paren = 0;
            std::size_t close = k;
            for (; close < tokens_.size(); ++close) {
                if (isPunct(tokens_[close], "("))
                    ++paren;
                else if (isPunct(tokens_[close], ")")) {
                    if (--paren == 0)
                        break;
                }
            }
            if (close >= tokens_.size())
                return i;
            params = parseParams(tokens_, k + 1, close);
            k = close + 1;
        }
        // Specifiers / trailing return type, up to the body brace.
        for (; k < tokens_.size(); ++k) {
            const Token& tok = tokens_[k];
            if (isPunct(tok, "{"))
                break;
            const bool benign =
                tok.kind == TokenKind::Identifier ||
                isPunct(tok, "->") || isPunct(tok, "::") ||
                isPunct(tok, "<") || isPunct(tok, ">") ||
                isPunct(tok, "&") || isPunct(tok, "*") ||
                isPunct(tok, ",") || isPunct(tok, "(") ||
                isPunct(tok, ")");
            if (!benign)
                return i; // not a lambda after all
        }
        if (k >= tokens_.size())
            return i;

        // Open the Lambda scope at the body brace.
        Scope scope;
        scope.kind = ScopeKind::Lambda;
        scope.captures = std::move(captures);
        scope.locals = std::move(params);
        pushScope(std::move(scope), k);
        return k;
    }

    /**
     * Function-definition detection by backward scan from a `{` at
     * class/namespace level: ... name ( params ) [suffixes] {.
     * Returns the (possibly qualified) name, or empty when the brace
     * does not close a function signature.
     */
    std::string
    functionNameBefore(std::size_t brace) const
    {
        std::size_t k = brace;
        // Skip signature suffixes and a trailing return type.
        while (k > 0) {
            const Token& tok = tokens_[k - 1];
            if (tok.kind == TokenKind::Identifier &&
                !isSignatureSuffix(tok.text) &&
                !(k >= 2 && (isPunct(tokens_[k - 2], "->") ||
                             isPunct(tokens_[k - 2], "::") ||
                             isPunct(tokens_[k - 2], "<") ||
                             isPunct(tokens_[k - 2], ","))))
                break;
            if (tok.kind == TokenKind::Punct && tok.text != "->" &&
                tok.text != "::" && tok.text != "<" && tok.text != ">" &&
                tok.text != "&" && tok.text != "*" && tok.text != ",")
                break;
            if (tok.kind != TokenKind::Identifier &&
                tok.kind != TokenKind::Punct)
                break;
            --k;
        }
        if (k == 0 || !isPunct(tokens_[k - 1], ")"))
            return "";
        // Match the parameter parens backwards.
        int depth = 0;
        std::size_t p = k - 1;
        while (true) {
            if (isPunct(tokens_[p], ")"))
                ++depth;
            else if (isPunct(tokens_[p], "(")) {
                if (--depth == 0)
                    break;
            }
            if (p == 0)
                return "";
            --p;
        }
        if (p == 0)
            return "";
        // Name before the `(`: ident chain, operator form, or
        // template-id.
        std::size_t n = p; // token after the name
        if (isPunct(tokens_[n - 1], ">")) {
            // skip a balanced template argument list backwards
            int angle = 0;
            while (n > 0) {
                --n;
                if (isPunct(tokens_[n], ">"))
                    ++angle;
                else if (isPunct(tokens_[n], "<")) {
                    if (--angle == 0)
                        break;
                }
            }
            if (n == 0)
                return "";
        }
        std::string name;
        if (tokens_[n - 1].kind == TokenKind::Identifier) {
            std::size_t e = n - 1; // the unqualified name
            name = tokens_[e].text;
            // operator bool / operator Type
            if (e > 0 && isIdent(tokens_[e - 1], "operator"))
                return "operator " + name;
            // qualifications
            while (e >= 2 && isPunct(tokens_[e - 1], "::") &&
                   tokens_[e - 2].kind == TokenKind::Identifier) {
                name = tokens_[e - 2].text + "::" + name;
                e -= 2;
            }
            // destructor tilde
            if (e > 0 && isPunct(tokens_[e - 1], "~"))
                name = "~" + name;
            if (isStatementKeyword(tokens_[n - 1].text) ||
                tokens_[n - 1].text == "if" ||
                tokens_[n - 1].text == "while" ||
                tokens_[n - 1].text == "switch" ||
                tokens_[n - 1].text == "for")
                return "";
            return name;
        }
        // operator() / operator+ / operator<< ...: puncts between
        // `operator` and the `(`.
        std::size_t e = n;
        while (e > 0 && tokens_[e - 1].kind == TokenKind::Punct &&
               n - e < 4)
            --e;
        if (e > 0 && isIdent(tokens_[e - 1], "operator")) {
            std::string symbols;
            for (std::size_t q = e; q < n; ++q)
                symbols += tokens_[q].text;
            return "operator" + symbols;
        }
        return "";
    }

    void
    openScopeAt(std::size_t i)
    {
        Scope scope;
        if (pendingActive_ && pendingKind_ != ScopeKind::Block) {
            scope.kind = pendingKind_;
            scope.name = pendingName_;
            if (pendingKind_ == ScopeKind::Loop)
                scope.locals = loopHeaderDecls(i);
            else if (pendingKind_ == ScopeKind::Function)
                scope.locals = std::move(pendingLocals_);
        } else {
            const ScopeKind at = cur().kind;
            if (at == ScopeKind::File || at == ScopeKind::Namespace ||
                at == ScopeKind::Class) {
                std::string name = functionNameBefore(i);
                if (!name.empty()) {
                    scope.kind = ScopeKind::Function;
                    scope.name = std::move(name);
                    scope.locals = functionParamDecls(i);
                }
            }
        }
        pushScope(std::move(scope), i);
    }

    /** Declarations in a loop header `for (...)` directly before the
     *  body brace at i (range-for bindings, for-init declarations). */
    std::vector<Declaration>
    loopHeaderDecls(std::size_t brace)
    {
        if (brace == 0 || !isPunct(tokens_[brace - 1], ")"))
            return {};
        int depth = 0;
        std::size_t p = brace - 1;
        while (true) {
            if (isPunct(tokens_[p], ")"))
                ++depth;
            else if (isPunct(tokens_[p], "(")) {
                if (--depth == 0)
                    break;
            }
            if (p == 0)
                return {};
            --p;
        }
        // Statement starts: after the ( and after each top-level ;
        std::vector<Declaration> out;
        std::size_t start = p + 1;
        int inner = 0;
        for (std::size_t j = p + 1; j < brace - 1; ++j) {
            if (tokens_[j].kind != TokenKind::Punct)
                continue;
            const std::string& t = tokens_[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++inner;
            else if (t == ")" || t == "]" || t == "}")
                --inner;
            else if (t == ";" && inner == 0) {
                if (auto parsed = parseDecl(tokens_, start, j))
                    out.push_back(std::move(parsed->decl));
                start = j + 1;
            }
        }
        if (auto parsed = parseDecl(tokens_, start, brace - 1))
            out.push_back(std::move(parsed->decl));
        return out;
    }

    /** Parameter declarations of the function whose body opens at i. */
    std::vector<Declaration>
    functionParamDecls(std::size_t brace)
    {
        // Re-find the parameter parens (same walk as
        // functionNameBefore).
        std::size_t k = brace;
        while (k > 0 && !isPunct(tokens_[k - 1], ")"))
            --k;
        if (k == 0)
            return {};
        int depth = 0;
        std::size_t p = k - 1;
        while (true) {
            if (isPunct(tokens_[p], ")"))
                ++depth;
            else if (isPunct(tokens_[p], "(")) {
                if (--depth == 0)
                    break;
            }
            if (p == 0)
                return {};
            --p;
        }
        return parseParams(tokens_, p + 1, k - 1);
    }

    void
    pushScope(Scope scope, std::size_t brace)
    {
        scope.beginLine = tokens_[brace].line;
        scope.beginTok = brace;
        scope.parent = open_.back();
        scope.loopDepth = tree_.scopes[open_.back()].loopDepth +
                          (scope.kind == ScopeKind::Loop ? 1 : 0);
        const int index = static_cast<int>(tree_.scopes.size());
        tree_.scopes[open_.back()].children.push_back(index);
        tree_.scopes.push_back(std::move(scope));
        open_.push_back(index);
        entryParen_.push_back(parenDepth_);
        pendingReset();
    }

    void
    closeScopeAt(std::size_t i)
    {
        if (open_.size() <= 1)
            return; // unbalanced `}` from a macro; ignore
        Scope& scope = tree_.scopes[open_.back()];
        scope.endLine = tokens_.empty() ? 1 : tokens_[i].line;
        scope.endTok = i + 1;
        open_.pop_back();
        entryParen_.pop_back();
        pendingReset();
    }

    const std::vector<Token>& tokens_;
    ScopeTree tree_;
    std::vector<int> open_;
    std::vector<int> entryParen_;
    int parenDepth_ = 0;

    bool pendingActive_ = false;
    ScopeKind pendingKind_ = ScopeKind::Block;
    std::string pendingName_;
    bool pendingCtorInit_ = false;
    std::vector<Declaration> pendingLocals_;
};

const char*
kindName(ScopeKind kind)
{
    switch (kind) {
      case ScopeKind::File:
        return "file";
      case ScopeKind::Namespace:
        return "namespace";
      case ScopeKind::Class:
        return "class";
      case ScopeKind::Function:
        return "function";
      case ScopeKind::Lambda:
        return "lambda";
      case ScopeKind::Loop:
        return "loop";
      case ScopeKind::Block:
        return "block";
    }
    return "?";
}

} // namespace

int
ScopeTree::scopeAt(std::size_t tok) const
{
    int best = 0;
    for (std::size_t s = 1; s < scopes.size(); ++s) {
        const Scope& scope = scopes[s];
        if (scope.beginTok <= tok && tok < scope.endTok &&
            scope.beginTok >= scopes[best].beginTok)
            best = static_cast<int>(s);
    }
    return best;
}

const Declaration*
ScopeTree::findLocal(int scope, const std::string& name) const
{
    for (int s = scope; s >= 0; s = scopes[s].parent) {
        for (const Declaration& decl : scopes[s].locals) {
            if (decl.name == name)
                return &decl;
        }
    }
    return nullptr;
}

int
ScopeTree::enclosingFunction(int scope) const
{
    for (int s = scope; s >= 0; s = scopes[s].parent) {
        if (scopes[s].kind == ScopeKind::Function ||
            scopes[s].kind == ScopeKind::Lambda)
            return s;
    }
    return -1;
}

std::string
ScopeTree::dump() const
{
    std::ostringstream oss;
    // Depth-first, children in source order (construction order).
    std::vector<std::pair<int, int>> stack = {{0, 0}};
    while (!stack.empty()) {
        const auto [index, indent] = stack.back();
        stack.pop_back();
        const Scope& scope = scopes[index];
        oss << std::string(static_cast<std::size_t>(indent) * 2, ' ')
            << kindName(scope.kind);
        if (!scope.name.empty())
            oss << " " << scope.name;
        if (scope.kind == ScopeKind::Lambda) {
            oss << " [";
            bool first = true;
            for (const Capture& cap : scope.captures) {
                if (!first)
                    oss << ",";
                first = false;
                if (cap.isDefault)
                    oss << (cap.byRef ? "&" : "=");
                else
                    oss << (cap.byRef ? "&" : "") << cap.name
                        << (cap.isInit ? "=init" : "");
            }
            oss << "]";
        }
        oss << " " << scope.beginLine << "-" << scope.endLine;
        if (scope.kind == ScopeKind::Loop)
            oss << " depth=" << scope.loopDepth;
        oss << "\n";
        for (const Declaration& decl : scope.locals) {
            oss << std::string(static_cast<std::size_t>(indent) * 2 + 2,
                               ' ')
                << (decl.isParameter ? "param " : "decl ") << decl.name
                << " : `" << decl.typeText << "` @" << decl.line << "\n";
        }
        for (auto it = scope.children.rbegin();
             it != scope.children.rend(); ++it)
            stack.push_back({*it, indent + 1});
    }
    return oss.str();
}

ScopeTree
buildScopeTree(const LexedFile& lexed)
{
    return Parser(lexed).run();
}

} // namespace smoothe::lint
