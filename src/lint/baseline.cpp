#include "lint/baseline.hpp"

#include <map>

namespace smoothe::lint {

namespace {

constexpr int kBaselineVersion = 1;

bool
fail(std::string* error, const std::string& message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

std::string
key(const std::string& rule, const std::string& path,
    const std::string& message)
{
    return rule + "\x1f" + path + "\x1f" + message;
}

} // namespace

util::Json
renderBaseline(const std::vector<Finding>& findings)
{
    util::Json entries = util::Json::makeArray();
    for (const Finding& finding : findings) {
        util::Json entry = util::Json::makeObject();
        entry.set("rule", finding.rule);
        entry.set("path", finding.path);
        entry.set("message", finding.message);
        entries.push(std::move(entry));
    }
    util::Json doc = util::Json::makeObject();
    doc.set("version", kBaselineVersion);
    doc.set("suppressions", std::move(entries));
    return doc;
}

bool
parseBaseline(const util::Json& doc, Baseline& out, std::string* error)
{
    if (!doc.isObject())
        return fail(error, "baseline must be a JSON object");
    const util::Json* version = doc.find("version");
    if (version == nullptr || !version->isNumber() ||
        static_cast<int>(version->asNumber()) != kBaselineVersion)
        return fail(error, "baseline version must be 1");
    const util::Json* entries = doc.find("suppressions");
    if (entries == nullptr || !entries->isArray())
        return fail(error, "baseline.suppressions must be an array");
    for (const util::Json& entry : entries->asArray()) {
        if (!entry.isObject())
            return fail(error, "suppression must be an object");
        Baseline::Entry parsed;
        const std::pair<const char*, std::string*> fields[] = {
            {"rule", &parsed.rule},
            {"path", &parsed.path},
            {"message", &parsed.message},
        };
        for (const auto& [field, into] : fields) {
            const util::Json* value = entry.find(field);
            if (value == nullptr || !value->isString())
                return fail(error, std::string("suppression.") + field +
                                       " must be a string");
            *into = value->asString();
        }
        out.entries.push_back(std::move(parsed));
    }
    return true;
}

std::vector<Finding>
applyBaseline(const Baseline& baseline, std::vector<Finding> findings)
{
    std::map<std::string, int> budget;
    for (const Baseline::Entry& entry : baseline.entries)
        ++budget[key(entry.rule, entry.path, entry.message)];
    std::vector<Finding> kept;
    for (Finding& finding : findings) {
        const auto it =
            budget.find(key(finding.rule, finding.path, finding.message));
        if (it != budget.end() && it->second > 0) {
            --it->second;
            continue;
        }
        kept.push_back(std::move(finding));
    }
    return kept;
}

} // namespace smoothe::lint
