#include "lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "util/json.hpp"

namespace smoothe::lint {

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path& path)
{
    const std::string ext = path.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

/** Repo-relative path with forward slashes, for stable report output. */
std::string
normalize(const fs::path& root, const fs::path& path)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    if (ec || rel.empty())
        rel = path;
    return rel.generic_string();
}

FileContext
classify(const std::string& path)
{
    FileContext ctx;
    ctx.path = path;
    const std::size_t dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    ctx.isHeader = ext == ".hpp" || ext == ".h";
    ctx.isLibrary = path.rfind("src/", 0) == 0;
    return ctx;
}

} // namespace

std::vector<Finding>
lintSource(const std::string& path, const std::string& source)
{
    return runRules(classify(path), lex(source));
}

LintReport
lintPaths(const std::string& root, const std::vector<std::string>& paths,
          const LintOptions& options)
{
    LintReport report;
    const fs::path rootPath(root);
    std::vector<fs::path> files;
    for (const std::string& arg : paths) {
        fs::path path(arg);
        if (path.is_relative())
            path = rootPath / path;
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            for (auto it = fs::recursive_directory_iterator(path, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_regular_file() && isSourceFile(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path);
        } else {
            report.errors.push_back("no such file or directory: " + arg);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: lex + scope-parse everything, building the cross-file
    // project model the semantic rules consult.
    struct AnalyzedFile
    {
        std::string path;
        LexedFile lexed;
        ScopeTree scopes;
    };
    std::vector<AnalyzedFile> analyzed;
    ProjectModel model;
    for (const fs::path& file : files) {
        const std::string rel = normalize(rootPath, file);
        const auto source = util::readFile(file.string());
        if (!source) {
            report.errors.push_back("cannot read " + rel);
            continue;
        }
        AnalyzedFile entry;
        entry.path = rel;
        entry.lexed = lex(*source);
        entry.scopes = buildScopeTree(entry.lexed);
        model.addFile(rel, entry.lexed, entry.scopes);
        analyzed.push_back(std::move(entry));
    }

    // Pass 2: run the rules with the finished model.
    for (const AnalyzedFile& entry : analyzed) {
        ++report.filesScanned;
        const FileContext ctx = classify(entry.path);
        std::vector<Finding> found =
            runRules(RuleInputs{ctx, entry.lexed, entry.scopes, &model});
        report.findings.insert(report.findings.end(),
                               std::make_move_iterator(found.begin()),
                               std::make_move_iterator(found.end()));
    }

    if (!options.rules.empty()) {
        const auto enabled = [&](const Finding& finding) {
            return std::find(options.rules.begin(), options.rules.end(),
                             finding.rule) != options.rules.end();
        };
        std::vector<Finding> kept;
        for (Finding& finding : report.findings) {
            if (enabled(finding))
                kept.push_back(std::move(finding));
        }
        report.findings = std::move(kept);
    }
    return report;
}

std::string
renderText(const LintReport& report)
{
    std::ostringstream oss;
    for (const std::string& error : report.errors)
        oss << "smoothe_lint: error: " << error << "\n";
    for (const Finding& finding : report.findings) {
        oss << finding.path << ":" << finding.line << ": [" << finding.rule
            << "] " << finding.message << "\n";
    }
    oss << "smoothe_lint: " << report.findings.size() << " finding"
        << (report.findings.size() == 1 ? "" : "s") << " in "
        << report.filesScanned << " file"
        << (report.filesScanned == 1 ? "" : "s") << "\n";
    return oss.str();
}

util::Json
renderJson(const LintReport& report)
{
    util::Json findings = util::Json::makeArray();
    for (const Finding& finding : report.findings) {
        util::Json entry = util::Json::makeObject();
        entry.set("rule", finding.rule);
        entry.set("path", finding.path);
        entry.set("line", finding.line);
        entry.set("message", finding.message);
        findings.push(std::move(entry));
    }
    util::Json errors = util::Json::makeArray();
    for (const std::string& error : report.errors)
        errors.push(error);
    util::Json out = util::Json::makeObject();
    out.set("files_scanned", report.filesScanned);
    out.set("findings", std::move(findings));
    out.set("errors", std::move(errors));
    return out;
}

} // namespace smoothe::lint
