#include "lint/lexer.hpp"

#include <cctype>

namespace smoothe::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parses `smoothe-lint: allow(a, b)` out of a comment body. */
void
recordSuppression(const std::string& comment, int line, LexedFile& out)
{
    const std::string marker = "smoothe-lint:";
    const std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::size_t pos = comment.find("allow(", at + marker.size());
    if (pos == std::string::npos)
        return;
    pos += 6;
    const std::size_t end = comment.find(')', pos);
    if (end == std::string::npos)
        return;
    std::string name;
    auto flush = [&]() {
        if (!name.empty()) {
            out.suppressions[line].insert(name);
            name.clear();
        }
    };
    for (std::size_t i = pos; i < end; ++i) {
        const char c = comment[i];
        if (c == ',' || std::isspace(static_cast<unsigned char>(c)))
            flush();
        else
            name.push_back(c);
    }
    flush();
}

class Lexer
{
  public:
    explicit Lexer(const std::string& source) : src_(source) {}

    LexedFile
    run()
    {
        bool atLineStart = true;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                atLineStart = true;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
                continue;
            }
            if (c == '/' && peek(1) == '/') {
                lineComment();
                continue;
            }
            if (c == '/' && peek(1) == '*') {
                blockComment();
                atLineStart = false;
                continue;
            }
            if (c == '#' && atLineStart) {
                directive();
                atLineStart = false;
                continue;
            }
            atLineStart = false;
            if (c == 'R' && peek(1) == '"') {
                rawString();
                continue;
            }
            if (c == '"') {
                quoted('"');
                emit(TokenKind::StringLiteral, "");
                continue;
            }
            if (c == '\'') {
                quoted('\'');
                emit(TokenKind::CharLiteral, "");
                continue;
            }
            if (isIdentStart(c)) {
                emit(TokenKind::Identifier, identifier());
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                emit(TokenKind::Number, number());
                continue;
            }
            if (c == ':' && peek(1) == ':') {
                emit(TokenKind::Punct, "::");
                pos_ += 2;
                continue;
            }
            if (c == '-' && peek(1) == '>') {
                emit(TokenKind::Punct, "->");
                pos_ += 2;
                continue;
            }
            emit(TokenKind::Punct, std::string(1, c));
            ++pos_;
        }
        out_.lineCount = line_;
        return std::move(out_);
    }

  private:
    char
    peek(std::size_t ahead) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void
    emit(TokenKind kind, std::string text)
    {
        out_.tokens.push_back(Token{kind, std::move(text), line_});
    }

    std::string
    identifier()
    {
        const std::size_t start = pos_;
        while (pos_ < src_.size() && isIdentBody(src_[pos_]))
            ++pos_;
        return src_.substr(start, pos_ - start);
    }

    std::string
    number()
    {
        const std::size_t start = pos_;
        // Good enough for lint purposes: digits plus the suffix/exponent
        // alphabet, including hex and digit separators.
        while (pos_ < src_.size() &&
               (isIdentBody(src_[pos_]) || src_[pos_] == '.' ||
                src_[pos_] == '\''))
            ++pos_;
        return src_.substr(start, pos_ - start);
    }

    void
    lineComment()
    {
        const std::size_t start = pos_;
        while (pos_ < src_.size() && src_[pos_] != '\n')
            ++pos_;
        recordSuppression(src_.substr(start, pos_ - start), line_, out_);
    }

    void
    blockComment()
    {
        pos_ += 2;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '*' && peek(1) == '/') {
                pos_ += 2;
                return;
            }
            if (src_[pos_] == '\n')
                ++line_;
            ++pos_;
        }
    }

    /** Consumes a quoted literal with backslash escapes (delimiter
     *  already at pos_). */
    void
    quoted(char delim)
    {
        ++pos_;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            if (c == '\n') {
                // Unterminated literal; do not swallow the rest of the
                // file, the rules prefer noisy tokens over silence.
                return;
            }
            ++pos_;
            if (c == delim)
                return;
        }
    }

    void
    rawString()
    {
        pos_ += 2; // R"
        std::string tag;
        while (pos_ < src_.size() && src_[pos_] != '(')
            tag.push_back(src_[pos_++]);
        const std::string close = ")" + tag + "\"";
        const std::size_t end = src_.find(close, pos_);
        const std::size_t stop =
            end == std::string::npos ? src_.size() : end + close.size();
        for (; pos_ < stop; ++pos_) {
            if (src_[pos_] == '\n')
                ++line_;
        }
        emit(TokenKind::StringLiteral, "");
    }

    /** Lexes `#directive` and, for #include, the header name; the rest
     *  of the line goes through the normal token path. */
    void
    directive()
    {
        ++pos_; // '#'
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t'))
            ++pos_;
        if (pos_ >= src_.size() || !isIdentStart(src_[pos_]))
            return;
        const std::string name = identifier();
        emit(TokenKind::Preprocessor, name);
        if (name != "include")
            return;
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t'))
            ++pos_;
        if (pos_ >= src_.size())
            return;
        const char open = src_[pos_];
        const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
        if (close == '\0')
            return;
        const std::size_t start = pos_;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != close &&
               src_[pos_] != '\n')
            ++pos_;
        if (pos_ < src_.size() && src_[pos_] == close)
            ++pos_;
        emit(TokenKind::HeaderName, src_.substr(start, pos_ - start));
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    LexedFile out_;
};

} // namespace

bool
LexedFile::suppressed(const std::string& rule, int line) const
{
    for (const int at : {line, line - 1}) {
        const auto it = suppressions.find(at);
        if (it != suppressions.end() && it->second.count(rule))
            return true;
    }
    return false;
}

LexedFile
lex(const std::string& source)
{
    return Lexer(source).run();
}

} // namespace smoothe::lint
