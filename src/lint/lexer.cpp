#include "lint/lexer.hpp"

#include <cctype>

namespace smoothe::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parses `smoothe-lint: allow(a, b)` out of a comment body. */
void
recordSuppression(const std::string& comment, int line, LexedFile& out)
{
    const std::string marker = "smoothe-lint:";
    const std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::size_t pos = comment.find("allow(", at + marker.size());
    if (pos == std::string::npos)
        return;
    pos += 6;
    const std::size_t end = comment.find(')', pos);
    if (end == std::string::npos)
        return;
    std::string name;
    auto flush = [&]() {
        if (!name.empty()) {
            out.suppressions[line].insert(name);
            name.clear();
        }
    };
    for (std::size_t i = pos; i < end; ++i) {
        const char c = comment[i];
        if (c == ',' || std::isspace(static_cast<unsigned char>(c)))
            flush();
        else
            name.push_back(c);
    }
    flush();
}

class Lexer
{
  public:
    explicit Lexer(const std::string& source) : src_(source) {}

    LexedFile
    run()
    {
        bool atLineStart = true;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                atLineStart = true;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
                continue;
            }
            if (c == '/' && peek(1) == '/') {
                lineComment();
                continue;
            }
            if (c == '/' && peek(1) == '*') {
                blockComment();
                atLineStart = false;
                continue;
            }
            if (c == '#' && atLineStart) {
                directive();
                atLineStart = false;
                continue;
            }
            atLineStart = false;
            {
                bool raw = false;
                const std::size_t pre = literalPrefix(raw);
                if (pre != std::string::npos) {
                    pos_ += pre; // on the R of R"..." or on the quote
                    if (raw) {
                        rawString();
                    } else {
                        const char delim = src_[pos_];
                        std::string text = quoted(delim);
                        emit(delim == '"' ? TokenKind::StringLiteral
                                          : TokenKind::CharLiteral,
                             std::move(text));
                    }
                    continue;
                }
            }
            if (isIdentStart(c)) {
                emit(TokenKind::Identifier, identifier());
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                emit(TokenKind::Number, number());
                continue;
            }
            if (c == ':' && peek(1) == ':') {
                emit(TokenKind::Punct, "::");
                pos_ += 2;
                continue;
            }
            if (c == '-' && peek(1) == '>') {
                emit(TokenKind::Punct, "->");
                pos_ += 2;
                continue;
            }
            emit(TokenKind::Punct, std::string(1, c));
            ++pos_;
        }
        out_.lineCount = line_;
        return std::move(out_);
    }

  private:
    char
    peek(std::size_t ahead) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void
    emit(TokenKind kind, std::string text)
    {
        out_.tokens.push_back(Token{kind, std::move(text), line_});
    }

    std::string
    identifier()
    {
        const std::size_t start = pos_;
        while (pos_ < src_.size() && isIdentBody(src_[pos_]))
            ++pos_;
        return src_.substr(start, pos_ - start);
    }

    /**
     * If pos_ starts a string/char literal — with an optional u8/u/U/L
     * encoding prefix and an optional R raw marker — returns the number
     * of characters before the R or quote and sets `raw`; otherwise
     * returns std::string::npos. Keeps `u8R"(...)"` from lexing as an
     * identifier followed by a broken quoted literal.
     */
    std::size_t
    literalPrefix(bool& raw) const
    {
        std::size_t n = 0;
        if (peek(0) == 'u' && peek(1) == '8')
            n = 2;
        else if (peek(0) == 'u' || peek(0) == 'U' || peek(0) == 'L')
            n = 1;
        if (peek(n) == 'R' && peek(n + 1) == '"') {
            raw = true;
            return n;
        }
        raw = false;
        if (peek(n) == '"' || peek(n) == '\'')
            return n;
        return std::string::npos;
    }

    std::string
    number()
    {
        const std::size_t start = pos_;
        // Good enough for lint purposes: digits plus the suffix/exponent
        // alphabet. A ' is a digit separator only when a digit (or hex
        // letter) follows — `f(1,'x')` must not swallow the char literal.
        while (pos_ < src_.size() &&
               (isIdentBody(src_[pos_]) || src_[pos_] == '.' ||
                (src_[pos_] == '\'' &&
                 std::isalnum(static_cast<unsigned char>(peek(1))))))
            ++pos_;
        return src_.substr(start, pos_ - start);
    }

    void
    lineComment()
    {
        const std::size_t start = pos_;
        while (pos_ < src_.size() && src_[pos_] != '\n')
            ++pos_;
        recordSuppression(src_.substr(start, pos_ - start), line_, out_);
    }

    void
    blockComment()
    {
        const std::size_t start = pos_;
        pos_ += 2;
        while (pos_ < src_.size()) {
            if (src_[pos_] == '*' && peek(1) == '/') {
                pos_ += 2;
                // An inline `/* smoothe-lint: allow(x) */` suppresses on
                // the line the comment ends (same line as the code, or
                // the line above for a comment-only line).
                recordSuppression(src_.substr(start, pos_ - start), line_,
                                  out_);
                return;
            }
            if (src_[pos_] == '\n')
                ++line_;
            ++pos_;
        }
    }

    /** Consumes a quoted literal with backslash escapes (delimiter
     *  already at pos_); returns the text between the delimiters. */
    std::string
    quoted(char delim)
    {
        std::string text;
        ++pos_;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\') {
                // Keep the escape verbatim; a backslash-newline line
                // continuation still advances the line counter so that
                // `//` on the next source line is not misattributed.
                if (peek(1) == '\n')
                    ++line_;
                text.push_back(c);
                if (pos_ + 1 < src_.size())
                    text.push_back(src_[pos_ + 1]);
                pos_ += 2;
                continue;
            }
            if (c == '\n') {
                // Unterminated literal; do not swallow the rest of the
                // file, the rules prefer noisy tokens over silence.
                return text;
            }
            ++pos_;
            if (c == delim)
                return text;
            text.push_back(c);
        }
        return text;
    }

    void
    rawString()
    {
        pos_ += 2; // R"
        std::string tag;
        while (pos_ < src_.size() && src_[pos_] != '(')
            tag.push_back(src_[pos_++]);
        const std::string close = ")" + tag + "\"";
        const std::size_t end = src_.find(close, pos_);
        const std::size_t stop =
            end == std::string::npos ? src_.size() : end + close.size();
        const std::size_t bodyBegin = pos_ + 1;
        const std::size_t bodyEnd =
            end == std::string::npos ? src_.size() : end;
        std::string text =
            bodyEnd > bodyBegin
                ? src_.substr(bodyBegin, bodyEnd - bodyBegin)
                : std::string();
        const int beginLine = line_;
        for (; pos_ < stop; ++pos_) {
            if (src_[pos_] == '\n')
                ++line_;
        }
        out_.tokens.push_back(
            Token{TokenKind::StringLiteral, std::move(text), beginLine});
    }

    /** Lexes `#directive` and, for #include, the header name; the rest
     *  of the line goes through the normal token path. */
    void
    directive()
    {
        ++pos_; // '#'
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t'))
            ++pos_;
        if (pos_ >= src_.size() || !isIdentStart(src_[pos_]))
            return;
        const std::string name = identifier();
        emit(TokenKind::Preprocessor, name);
        if (name != "include")
            return;
        while (pos_ < src_.size() &&
               (src_[pos_] == ' ' || src_[pos_] == '\t'))
            ++pos_;
        if (pos_ >= src_.size())
            return;
        const char open = src_[pos_];
        const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
        if (close == '\0')
            return;
        const std::size_t start = pos_;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != close &&
               src_[pos_] != '\n')
            ++pos_;
        if (pos_ < src_.size() && src_[pos_] == close)
            ++pos_;
        emit(TokenKind::HeaderName, src_.substr(start, pos_ - start));
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    LexedFile out_;
};

} // namespace

bool
LexedFile::suppressed(const std::string& rule, int line) const
{
    for (const int at : {line, line - 1}) {
        const auto it = suppressions.find(at);
        if (it != suppressions.end() && it->second.count(rule))
            return true;
    }
    return false;
}

LexedFile
lex(const std::string& source)
{
    return Lexer(source).run();
}

} // namespace smoothe::lint
