/**
 * @file
 * ILP-based exact extraction: the paper's Eq. (1a)-(1f) formulation and a
 * from-scratch branch-and-bound solver with three strength presets that
 * stand in for CPLEX / SCIP / CBC (see DESIGN.md, substitutions).
 *
 * The model: binary s_i per e-node, continuous t_j per e-class;
 *   (1b) exactly one root e-node,
 *   (1c) s_i <= sum of s_k over each child class (completeness),
 *   (1e/f) topological-order variables forbidding cycles.
 *
 * buildExtractionLp() materializes that model for the dense simplex (used
 * for root relaxation bounds and in tests). The production search in
 * IlpExtractor branches on *class choices* — each branch decides which
 * e-node a needed class uses — with an admissible lower bound
 * (cost so far + sum of per-class minimum costs over open classes),
 * incremental cycle detection, and optional warm starting. Complete runs
 * prove optimality; the wall-clock limit yields best-effort incumbents,
 * matching how the paper's ILP baselines behave under their 15-minute cap.
 */

#ifndef SMOOTHE_ILP_ILP_EXTRACTOR_HPP
#define SMOOTHE_ILP_ILP_EXTRACTOR_HPP

#include "extraction/extractor.hpp"
#include "ilp/lp.hpp"

namespace smoothe::ilp {

/** Solver strength preset (emulating the paper's three ILP baselines). */
enum class IlpPreset {
    Strong, ///< "CPLEX-like": warm start, guided ordering, strong bound
    Medium, ///< "SCIP-like": guided ordering, strong bound
    Weak,   ///< "CBC-like": plain ordering, weak bound
};

/** Returns the table label for a preset ("ILP-strong", ...). */
const char* presetName(IlpPreset preset);

/**
 * Builds the paper's ILP model for a finalized e-graph.
 * Variable layout: s_0..s_{N-1} (binary, relaxed to [0,1]) followed by
 * t_0..t_{M-1} in [0,1]. Acyclicity rows are added only when the class
 * dependency graph actually has cycles.
 */
LinearProgram buildExtractionLp(const eg::EGraph& graph);

/** Branch-and-bound extraction solver. */
class IlpExtractor : public extract::Extractor
{
  public:
    explicit IlpExtractor(IlpPreset preset = IlpPreset::Strong)
        : preset_(preset)
    {}

    std::string name() const override { return presetName(preset_); }

    /**
     * Root LP relaxation value (a global lower bound), or NaN when the
     * model is too large for the dense simplex. Strong preset only uses
     * this for gap reporting; it does not affect the search.
     */
    double rootRelaxation(const eg::EGraph& graph,
                          std::size_t size_cap = 2000) const;

  protected:
    extract::ExtractionResult
    extractImpl(const eg::EGraph& graph,
                const extract::ExtractOptions& options) override;

  private:
    IlpPreset preset_;
};

} // namespace smoothe::ilp

#endif // SMOOTHE_ILP_ILP_EXTRACTOR_HPP
