#include "ilp/ilp_extractor.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <limits>

#include "check/contracts.hpp"
#include "extraction/bottom_up.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::ilp {

using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;
using extract::ExtractionResult;
using extract::ExtractOptions;
using extract::Selection;
using extract::SolveStatus;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

const char*
presetName(IlpPreset preset)
{
    switch (preset) {
      case IlpPreset::Strong: return "ILP-strong";
      case IlpPreset::Medium: return "ILP-medium";
      case IlpPreset::Weak: return "ILP-weak";
    }
    return "ILP";
}

LinearProgram
buildExtractionLp(const EGraph& graph)
{
    LinearProgram lp;
    const std::size_t n = graph.numNodes();
    const std::size_t m = graph.numClasses();

    // s variables (relaxed binaries).
    for (NodeId nid = 0; nid < n; ++nid)
        lp.addVariable(graph.node(nid).cost, 1.0);

    const bool cyclic = !graph.dependencyGraphIsAcyclic();
    // t variables (only useful on cyclic graphs, but harmless otherwise;
    // we add them only when needed to keep the simplex small).
    const std::size_t tBase = n;
    if (cyclic) {
        for (ClassId cls = 0; cls < m; ++cls)
            lp.addVariable(0.0, 1.0);
    }

    // (1b): exactly one root member.
    {
        Constraint c;
        for (NodeId nid : graph.nodesInClass(graph.root()))
            c.terms.emplace_back(nid, 1.0);
        c.sense = Sense::Equal;
        c.rhs = 1.0;
        lp.addConstraint(std::move(c));
    }

    // (1c): s_i <= sum over child class members.
    for (NodeId nid = 0; nid < n; ++nid) {
        // Deduplicate repeated child classes (e.g. x * x).
        std::vector<ClassId> children = graph.node(nid).children;
        std::sort(children.begin(), children.end());
        children.erase(std::unique(children.begin(), children.end()),
                       children.end());
        for (ClassId child : children) {
            Constraint c;
            c.terms.emplace_back(nid, 1.0);
            for (NodeId member : graph.nodesInClass(child))
                c.terms.emplace_back(member, -1.0);
            c.sense = Sense::LessEqual;
            c.rhs = 0.0;
            lp.addConstraint(std::move(c));
        }
    }

    // (1e): t_{ec(i)} - t_j - eps + A * (1 - s_i) >= 0.
    if (cyclic) {
        const double eps = 1.0 / (static_cast<double>(m) + 1.0);
        const double bigA = 1.0 + 2.0 * eps;
        for (NodeId nid = 0; nid < n; ++nid) {
            const ClassId owner = graph.classOf(nid);
            std::vector<ClassId> children = graph.node(nid).children;
            std::sort(children.begin(), children.end());
            children.erase(std::unique(children.begin(), children.end()),
                           children.end());
            for (ClassId child : children) {
                Constraint c;
                c.terms.emplace_back(tBase + owner, 1.0);
                if (child != owner)
                    c.terms.emplace_back(tBase + child, -1.0);
                else
                    continue; // self-loop: s_i can simply never be 1; the
                              // search handles it via cycle detection
                c.terms.emplace_back(nid, -bigA);
                c.sense = Sense::GreaterEqual;
                c.rhs = eps - bigA;
                lp.addConstraint(std::move(c));
            }
        }
    }
    return lp;
}

namespace {

/**
 * Class-choice branch-and-bound. See the header for the scheme.
 */
class BnBSearch
{
  public:
    BnBSearch(const EGraph& graph, IlpPreset preset,
              const ExtractOptions& options)
        : graph_(graph), preset_(preset), options_(options),
          deadline_(options.timeLimitSeconds)
    {
        const std::size_t n = graph.numNodes();
        const std::size_t m = graph.numClasses();

        // Feasibility: a node is usable iff all child classes have some
        // usable node (bottom-up liveness, identical to EGraph::pruned).
        nodeFeasible_.assign(n, false);
        classFeasible_.assign(m, false);
        std::vector<std::size_t> pending(n, 0);
        std::vector<NodeId> queue;
        for (NodeId nid = 0; nid < n; ++nid) {
            std::vector<ClassId> distinct = graph.node(nid).children;
            std::sort(distinct.begin(), distinct.end());
            distinct.erase(
                std::unique(distinct.begin(), distinct.end()),
                distinct.end());
            pending[nid] = distinct.size();
            if (distinct.empty())
                queue.push_back(nid);
        }
        while (!queue.empty()) {
            const NodeId nid = queue.back();
            queue.pop_back();
            if (nodeFeasible_[nid])
                continue;
            nodeFeasible_[nid] = true;
            const ClassId cls = graph.classOf(nid);
            if (classFeasible_[cls])
                continue;
            classFeasible_[cls] = true;
            for (NodeId parent : graph.parents(cls)) {
                if (!nodeFeasible_[parent] && --pending[parent] == 0)
                    queue.push_back(parent);
            }
        }

        // Per-class minimum feasible member cost (admissible lookahead).
        minCost_.assign(m, kInf);
        for (ClassId cls = 0; cls < m; ++cls) {
            for (NodeId nid : graph.nodesInClass(cls)) {
                if (nodeFeasible_[nid])
                    minCost_[cls] =
                        std::min(minCost_[cls], graph.node(nid).cost);
            }
        }

        // Parent-node counts for the cost-splitting bound.
        parentCount_.assign(m, 0);
        for (ClassId cls = 0; cls < m; ++cls)
            parentCount_[cls] = graph.parents(cls).size();

        // Branch member ordering per class.
        memberOrder_.resize(m);
        for (ClassId cls = 0; cls < m; ++cls) {
            auto& order = memberOrder_[cls];
            for (NodeId nid : graph.nodesInClass(cls)) {
                if (nodeFeasible_[nid])
                    order.push_back(nid);
            }
            if (preset_ != IlpPreset::Weak) {
                // Guided: cheapest (node cost + children lookahead) first.
                std::sort(order.begin(), order.end(),
                          [&](NodeId a, NodeId b) {
                              return guidedScore(a) < guidedScore(b);
                          });
            }
        }

        decision_.assign(m, kNoNode);
        neededCount_.assign(m, 0);
    }

    ExtractionResult
    run()
    {
        ExtractionResult result;
        if (!classFeasible_[graph_.root()]) {
            result.status = SolveStatus::Infeasible;
            result.cost = kInf;
            result.seconds = timer_.seconds();
            return result;
        }

        // Warm start (Strong): seed the incumbent with heuristic+.
        if (preset_ == IlpPreset::Strong) {
            extract::FasterBottomUpExtractor heuristic;
            auto warm = heuristic.extract(graph_, {});
            if (warm.ok()) {
                incumbent_ = warm.selection;
                incumbentCost_ = warm.cost;
                if (options_.recordTrace)
                    trace_.push_back({timer_.seconds(), incumbentCost_});
            }
        }

        // Root becomes needed; DFS.
        neededCount_[graph_.root()] = 1;
        open_.push_back(graph_.root());
        complete_ = true;
        {
            obs::Span span("bnb_search", "ilp");
            search();
        }
        // One add after the run, not per node: search() is far too hot.
        obs::counter("ilp.bnb_nodes").add(nodesExplored_);

        result.seconds = timer_.seconds();
        result.trace = std::move(trace_);
        if (incumbentCost_ == kInf) {
            result.status = complete_ ? SolveStatus::Infeasible
                                      : SolveStatus::Failed;
            result.cost = kInf;
            return result;
        }
        result.selection = incumbent_;
        result.cost = incumbentCost_;
        result.status =
            complete_ ? SolveStatus::Optimal : SolveStatus::Feasible;
        return result;
    }

  private:
    double
    guidedScore(NodeId nid) const
    {
        double score = graph_.node(nid).cost;
        for (ClassId child : graph_.node(nid).children) {
            if (minCost_[child] != kInf)
                score += minCost_[child];
        }
        return score;
    }

    /**
     * Cost-splitting claims of a node: for each distinct *fresh* child
     * class (undecided, not yet needed) add minCost / parentNodeCount.
     * Dividing each class's minimum cost among its parent e-nodes keeps
     * the sum of claims over any valid completion <= the completion's
     * true cost, so bounds built from these claims are admissible. On
     * set-cover reductions this recovers the classic
     * sum_e min_s w(s)/|s| lower bound that makes the adversarial
     * instances easy for ILP (Table 4).
     */
    double
    splitClaims(NodeId nid) const
    {
        double claims = 0.0;
        const auto& children = graph_.node(nid).children;
        for (std::size_t i = 0; i < children.size(); ++i) {
            const ClassId child = children[i];
            bool duplicate = false;
            for (std::size_t j = 0; j < i; ++j)
                duplicate = duplicate || children[j] == child;
            if (duplicate)
                continue;
            if (decision_[child] != kNoNode || neededCount_[child] != 0)
                continue; // already paid or separately bounded
            if (minCost_[child] == kInf || parentCount_[child] == 0)
                continue;
            claims += minCost_[child] /
                      static_cast<double>(parentCount_[child]);
        }
        return claims;
    }

    /** Per-open-class lower bound: min over members of cost + claims. */
    double
    refinedClassBound(ClassId cls) const
    {
        double best = kInf;
        for (NodeId nid : memberOrder_[cls]) {
            const double value = graph_.node(nid).cost + splitClaims(nid);
            best = std::min(best, value);
        }
        return best == kInf ? 0.0 : best;
    }

    /** True when deciding cls -> nid closes a cycle among decided classes. */
    bool
    createsCycle(ClassId cls) const
    {
        // DFS from cls through decided choices; revisiting cls = cycle.
        std::vector<ClassId> stack;
        std::vector<bool> visited(graph_.numClasses(), false);
        for (ClassId child : graph_.node(decision_[cls]).children) {
            if (decision_[child] != kNoNode && !visited[child]) {
                visited[child] = true;
                stack.push_back(child);
            }
        }
        while (!stack.empty()) {
            const ClassId cur = stack.back();
            stack.pop_back();
            if (cur == cls)
                return true;
            for (ClassId child : graph_.node(decision_[cur]).children) {
                if (decision_[child] != kNoNode && !visited[child]) {
                    visited[child] = true;
                    stack.push_back(child);
                }
            }
        }
        return false;
    }

    void
    search()
    {
        if (deadline_.expired() || nodesExplored_ > kNodeCap) {
            complete_ = false;
            return;
        }
        ++nodesExplored_;

        if (open_.empty()) {
            // All needed classes decided: candidate solution.
            if (costSoFar_ < incumbentCost_) {
                incumbentCost_ = costSoFar_;
                incumbent_ = Selection::empty(graph_);
                incumbent_.choice = decision_;
                // Clear decisions for classes with neededCount 0 (none by
                // construction, decisions map only needed classes).
                trace_.push_back({timer_.seconds(), incumbentCost_});
            }
            return;
        }

        // Pick the most recently needed open class (stack order keeps the
        // search localized).
        const ClassId cls = open_.back();
        open_.pop_back();

        // Cost-splitting bound over the remaining open classes (see
        // splitClaims); Weak skips it, emulating a bound-less solver.
        double openBound = 0.0;
        if (preset_ != IlpPreset::Weak) {
            for (ClassId openCls : open_)
                openBound += refinedClassBound(openCls);
        }

        // Dynamic member ordering (Strong/Medium): try the member with
        // the smallest *marginal* cost first — children already decided
        // (e.g. an already-bought set in a cover instance) are free, so
        // reuse-heavy branches are explored before paying for new
        // subtrees. This is what makes the CSE-rich adversarial
        // reductions tractable.
        std::vector<NodeId> order = memberOrder_[cls];
        if (preset_ != IlpPreset::Weak) {
            std::vector<double> marginal(order.size());
            for (std::size_t i = 0; i < order.size(); ++i) {
                double score = graph_.node(order[i]).cost;
                for (ClassId child : graph_.node(order[i]).children) {
                    if (decision_[child] == kNoNode &&
                        neededCount_[child] == 0 &&
                        minCost_[child] != kInf)
                        score += minCost_[child];
                }
                marginal[i] = score;
            }
            std::vector<std::size_t> perm(order.size());
            for (std::size_t i = 0; i < perm.size(); ++i)
                perm[i] = i;
            std::sort(perm.begin(), perm.end(),
                      [&](std::size_t a, std::size_t b) {
                          return marginal[a] < marginal[b];
                      });
            std::vector<NodeId> sorted(order.size());
            for (std::size_t i = 0; i < perm.size(); ++i)
                sorted[i] = order[perm[i]];
            order = std::move(sorted);
        }

        for (NodeId nid : order) {
            const double nodeCost = graph_.node(nid).cost;

            // Bound: decided cost + this node + its fresh-child claims +
            // the refined bound on every other open class.
            const double bound =
                preset_ == IlpPreset::Weak
                    ? costSoFar_ + nodeCost
                    : costSoFar_ + nodeCost + splitClaims(nid) + openBound;
            if (bound >= incumbentCost_)
                continue;

            // Apply.
            decision_[cls] = nid;
            if (createsCycle(cls)) {
                decision_[cls] = kNoNode;
                continue;
            }
            costSoFar_ += nodeCost;
            std::vector<ClassId> newlyOpened;
            for (ClassId child : graph_.node(nid).children) {
                if (++neededCount_[child] == 1 &&
                    decision_[child] == kNoNode) {
                    open_.push_back(child);
                    newlyOpened.push_back(child);
                }
            }

            search();

            // Undo.
            for (auto it = newlyOpened.rbegin(); it != newlyOpened.rend();
                 ++it) {
                SMOOTHE_DCHECK(!open_.empty() && open_.back() == *it,
                               "branch bookkeeping out of sync");
                open_.pop_back();
            }
            for (ClassId child : graph_.node(nid).children)
                --neededCount_[child];
            costSoFar_ -= nodeCost;
            decision_[cls] = kNoNode;

            if (deadline_.expired() || nodesExplored_ > kNodeCap) {
                complete_ = false;
                break;
            }
        }
        open_.push_back(cls);
    }

    static constexpr std::size_t kNodeCap = 200000000;

    const EGraph& graph_;
    IlpPreset preset_;
    ExtractOptions options_;
    util::Timer timer_;
    util::Deadline deadline_;

    std::vector<bool> nodeFeasible_;
    std::vector<bool> classFeasible_;
    std::vector<double> minCost_;
    std::vector<std::size_t> parentCount_;
    std::vector<std::vector<NodeId>> memberOrder_;

    std::vector<NodeId> decision_;
    std::vector<std::uint32_t> neededCount_;
    std::vector<ClassId> open_;
    double costSoFar_ = 0.0;

    Selection incumbent_;
    double incumbentCost_ = kInf;
    std::vector<extract::AnytimePoint> trace_;
    bool complete_ = true;
    std::size_t nodesExplored_ = 0;
};

/**
 * LP-based branch-and-bound: solves the relaxation with the simplex and
 * branches on the most fractional s variable (classic MILP scheme, what
 * commercial solvers do modulo cuts). Only viable for models the dense
 * tableau can handle, so the caller gates it by size; it is decisive on
 * the adversarial NP-hard reductions where the LP bound is near-tight
 * and the combinatorial bound is not (Table 4).
 */
class LpBnB
{
  public:
    LpBnB(const EGraph& graph, const ExtractOptions& options,
          LinearProgram base)
        : graph_(graph), options_(options),
          deadline_(options.timeLimitSeconds), base_(std::move(base))
    {}

    ExtractionResult
    run()
    {
        ExtractionResult result;

        // Warm incumbent so the very first bound can prune.
        extract::FasterBottomUpExtractor heuristic;
        auto warm = heuristic.extract(graph_, {});
        if (warm.ok()) {
            incumbent_ = warm.selection;
            incumbentCost_ = warm.cost;
            if (options_.recordTrace)
                trace_.push_back({timer_.seconds(), incumbentCost_});
        }

        struct Node
        {
            std::vector<std::pair<std::size_t, int>> fixings;
            double bound;
        };
        // Best-first by LP bound.
        auto compare = [](const Node& a, const Node& b) {
            return a.bound > b.bound;
        };
        std::priority_queue<Node, std::vector<Node>, decltype(compare)>
            frontier(compare);
        frontier.push({{}, 0.0});

        bool complete = true;
        std::size_t solved = 0;
        while (!frontier.empty()) {
            if (deadline_.expired() || solved > kNodeCap) {
                complete = false;
                break;
            }
            Node node = frontier.top();
            frontier.pop();
            if (node.bound >= incumbentCost_ - 1e-9)
                continue; // bound computed at push time still valid

            const LpResult relaxed = solveNode(node.fixings);
            ++solved;
            if (relaxed.status == LpStatus::Infeasible)
                continue;
            if (relaxed.status != LpStatus::Optimal) {
                complete = false; // iteration limit: treat as unknown
                continue;
            }
            if (relaxed.objective >= incumbentCost_ - 1e-9)
                continue;

            // Most fractional s variable.
            std::size_t branchVar = graph_.numNodes();
            double worst = 1e-6;
            for (std::size_t i = 0; i < graph_.numNodes(); ++i) {
                const double value = relaxed.values[i];
                const double fractional =
                    std::min(value, 1.0 - value);
                if (fractional > worst) {
                    worst = fractional;
                    branchVar = i;
                }
            }
            if (branchVar == graph_.numNodes()) {
                // Integral: candidate solution.
                Selection sel = roundedSelection(relaxed.values);
                if (sel.chosen(graph_.root()) &&
                    extract::validate(graph_, sel).ok()) {
                    const double cost = extract::dagCost(graph_, sel);
                    if (cost < incumbentCost_) {
                        incumbentCost_ = cost;
                        incumbent_ = std::move(sel);
                        trace_.push_back({timer_.seconds(),
                                          incumbentCost_});
                    }
                }
                continue;
            }
            for (int value : {1, 0}) {
                Node child;
                child.fixings = node.fixings;
                child.fixings.emplace_back(branchVar, value);
                child.bound = relaxed.objective;
                frontier.push(std::move(child));
            }
        }

        obs::counter("ilp.bnb_nodes").add(solved);

        result.seconds = timer_.seconds();
        result.trace = std::move(trace_);
        if (incumbentCost_ == kInf) {
            result.status =
                complete ? SolveStatus::Infeasible : SolveStatus::Failed;
            result.cost = kInf;
            return result;
        }
        result.selection = incumbent_;
        result.cost = incumbentCost_;
        result.status =
            complete ? SolveStatus::Optimal : SolveStatus::Feasible;
        return result;
    }

  private:
    static constexpr std::size_t kNodeCap = 20000;

    LpResult
    solveNode(const std::vector<std::pair<std::size_t, int>>& fixings)
    {
        LinearProgram lp = base_;
        for (const auto& [var, value] : fixings) {
            if (value == 0) {
                lp.setUpperBound(var, 0.0);
            } else {
                Constraint atLeastOne;
                atLeastOne.terms.emplace_back(var, 1.0);
                atLeastOne.sense = Sense::GreaterEqual;
                atLeastOne.rhs = 1.0;
                lp.addConstraint(std::move(atLeastOne));
            }
        }
        SimplexOptions simplexOptions;
        simplexOptions.maxIterations = 20000;
        simplexOptions.timeLimitSeconds = deadline_.remaining();
        return solveSimplex(lp, simplexOptions);
    }

    Selection
    roundedSelection(const std::vector<double>& values) const
    {
        // Chosen nodes are the s variables at 1; walk from the root and
        // keep only needed classes (ties broken by first chosen member).
        Selection sel = Selection::empty(graph_);
        std::vector<NodeId> chosenPerClass(graph_.numClasses(), kNoNode);
        for (NodeId nid = 0; nid < graph_.numNodes(); ++nid) {
            if (values[nid] > 0.5 &&
                chosenPerClass[graph_.classOf(nid)] == kNoNode)
                chosenPerClass[graph_.classOf(nid)] = nid;
        }
        if (chosenPerClass[graph_.root()] == kNoNode)
            return sel;
        std::vector<ClassId> worklist{graph_.root()};
        sel.choice[graph_.root()] = chosenPerClass[graph_.root()];
        while (!worklist.empty()) {
            const ClassId cls = worklist.back();
            worklist.pop_back();
            for (ClassId child : graph_.node(sel.choice[cls]).children) {
                if (sel.choice[child] != kNoNode)
                    continue;
                if (chosenPerClass[child] == kNoNode) {
                    sel.choice[graph_.root()] = kNoNode;
                    return sel; // incomplete rounding
                }
                sel.choice[child] = chosenPerClass[child];
                worklist.push_back(child);
            }
        }
        return sel;
    }

    const EGraph& graph_;
    ExtractOptions options_;
    util::Timer timer_;
    util::Deadline deadline_;
    LinearProgram base_;

    Selection incumbent_;
    double incumbentCost_ = kInf;
    std::vector<extract::AnytimePoint> trace_;
};

} // namespace

ExtractionResult
IlpExtractor::extractImpl(const EGraph& graph,
                          const ExtractOptions& options)
{
    // Small models: real LP-based branch-and-bound (Strong and Medium
    // presets; Medium gets a lower size cap, mimicking open-source
    // solvers giving up earlier). The dense tableau costs
    // O(rows^2 * cols) per solve, so the gate looks at the actual LP
    // dimensions, not just the graph size. Everything else: the
    // combinatorial class-choice search.
    static obs::Logger logger("ilp");
    obs::Span extractSpan("ilp.extract", "ilp");
    if (preset_ != IlpPreset::Weak) {
        const double capScale = preset_ == IlpPreset::Strong ? 1.0 : 0.5;
        const LinearProgram lp = buildExtractionLp(graph);
        if (lp.numVariables() <=
                static_cast<std::size_t>(1100 * capScale) &&
            lp.numConstraints() <=
                static_cast<std::size_t>(1300 * capScale)) {
            logger.debug("LP B&B: %zu vars, %zu constraints",
                         lp.numVariables(), lp.numConstraints());
            LpBnB solver(graph, options, lp);
            ExtractionResult result = solver.run();
            if (result.ok() || result.status == SolveStatus::Infeasible)
                return result;
            logger.debug("LP B&B failed; falling back to "
                         "combinatorial search");
            // fall through to the combinatorial search on failure
        } else {
            logger.debug("LP too large (%zu vars, %zu constraints); "
                         "using combinatorial search",
                         lp.numVariables(), lp.numConstraints());
        }
    }

    BnBSearch search(graph, preset_, options);
    ExtractionResult result = search.run();
    if (result.ok()) {
        // The search stores raw decisions; sanitize to needed classes only.
        Selection cleaned = Selection::empty(graph);
        std::vector<ClassId> worklist{graph.root()};
        cleaned.choice[graph.root()] = result.selection.choice[graph.root()];
        while (!worklist.empty()) {
            const ClassId cls = worklist.back();
            worklist.pop_back();
            for (ClassId child :
                 graph.node(cleaned.choice[cls]).children) {
                if (cleaned.choice[child] == kNoNode) {
                    cleaned.choice[child] = result.selection.choice[child];
                    worklist.push_back(child);
                }
            }
        }
        result.selection = std::move(cleaned);
        result.cost = extract::dagCost(graph, result.selection);
    }
    return result;
}

double
IlpExtractor::rootRelaxation(const EGraph& graph, std::size_t size_cap) const
{
    const LinearProgram lp = buildExtractionLp(graph);
    if (lp.numVariables() > size_cap || lp.numConstraints() > size_cap)
        return std::numeric_limits<double>::quiet_NaN();
    const LpResult result = solveSimplex(lp);
    if (result.status != LpStatus::Optimal)
        return std::numeric_limits<double>::quiet_NaN();
    return result.objective;
}

} // namespace smoothe::ilp
