/**
 * @file
 * A small linear-programming toolkit: model builder plus a two-phase
 * dense-tableau primal simplex solver with Bland's anti-cycling rule.
 *
 * This is the LP engine underneath the branch-and-bound MILP solver that
 * stands in for CPLEX/SCIP/CBC in the paper's baselines. It is exact but
 * dense, so it is reserved for root-relaxation bounds and moderate-size
 * models; the combinatorial bound in bnb.cpp covers the rest.
 */

#ifndef SMOOTHE_ILP_LP_HPP
#define SMOOTHE_ILP_LP_HPP

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace smoothe::ilp {

/** Constraint sense. */
enum class Sense { LessEqual, GreaterEqual, Equal };

/** A sparse linear constraint sum(coeff * var) sense rhs. */
struct Constraint
{
    std::vector<std::pair<std::size_t, double>> terms;
    Sense sense = Sense::LessEqual;
    double rhs = 0.0;
};

/** A minimization LP over non-negative, optionally upper-bounded vars. */
class LinearProgram
{
  public:
    /**
     * Adds a variable with objective coefficient and bounds [0, upper].
     * @param upper use kUnbounded for no upper bound
     * @return the variable index
     */
    std::size_t addVariable(double objective,
                            double upper = kUnbounded);

    /** Adds a constraint; returns its index. */
    std::size_t addConstraint(Constraint constraint);

    std::size_t numVariables() const { return objective_.size(); }
    std::size_t numConstraints() const { return constraints_.size(); }

    /** Tightens a variable's upper bound (used by branch-and-bound). */
    void setUpperBound(std::size_t var, double upper) { upper_[var] = upper; }

    const std::vector<double>& objective() const { return objective_; }
    const std::vector<double>& upperBounds() const { return upper_; }
    const std::vector<Constraint>& constraints() const
    {
        return constraints_;
    }

    static constexpr double kUnbounded =
        std::numeric_limits<double>::infinity();

  private:
    std::vector<double> objective_;
    std::vector<double> upper_;
    std::vector<Constraint> constraints_;
};

/** Solver outcome. */
enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/** LP solution. */
struct LpResult
{
    LpStatus status = LpStatus::IterationLimit;
    double objective = 0.0;
    std::vector<double> values;
};

/** Options for the simplex solver. */
struct SimplexOptions
{
    std::size_t maxIterations = 200000;
    double tolerance = 1e-9;
    /** Wall-clock budget in seconds; <= 0 means unlimited. The solver
     *  returns IterationLimit when it runs out mid-solve. */
    double timeLimitSeconds = 0.0;
};

/**
 * Solves the LP with the two-phase primal simplex method.
 * Upper bounds are expanded into explicit constraints, so this is best for
 * models up to a few thousand rows/columns.
 */
LpResult solveSimplex(const LinearProgram& lp,
                      const SimplexOptions& options = {});

} // namespace smoothe::ilp

#endif // SMOOTHE_ILP_LP_HPP
