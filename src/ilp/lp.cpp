#include "ilp/lp.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace smoothe::ilp {

std::size_t
LinearProgram::addVariable(double objective, double upper)
{
    objective_.push_back(objective);
    upper_.push_back(upper);
    return objective_.size() - 1;
}

std::size_t
LinearProgram::addConstraint(Constraint constraint)
{
    constraints_.push_back(std::move(constraint));
    return constraints_.size() - 1;
}

namespace {

/**
 * Dense two-phase simplex on the tableau
 *   [ A | I_slack/artificial | b ]
 * Rows are equalities after slack/surplus insertion. Phase 1 minimizes the
 * artificial sum; phase 2 minimizes the real objective. Bland's rule
 * guarantees termination.
 */
class Tableau
{
  public:
    Tableau(const LinearProgram& lp, const SimplexOptions& options)
        : options_(options)
    {
        // Expand upper bounds into explicit x_j <= u_j rows.
        std::vector<Constraint> rows = lp.constraints();
        for (std::size_t j = 0; j < lp.numVariables(); ++j) {
            if (lp.upperBounds()[j] != LinearProgram::kUnbounded) {
                Constraint c;
                c.terms.emplace_back(j, 1.0);
                c.sense = Sense::LessEqual;
                c.rhs = lp.upperBounds()[j];
                rows.push_back(std::move(c));
            }
        }

        numStructural_ = lp.numVariables();
        const std::size_t m = rows.size();

        // Count slacks and artificials.
        std::size_t slackCount = 0;
        for (const Constraint& row : rows) {
            if (row.sense != Sense::Equal)
                ++slackCount;
        }
        numSlack_ = slackCount;
        numArtificial_ = m; // worst case; unused ones stay nonbasic
        cols_ = numStructural_ + numSlack_ + numArtificial_ + 1;
        rowsCount_ = m;

        tableau_.assign(m * cols_, 0.0);
        basis_.assign(m, 0);

        std::size_t slackAt = numStructural_;
        const std::size_t artBase = numStructural_ + numSlack_;
        artificialUsed_.assign(m, false);
        for (std::size_t i = 0; i < m; ++i) {
            Constraint row = rows[i];
            double rhs = row.rhs;
            // Normalize to rhs >= 0 by negating the row when needed.
            double sign = 1.0;
            if (rhs < 0.0) {
                sign = -1.0;
                rhs = -rhs;
                if (row.sense == Sense::LessEqual)
                    row.sense = Sense::GreaterEqual;
                else if (row.sense == Sense::GreaterEqual)
                    row.sense = Sense::LessEqual;
            }
            for (const auto& [var, coeff] : row.terms)
                at(i, var) += sign * coeff;
            at(i, cols_ - 1) = rhs;

            if (row.sense == Sense::LessEqual) {
                at(i, slackAt) = 1.0;
                basis_[i] = slackAt;
                ++slackAt;
            } else if (row.sense == Sense::GreaterEqual) {
                at(i, slackAt) = -1.0;
                ++slackAt;
                at(i, artBase + i) = 1.0;
                basis_[i] = artBase + i;
                artificialUsed_[i] = true;
            } else {
                at(i, artBase + i) = 1.0;
                basis_[i] = artBase + i;
                artificialUsed_[i] = true;
            }
        }
    }

    LpResult
    solve(const std::vector<double>& objective)
    {
        LpResult result;

        // Phase 1: minimize sum of artificials.
        bool needPhase1 = false;
        for (bool used : artificialUsed_)
            needPhase1 = needPhase1 || used;
        if (needPhase1) {
            std::vector<double> phase1(cols_ - 1, 0.0);
            const std::size_t artBase = numStructural_ + numSlack_;
            for (std::size_t i = 0; i < rowsCount_; ++i) {
                if (artificialUsed_[i])
                    phase1[artBase + i] = 1.0;
            }
            const LpStatus status = optimize(phase1, /*phase1=*/true);
            if (status == LpStatus::IterationLimit) {
                result.status = status;
                return result;
            }
            // Infeasible when artificials cannot be driven to zero.
            double artValue = 0.0;
            for (std::size_t i = 0; i < rowsCount_; ++i) {
                if (basis_[i] >= artBase)
                    artValue += at(i, cols_ - 1);
            }
            if (artValue > 1e-7) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            // Drive remaining basic artificials out of the basis.
            for (std::size_t i = 0; i < rowsCount_; ++i) {
                if (basis_[i] < artBase)
                    continue;
                bool pivoted = false;
                for (std::size_t j = 0; j < artBase && !pivoted; ++j) {
                    if (std::fabs(at(i, j)) > options_.tolerance) {
                        pivot(i, j);
                        pivoted = true;
                    }
                }
                // A fully zero row is redundant; leave the artificial
                // basic at value zero (harmless).
            }
        }

        // Phase 2: real objective (artificial columns are frozen out).
        std::vector<double> phase2(cols_ - 1, 0.0);
        for (std::size_t j = 0;
             j < objective.size() && j < numStructural_; ++j)
            phase2[j] = objective[j];
        const LpStatus status = optimize(phase2, /*phase1=*/false);
        result.status = status;
        if (status != LpStatus::Optimal)
            return result;

        result.values.assign(numStructural_, 0.0);
        for (std::size_t i = 0; i < rowsCount_; ++i) {
            if (basis_[i] < numStructural_)
                result.values[basis_[i]] = at(i, cols_ - 1);
        }
        result.objective = 0.0;
        for (std::size_t j = 0; j < numStructural_; ++j)
            result.objective += phase2[j] * result.values[j];
        return result;
    }

  private:
    double& at(std::size_t r, std::size_t c)
    {
        return tableau_[r * cols_ + c];
    }

    void
    pivot(std::size_t pivotRow, std::size_t pivotCol)
    {
        // Each pivot rewrites the whole O(rows x cols) tableau, so one
        // relaxed add per call is noise by comparison.
        static obs::Counter& pivots = obs::counter("ilp.simplex_pivots");
        pivots.add(1);
        const double pivotValue = at(pivotRow, pivotCol);
        SMOOTHE_DCHECK(std::fabs(pivotValue) > 0.0, "degenerate simplex pivot");
        const double inv = 1.0 / pivotValue;
        for (std::size_t j = 0; j < cols_; ++j)
            at(pivotRow, j) *= inv;
        for (std::size_t i = 0; i < rowsCount_; ++i) {
            if (i == pivotRow)
                continue;
            const double factor = at(i, pivotCol);
            if (std::fabs(factor) <= options_.tolerance * 1e-3)
                continue;
            for (std::size_t j = 0; j < cols_; ++j)
                at(i, j) -= factor * at(pivotRow, j);
        }
        basis_[pivotRow] = pivotCol;
    }

    /** Runs simplex iterations for the given objective. */
    LpStatus
    optimize(const std::vector<double>& objective, bool phase1)
    {
        const util::Deadline deadline(options_.timeLimitSeconds);
        const std::size_t artBase = numStructural_ + numSlack_;
        // Reduced costs are recomputed per iteration from the objective
        // and basis (slower than maintaining an objective row, but simple
        // and numerically self-correcting).
        for (std::size_t iter = 0; iter < options_.maxIterations; ++iter) {
            if ((iter & 63u) == 0 && deadline.expired())
                return LpStatus::IterationLimit;
            // Compute simplex multipliers implicitly via reduced costs:
            // rc_j = c_j - c_B^T B^{-1} A_j. With a full tableau, B^{-1}A
            // is the tableau itself, so rc_j = c_j - sum_i c_basis(i) *
            // tableau[i][j].
            std::size_t entering = cols_; // none
            const std::size_t limit = phase1 ? cols_ - 1 : artBase;
            for (std::size_t j = 0; j < limit; ++j) {
                double rc = j < objective.size() ? objective[j] : 0.0;
                for (std::size_t i = 0; i < rowsCount_; ++i) {
                    const double coeff = at(i, j);
                    if (coeff == 0.0)
                        continue;
                    const std::size_t bj = basis_[i];
                    const double cb =
                        bj < objective.size() ? objective[bj] : 0.0;
                    if (cb != 0.0)
                        rc -= cb * coeff;
                }
                if (rc < -1e-7) {
                    entering = j; // Bland: first improving column
                    break;
                }
            }
            if (entering == cols_)
                return LpStatus::Optimal;

            // Ratio test (Bland: smallest basis index on ties).
            std::size_t leaving = rowsCount_;
            double bestRatio = 0.0;
            for (std::size_t i = 0; i < rowsCount_; ++i) {
                const double coeff = at(i, entering);
                if (coeff > options_.tolerance) {
                    const double ratio = at(i, cols_ - 1) / coeff;
                    if (leaving == rowsCount_ ||
                        ratio < bestRatio - 1e-12 ||
                        (std::fabs(ratio - bestRatio) <= 1e-12 &&
                         basis_[i] < basis_[leaving])) {
                        leaving = i;
                        bestRatio = ratio;
                    }
                }
            }
            if (leaving == rowsCount_)
                return LpStatus::Unbounded;
            pivot(leaving, entering);
        }
        return LpStatus::IterationLimit;
    }

    SimplexOptions options_;
    std::size_t numStructural_ = 0;
    std::size_t numSlack_ = 0;
    std::size_t numArtificial_ = 0;
    std::size_t rowsCount_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> tableau_;
    std::vector<std::size_t> basis_;
    std::vector<bool> artificialUsed_;
};

} // namespace

LpResult
solveSimplex(const LinearProgram& lp, const SimplexOptions& options)
{
    Tableau tableau(lp, options);
    return tableau.solve(lp.objective());
}

} // namespace smoothe::ilp
