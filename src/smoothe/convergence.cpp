#include "smoothe/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "obs/report.hpp"

namespace smoothe::core {

namespace {

double
sanitize(double value)
{
    return std::isfinite(value) ? value : -1.0;
}

} // namespace

ConvergenceRecorder::ConvergenceRecorder(std::size_t stride,
                                         std::size_t capacity)
    : stride_(stride == 0 ? 1 : stride), capacity_(capacity)
{
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

bool
ConvergenceRecorder::wants(std::size_t iteration) const
{
    return capacity_ > 0 && iteration % stride_ == 0;
}

void
ConvergenceRecorder::record(const ConvergencePoint& point)
{
    if (capacity_ == 0)
        return;
    if (ring_.size() < capacity_) {
        ring_.push_back(point);
        return;
    }
    ring_[next_] = point;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
}

std::size_t
ConvergenceRecorder::size() const
{
    return ring_.size();
}

std::vector<ConvergencePoint>
ConvergenceRecorder::ordered() const
{
    std::vector<ConvergencePoint> out;
    out.reserve(ring_.size());
    // next_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

void
ConvergenceRecorder::dumpTo(obs::Report& report, const std::string& name,
                            std::size_t run) const
{
    obs::Series& series = report.series(
        name, {"run", "iteration", "loss", "softCost", "sampledCost",
               "gradNorm", "wallSeconds"});
    for (const ConvergencePoint& point : ordered()) {
        series.addRow({static_cast<double>(run),
                       static_cast<double>(point.iteration),
                       sanitize(point.loss), sanitize(point.softCost),
                       sanitize(point.sampledCost),
                       sanitize(point.gradNorm),
                       sanitize(point.wallSeconds)});
    }
}

} // namespace smoothe::core
