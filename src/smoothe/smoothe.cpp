#include "smoothe/smoothe.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>

#include "autodiff/adam.hpp"
#include "autodiff/program.hpp"
#include "autodiff/tape.hpp"
#include "check/contracts.hpp"
#include "obs/obs.hpp"
#include "smoothe/sampler.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::core {

using ad::MatrixEntry;
using ad::Param;
using ad::Tape;
using ad::Tensor;
using ad::VarId;
using eg::ClassId;
using eg::EGraph;
using eg::kNoNode;
using eg::NodeId;
using extract::ExtractionResult;
using extract::ExtractOptions;
using extract::Selection;
using extract::SolveStatus;
using tensor::Arena;
using tensor::SegmentIndex;

const char*
toString(Assumption assumption)
{
    switch (assumption) {
      case Assumption::Independent: return "independent";
      case Assumption::Correlated: return "correlated";
      case Assumption::Hybrid: return "hybrid";
    }
    return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Immutable per-graph index structures shared by all iterations. */
struct Prepared
{
    std::size_t numNodes = 0;
    std::size_t numClasses = 0;
    ClassId root = eg::kNoClass;

    SegmentIndex classMembers;           ///< class -> member node columns
    SegmentIndex parentIndex;            ///< class -> distinct parent nodes
    std::vector<std::uint32_t> node2class;

    Tensor rootMask;    ///< 1 x M, 1 at root
    Tensor notRootMask; ///< 1 x M, 0 at root

    struct Scc
    {
        std::size_t dim = 0;
        std::vector<MatrixEntry> entries;
    };
    std::vector<Scc> sccs;

    std::size_t propIterations = 0;

    static Prepared build(const EGraph& graph, const SmoothEConfig& config);

    /**
     * Rebuilds every index structure for a grown graph without moving
     * the container objects a compiled Program's op pointers refer to
     * (classMembers, parentIndex, node2class, each sccs[k].entries).
     * @return true when the recorded op sequence is preserved — same
     * SCC count and same propagation depth (the previous depth is kept
     * when the new auto depth does not exceed it, so a slightly deeper
     * graph never forces a re-record) — i.e. Program::patch can apply.
     */
    bool rebuildInPlace(const EGraph& graph, const SmoothEConfig& config);
};

Prepared
Prepared::build(const EGraph& graph, const SmoothEConfig& config)
{
    Prepared prep;
    const std::size_t n = graph.numNodes();
    const std::size_t m = graph.numClasses();
    prep.numNodes = n;
    prep.numClasses = m;
    prep.root = graph.root();

    // class -> member nodes.
    std::vector<std::uint32_t> nodeClass(n);
    for (NodeId nid = 0; nid < n; ++nid)
        nodeClass[nid] = graph.classOf(nid);
    prep.classMembers = SegmentIndex::fromAssignment(nodeClass, m);
    prep.node2class = std::move(nodeClass);

    // class -> distinct parent nodes (already deduplicated by EGraph).
    prep.parentIndex.offsets.assign(m + 1, 0);
    for (ClassId cls = 0; cls < m; ++cls) {
        prep.parentIndex.offsets[cls + 1] =
            prep.parentIndex.offsets[cls] +
            static_cast<std::uint32_t>(graph.parents(cls).size());
    }
    prep.parentIndex.items.reserve(prep.parentIndex.offsets[m]);
    for (ClassId cls = 0; cls < m; ++cls) {
        for (NodeId parent : graph.parents(cls))
            prep.parentIndex.items.push_back(parent);
    }

    prep.rootMask = Tensor(1, m);
    prep.notRootMask = Tensor(1, m, 1.0f);
    prep.rootMask.at(0, prep.root) = 1.0f;
    prep.notRootMask.at(0, prep.root) = 0.0f;

    // NOTEARS structure.
    auto addScc = [&](const std::vector<ClassId>& classes) {
        Scc scc;
        scc.dim = classes.size();
        std::vector<std::uint32_t> local(m,
                                         std::numeric_limits<
                                             std::uint32_t>::max());
        for (std::size_t i = 0; i < classes.size(); ++i)
            local[classes[i]] = static_cast<std::uint32_t>(i);
        for (ClassId cls : classes) {
            for (NodeId nid : graph.nodesInClass(cls)) {
                std::vector<ClassId> children = graph.node(nid).children;
                std::sort(children.begin(), children.end());
                children.erase(
                    std::unique(children.begin(), children.end()),
                    children.end());
                for (ClassId child : children) {
                    if (local[child] ==
                        std::numeric_limits<std::uint32_t>::max())
                        continue;
                    MatrixEntry entry;
                    entry.column = nid;
                    entry.position = local[cls] * scc.dim + local[child];
                    scc.entries.push_back(entry);
                }
            }
        }
        prep.sccs.push_back(std::move(scc));
    };

    if (config.sccDecomposition) {
        // Only non-trivial SCCs (size > 1, or self-loop classes) can hold
        // cycles; everything else needs no penalty (Section 4.3).
        std::vector<bool> selfLoop(m, false);
        for (NodeId nid = 0; nid < n; ++nid) {
            for (ClassId child : graph.node(nid).children) {
                if (child == graph.classOf(nid))
                    selfLoop[child] = true;
            }
        }
        for (const auto& scc : graph.classSccs()) {
            if (scc.size() > 1 || selfLoop[scc.front()])
                addScc(scc);
        }
    } else if (!graph.dependencyGraphIsAcyclic()) {
        // Ablation: one dense M x M transition matrix for the whole graph.
        std::vector<ClassId> all(m);
        for (ClassId cls = 0; cls < m; ++cls)
            all[cls] = cls;
        addScc(all);
    }

    // Propagation depth: BFS levels of the class dependency graph from the
    // root (probabilities flow root -> leaves), clamped.
    if (config.propagationIterations > 0) {
        prep.propIterations = config.propagationIterations;
    } else {
        std::vector<std::uint32_t> level(
            m, std::numeric_limits<std::uint32_t>::max());
        std::vector<ClassId> frontier{graph.root()};
        level[graph.root()] = 0;
        std::uint32_t depth = 0;
        std::size_t head = 0;
        std::vector<ClassId> order = std::move(frontier);
        while (head < order.size()) {
            const ClassId cls = order[head++];
            depth = std::max(depth, level[cls]);
            for (NodeId nid : graph.nodesInClass(cls)) {
                for (ClassId child : graph.node(nid).children) {
                    if (level[child] ==
                        std::numeric_limits<std::uint32_t>::max()) {
                        level[child] = level[cls] + 1;
                        order.push_back(child);
                    }
                }
            }
        }
        prep.propIterations =
            std::clamp<std::size_t>(static_cast<std::size_t>(depth) + 2,
                                    4, 48);
    }
    return prep;
}

bool
Prepared::rebuildInPlace(const EGraph& graph, const SmoothEConfig& config)
{
    const std::size_t prevIters = propIterations;
    Prepared fresh = build(graph, config);
    numNodes = fresh.numNodes;
    numClasses = fresh.numClasses;
    root = fresh.root;
    // Move the *contents*; the container objects — whose addresses the
    // recorded ops hold — stay where they are.
    classMembers.offsets = std::move(fresh.classMembers.offsets);
    classMembers.items = std::move(fresh.classMembers.items);
    parentIndex.offsets = std::move(fresh.parentIndex.offsets);
    parentIndex.items = std::move(fresh.parentIndex.items);
    node2class = std::move(fresh.node2class);
    rootMask = std::move(fresh.rootMask);
    notRootMask = std::move(fresh.notRootMask);

    bool preserved = fresh.sccs.size() == sccs.size();
    if (preserved) {
        for (std::size_t k = 0; k < sccs.size(); ++k) {
            sccs[k].dim = fresh.sccs[k].dim;
            sccs[k].entries = std::move(fresh.sccs[k].entries);
        }
    } else {
        // The penalty op count changes; the caller re-records anyway, so
        // entry addresses are free to move.
        sccs = std::move(fresh.sccs);
    }

    if (config.propagationIterations == 0 &&
        fresh.propIterations <= prevIters) {
        // Pin the carried depth: it already covers the (grow-only)
        // graph, and keeping it keeps the recorded loop length.
        propIterations = prevIters;
    } else {
        preserved = preserved && fresh.propIterations == prevIters;
        propIterations = fresh.propIterations;
    }
    return preserved;
}

/** Node handles into one recorded forward pass. */
struct ForwardHandles
{
    VarId loss = -1;
    VarId cp = -1;      ///< conditional probabilities (sampling reads this)
    VarId costs = -1;   ///< per-seed differentiable cost, B x 1
    VarId penalty = -1; ///< NOTEARS h(A) total, -1 when acyclic
    VarId lambda = -1;  ///< 1 x 1 "lambda" input slot, -1 when no penalty
};

/**
 * Builds one forward pass on the tape. The NOTEARS coefficient enters
 * through a named input slot so a compiled Program can ramp it per
 * iteration (lambdaWarmupIterations) without re-recording.
 */
ForwardHandles
buildForward(Tape& tape, Param& theta, const Prepared& prep,
             const cost::CostModel& model, const SmoothEConfig& config,
             float effective_lambda)
{
    const std::size_t batch = theta.value.rows();
    const VarId thetaVar = tape.leaf(&theta);
    VarId cp = -1;
    {
        obs::Span span("softmax");
        cp = tape.segmentSoftmax(thetaVar, &prep.classMembers);
    }

    // q0: root has probability 1, everything else 0.
    Tensor q0(batch, prep.numClasses);
    for (std::size_t b = 0; b < batch; ++b)
        q0.at(b, prep.root) = 1.0f;
    VarId q = tape.constant(std::move(q0));

    obs::Span propagateSpan("propagate");
    VarId p = -1;
    for (std::size_t t = 0; t < prep.propIterations; ++t) {
        const VarId qByNode = tape.gatherCols(q, &prep.node2class);
        p = tape.mul(cp, qByNode); // Eq. (5)

        VarId qNew = -1;
        switch (config.assumption) {
          case Assumption::Independent: {
            const VarId prod =
                tape.segmentProductComplement(p, &prep.parentIndex);
            qNew = tape.addScalar(tape.scale(prod, -1.0f), 1.0f); // Eq. (6)
            break;
          }
          case Assumption::Correlated:
            qNew = tape.segmentMaxGather(p, &prep.parentIndex); // Eq. (7)
            break;
          case Assumption::Hybrid: {
            const VarId prod =
                tape.segmentProductComplement(p, &prep.parentIndex);
            const VarId ind =
                tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
            const VarId corr =
                tape.segmentMaxGather(p, &prep.parentIndex);
            qNew = tape.scale(tape.add(ind, corr), 0.5f);
            break;
          }
        }
        // Optional damping (loopy-BP style) before pinning the root.
        if (config.damping > 0.0f) {
            qNew = tape.add(tape.scale(qNew, 1.0f - config.damping),
                            tape.scale(q, config.damping));
        }
        // Pin the root probability to 1.
        q = tape.addConst(tape.mulConst(qNew, prep.notRootMask),
                          prep.rootMask);
    }
    p = tape.mul(cp, tape.gatherCols(q, &prep.node2class));
    propagateSpan.end();

    const VarId costs = model.build(tape, p); // B x 1
    VarId loss = tape.sumAll(costs);

    obs::Span penaltySpan("penalty");
    VarId penalty = -1;
    for (const Prepared::Scc& scc : prep.sccs) {
        const VarId a = tape.scatterMatrix(cp, &scc.entries, scc.dim,
                                           config.batchedMatexp);
        // tr(exp(A)) - d; the constant d does not affect gradients but we
        // subtract it so the reported penalty is the paper's h(A).
        const VarId tr = tape.trExpm(a, scc.dim);
        const VarId h = tape.addScalar(
            tape.sumAll(tr),
            -static_cast<float>(scc.dim) *
                static_cast<float>(tape.value(tr).rows()));
        penalty = penalty < 0 ? h : tape.add(penalty, h);
    }
    penaltySpan.end();
    ForwardHandles handles;
    if (penalty >= 0) {
        // With the batched approximation the penalty is computed once for
        // the averaged matrix; scale by B to keep the per-seed gradient
        // magnitude comparable to the per-seed mode. The scaled
        // coefficient is a mutable 1 x 1 input: multiplying by it is
        // bit-identical to the former scale(penalty, coeff) op (IEEE
        // multiplication commutes), and a compiled Program can update it
        // each iteration.
        const float scale =
            config.batchedMatexp ? static_cast<float>(batch) : 1.0f;
        Tensor coeff(1, 1);
        coeff.at(0, 0) = effective_lambda * scale;
        handles.lambda = tape.input(std::move(coeff), "lambda");
        loss = tape.add(loss, tape.mul(penalty, handles.lambda));
    }

    handles.loss = loss;
    handles.cp = cp;
    handles.costs = costs;
    handles.penalty = penalty;
    return handles;
}

/** The warmup-ramped NOTEARS coefficient for one iteration. */
float
effectiveLambda(const SmoothEConfig& config, std::size_t iter)
{
    float lambda = config.lambda;
    if (config.lambdaWarmupIterations > 0 &&
        iter < config.lambdaWarmupIterations) {
        lambda *= static_cast<float>(iter + 1) /
                  static_cast<float>(config.lambdaWarmupIterations);
    }
    return lambda;
}

/**
 * Everything one SmoothE run leaves behind for the next epoch: the arena
 * (declared first so every tensor below dies before it), the index
 * structures the compiled Program's op pointers refer into, theta with
 * its Adam state, and the Program itself. A one-shot extractWithCost
 * uses a stack-local instance; the incremental protocol keeps one alive
 * inside the caller's IncrementalState.
 */
struct WarmState : extract::IncrementalBlob
{
    explicit WarmState(std::size_t memory_budget) : arena(memory_budget) {}

    Arena arena;
    std::optional<Prepared> prep;
    Param theta;
    std::optional<ad::Adam> optimizer;
    std::optional<ad::Program> program;
    ForwardHandles handles;
    /** The converged result of the previous epoch; re-emitted verbatim
     *  when an identity delta proves the graph did not change. */
    std::optional<ExtractionResult> lastResult;
};

/**
 * Carries theta and the Adam moments into the grown id space.
 *
 * Carried nodes copy their previous column; brand-new nodes draw fresh
 * from the cold-start prior N(0, 1), serially in node order so the
 * result is bit-identical at every thread count. When classes merged,
 * each source group is re-centered per row: softmax is shift-invariant
 * within a class, so centering preserves every carried *relative*
 * preference while removing the arbitrary cross-group offset that would
 * otherwise bias the merged softmax toward whichever source class
 * happened to sit higher. Adam moments are carried element-wise (zero
 * for new columns); the bias-correction step count rides along with the
 * optimizer object itself.
 */
void
warmStartParams(WarmState& ws, const eg::GraphDelta& delta,
                const std::vector<std::uint32_t>& prev_node2class,
                const Prepared& prep, std::size_t batch, util::Rng& rng)
{
    const std::size_t numNodes = prep.numNodes;
    Tensor prevTheta = std::move(ws.theta.value);
    SMOOTHE_CHECK(prevTheta.rows() == batch,
                  "smoothe: warm state carries batch %zu but the config "
                  "asks for %zu",
                  prevTheta.rows(), batch);

    Tensor theta(batch, numNodes, &ws.arena);
    for (std::size_t nid = 0; nid < numNodes; ++nid) {
        const NodeId prev = delta.prevNode[nid];
        if (prev == kNoNode) {
            for (std::size_t b = 0; b < batch; ++b)
                theta.at(b, nid) =
                    static_cast<float>(rng.normal(0.0, 1.0));
        } else {
            for (std::size_t b = 0; b < batch; ++b)
                theta.at(b, nid) = prevTheta.at(b, prev);
        }
    }

    std::vector<NodeId> members;
    std::vector<std::uint32_t> groupOf;
    for (ClassId c = 0; c < prep.numClasses; ++c) {
        if (delta.prevClasses[c].size() < 2)
            continue;
        members.clear();
        groupOf.clear();
        for (std::uint32_t off = prep.classMembers.offsets[c];
             off < prep.classMembers.offsets[c + 1]; ++off) {
            const NodeId nid = prep.classMembers.items[off];
            const NodeId prev = delta.prevNode[nid];
            if (prev == kNoNode)
                continue; // fresh draws carry no stale offset
            members.push_back(nid);
            groupOf.push_back(prev_node2class[prev]);
        }
        for (const ClassId source : delta.prevClasses[c]) {
            for (std::size_t b = 0; b < batch; ++b) {
                double sum = 0.0;
                std::size_t count = 0;
                for (std::size_t i = 0; i < members.size(); ++i) {
                    if (groupOf[i] != source)
                        continue;
                    sum += theta.at(b, members[i]);
                    ++count;
                }
                if (count == 0)
                    continue;
                const float mean =
                    static_cast<float>(sum / static_cast<double>(count));
                for (std::size_t i = 0; i < members.size(); ++i) {
                    if (groupOf[i] == source)
                        theta.at(b, members[i]) -= mean;
                }
            }
        }
    }

    ws.theta.value = std::move(theta);
    ws.theta.grad = Tensor(batch, numNodes);
    auto remapMoment = [&](Tensor& moment) {
        Tensor next(batch, numNodes, &ws.arena);
        for (std::size_t nid = 0; nid < numNodes; ++nid) {
            const NodeId prev = delta.prevNode[nid];
            if (prev == kNoNode)
                continue;
            for (std::size_t b = 0; b < batch; ++b)
                next.at(b, nid) = moment.at(b, prev);
        }
        moment = std::move(next);
    };
    remapMoment(ws.optimizer->moment1(0));
    remapMoment(ws.optimizer->moment2(0));
    obs::counter("smoothe.warm_starts").add(1);
}

} // namespace

Probabilities
computeProbabilities(const EGraph& graph, const Tensor& theta,
                     Assumption assumption,
                     std::size_t propagation_iterations)
{
    SmoothEConfig config;
    config.assumption = assumption;
    config.propagationIterations = propagation_iterations;
    const Prepared prep = Prepared::build(graph, config);

    Tape tape;
    Param thetaParam{theta};
    const VarId thetaVar = tape.leaf(&thetaParam);
    const VarId cp = tape.segmentSoftmax(thetaVar, &prep.classMembers);

    const std::size_t batch = theta.rows();
    Tensor q0(batch, prep.numClasses);
    for (std::size_t b = 0; b < batch; ++b)
        q0.at(b, prep.root) = 1.0f;
    VarId q = tape.constant(std::move(q0));
    VarId p = -1;
    for (std::size_t t = 0; t < prep.propIterations; ++t) {
        const VarId qByNode = tape.gatherCols(q, &prep.node2class);
        p = tape.mul(cp, qByNode);
        VarId qNew = -1;
        switch (assumption) {
          case Assumption::Independent: {
            const VarId prod =
                tape.segmentProductComplement(p, &prep.parentIndex);
            qNew = tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
            break;
          }
          case Assumption::Correlated:
            qNew = tape.segmentMaxGather(p, &prep.parentIndex);
            break;
          case Assumption::Hybrid: {
            const VarId prod =
                tape.segmentProductComplement(p, &prep.parentIndex);
            const VarId ind =
                tape.addScalar(tape.scale(prod, -1.0f), 1.0f);
            const VarId corr =
                tape.segmentMaxGather(p, &prep.parentIndex);
            qNew = tape.scale(tape.add(ind, corr), 0.5f);
            break;
          }
        }
        q = tape.addConst(tape.mulConst(qNew, prep.notRootMask),
                          prep.rootMask);
    }
    p = tape.mul(cp, tape.gatherCols(q, &prep.node2class));

    Probabilities out;
    out.cp = tape.value(cp);
    out.q = tape.value(q);
    out.p = tape.value(p);
    return out;
}

ExtractionResult
SmoothEExtractor::extractImpl(const EGraph& graph,
                              const ExtractOptions& options)
{
    const cost::LinearCost linear(graph);
    return extractWithCost(graph, linear, options);
}

namespace {

/**
 * The optimization loop shared by one-shot and warm-started runs. A
 * null `delta` (or an empty ws.prep) starts cold; otherwise the carried
 * state in `ws` is remapped through the delta and the compiled Program
 * is patched in place when the growth preserves the recorded op
 * sequence, re-recorded otherwise.
 */
ExtractionResult
runSmoothE(const EGraph& graph, const cost::CostModel& model,
           const ExtractOptions& options, const SmoothEConfig& config,
           SmoothEDiagnostics& diagnostics, WarmState& ws,
           const eg::GraphDelta* delta)
{
    static obs::Logger logger("smoothe");
    obs::Counter& iterationsMetric = obs::counter("smoothe.iterations");
    obs::Counter& samplesTotal = obs::counter("sampler.samples");
    obs::Counter& samplesValid = obs::counter("sampler.valid_samples");
    const std::uint64_t samplesTotalBefore = samplesTotal.get();
    const std::uint64_t samplesValidBefore = samplesValid.get();

    diagnostics = SmoothEDiagnostics{};
    ExtractionResult result;
    util::Timer timer;
    util::Deadline deadline(options.timeLimitSeconds);
    util::Rng rng(options.seed);
    ConvergenceRecorder recorder(config.convergenceStride,
                                 config.convergenceCapacity);

    Arena& arena = ws.arena;

    // numThreads > 0 pins the process-wide pool; 0 respects whatever the
    // CLI / embedding application configured (auto = hardware threads).
    // Never resize from inside a pool worker (per-graph tool parallelism):
    // the resize would try to join the very thread running this extract.
    if (config.numThreads > 0 && !util::ThreadPool::onWorkerThread())
        util::ThreadPool::setGlobalThreads(config.numThreads);
    diagnostics.threads = util::ThreadPool::global().size();
    obs::gauge("smoothe.threads")
        .set(static_cast<double>(diagnostics.threads));

    obs::Span extractSpan("smoothe.extract");
    logger.info("extract: %zu nodes, %zu classes, batch %zu, assumption %s, "
                "%zu threads",
                graph.numNodes(), graph.numClasses(),
                std::max<std::size_t>(1, config.numSeeds),
                toString(config.assumption), diagnostics.threads);

    // Shared by the success and OOM paths: record peak arena usage and
    // the sampler hit rate for whatever portion of the run completed,
    // and hand the convergence trajectory to diagnostics + the report.
    auto finalizeDiagnostics = [&]() {
        diagnostics.convergence = recorder.ordered();
        diagnostics.convergenceDropped = recorder.dropped();
        if (obs::Report* report = obs::Report::current()) {
            // Distinguishes the extractions of a multi-run bench inside
            // one accumulated report series.
            static std::atomic<std::size_t> runCounter{0};
            recorder.dumpTo(*report, "smoothe.convergence",
                            runCounter.fetch_add(1));
        }
        diagnostics.peakMemoryBytes = arena.peak();
        obs::gauge("arena.peak_bytes")
            .set(static_cast<double>(arena.peak()));
        obs::gauge("tape.peak_nodes")
            .set(static_cast<double>(diagnostics.tapeNodes));
        const std::uint64_t attempts =
            samplesTotal.get() - samplesTotalBefore;
        const std::uint64_t valid = samplesValid.get() - samplesValidBefore;
        obs::gauge("sampler.valid_rate")
            .set(attempts == 0
                     ? 0.0
                     : static_cast<double>(valid) /
                           static_cast<double>(attempts));
    };

    try {
        // A warm run rebuilds the shared index structures in place (the
        // compiled Program's op pointers refer into them) and remembers
        // whether the recorded op sequence survived; a cold run builds
        // them fresh.
        const bool warm = ws.prep.has_value() && delta != nullptr;

        // Identity delta on an unchanged graph: the carried state already
        // converged on this exact extraction problem, so the cached
        // selection IS the answer — the no-change contract of incremental
        // computation. Saturation loops hit this every epoch once the
        // rules quiesce under their node budget.
        if (warm && ws.lastResult.has_value() && delta->isIdentity() &&
            ws.prep->numNodes == graph.numNodes() &&
            ws.prep->numClasses == graph.numClasses()) {
            obs::counter("smoothe.identity_skips").add(1);
            logger.debug("identity delta: re-emitting cached extraction "
                         "(cost %.6g)",
                         ws.lastResult->cost);
            finalizeDiagnostics();
            result = *ws.lastResult;
            result.seconds = timer.seconds();
            return result;
        }

        bool opPreserved = false;
        std::vector<std::uint32_t> prevNode2class;
        {
            auto setupScope = diagnostics.profile.other();
            if (warm) {
                prevNode2class = ws.prep->node2class;
                opPreserved = ws.prep->rebuildInPlace(graph, config);
            } else {
                ws.program.reset();
                ws.optimizer.reset();
                ws.prep.emplace(Prepared::build(graph, config));
            }
        }
        const Prepared& prep = *ws.prep;
        diagnostics.propagationIterations = prep.propIterations;
        obs::gauge("smoothe.propagation_iterations")
            .set(static_cast<double>(prep.propIterations));
        diagnostics.sccCount = prep.sccs.size();
        for (const auto& scc : prep.sccs)
            diagnostics.largestScc =
                std::max(diagnostics.largestScc, scc.dim);

        const std::size_t batch = std::max<std::size_t>(1, config.numSeeds);
        Param& theta = ws.theta;
        if (warm) {
            warmStartParams(ws, *delta, prevNode2class, prep, batch, rng);
        } else {
            theta = Param{Tensor(batch, prep.numNodes, &arena)};
            for (std::size_t i = 0; i < theta.value.size(); ++i)
                theta.value.data()[i] =
                    static_cast<float>(rng.normal(0.0, 1.0));
            ws.optimizer.emplace(std::vector<Param*>{&theta},
                                 ad::AdamConfig{config.learningRate, 0.9f,
                                                0.999f, 1e-8f},
                                 &arena);
        }
        ad::Adam& optimizer = *ws.optimizer;

        // One independent RNG stream per seed so the sampling stage can
        // fan out across workers while staying bit-identical for every
        // thread count (each stream advances only with its own seed's
        // draws, never with its neighbors').
        std::vector<util::Rng> seedRngs;
        seedRngs.reserve(batch);
        for (std::size_t b = 0; b < batch; ++b)
            seedRngs.emplace_back(options.seed ^
                                  (0x9e3779b97f4a7c15ULL * (b + 1)));

        Selection bestSelection = Selection::empty(graph);
        double bestCost = kInf;
        std::size_t sinceImprovement = 0;

        // The penalty coefficient fed to the "lambda" input slot; must be
        // the same float expression buildForward bakes into the recording
        // so replay stays bit-identical to an eager rebuild.
        const float penaltyScale =
            config.batchedMatexp ? static_cast<float>(batch) : 1.0f;

        // Compile-once/replay-many: record the iteration graph a single
        // time, plan static buffers, and replay it every Adam step. The
        // eager rebuild below stays available as a debugging fallback
        // (config.compiledReplay = false) and for the parity tests.
        ForwardHandles& handles = ws.handles;
        std::optional<ad::Program>& program = ws.program;
        // Only the compiled replay loop carries per-op kernel slots, so
        // --eager --profile would silently produce an empty profile.
        if (!config.compiledReplay && obs::profilerEnabled()) {
            logger.warn("per-op profiler is on but the eager tape "
                        "rebuild is selected; kernel attribution needs "
                        "the compiled replay (drop --eager)");
        }
        if (!config.compiledReplay) {
            program.reset();
        } else {
            // Warm epochs first try to patch the carried Program's
            // sparse structures and buffer plan in place; only growth
            // that breaks the recorded op sequence (or the slot pooling)
            // pays for a fresh record+compile.
            bool patched = false;
            if (warm && program.has_value() && opPreserved) {
                auto scope = diagnostics.profile.loss();
                ad::StructureDelta growth;
                Tensor q0(batch, prep.numClasses);
                for (std::size_t b = 0; b < batch; ++b)
                    q0.at(b, prep.root) = 1.0f;
                growth.onehotRows = std::move(q0);
                growth.maskOneHot = prep.rootMask;
                growth.maskComplement = prep.notRootMask;
                if (const auto* linear =
                        dynamic_cast<const cost::LinearCost*>(&model))
                    growth.rowWeights = linear->weights();
                growth.scatterDims.reserve(prep.sccs.size());
                for (const auto& scc : prep.sccs)
                    growth.scatterDims.push_back(scc.dim);
                patched = program->patch(growth);
            }
            if (!patched) {
                if (warm && program.has_value())
                    obs::counter("program.rerecord").add(1);
                auto scope = diagnostics.profile.loss();
                obs::Span recordSpan("program.record");
                Tape recorder(config.backend, &arena);
                handles = buildForward(recorder, theta, prep, model,
                                       config,
                                       effectiveLambda(config, 0));
                diagnostics.tapeNodes =
                    std::max(diagnostics.tapeNodes, recorder.numNodes());
                std::vector<VarId> outputs{handles.cp, handles.costs};
                if (handles.penalty >= 0)
                    outputs.push_back(handles.penalty);
                program.emplace(std::move(recorder), handles.loss,
                                std::move(outputs));
            }
            diagnostics.compiledReplay = true;
            diagnostics.programBuffers = program->stats().valueSlots +
                                         program->stats().gradSlots;
            diagnostics.bufferReuseRatio = program->stats().reuseRatio();
            obs::gauge("tape.program_buffers")
                .set(static_cast<double>(diagnostics.programBuffers));
            obs::gauge("arena.reuse_ratio")
                .set(diagnostics.bufferReuseRatio);
            logger.debug("compiled program: %zu ops (%zu fused), "
                         "%zu slots, reuse %.2fx%s",
                         program->numOps(), program->stats().fusedOps,
                         diagnostics.programBuffers,
                         diagnostics.bufferReuseRatio,
                         patched ? " (patched in place)" : "");
        }

        for (std::size_t iter = 0; iter < config.maxIterations; ++iter) {
            if (deadline.expired()) {
                logger.debug("iteration %zu: deadline expired", iter);
                break;
            }
            ++diagnostics.iterations;
            iterationsMetric.add(1);

            obs::Span iterSpan("iteration");
            // smoothe-lint: allow(tape-in-loop) — intentional eager path
            std::optional<Tape> tape;
            {
                auto scope = diagnostics.profile.loss();
                const float lambda = effectiveLambda(config, iter);
                if (program) {
                    obs::Span forwardSpan("program.forward");
                    if (handles.lambda >= 0)
                        program->setInputScalar("lambda",
                                                lambda * penaltyScale);
                    program->forward();
                } else {
                    tape.emplace(config.backend, &arena);
                    handles = buildForward(*tape, theta, prep, model,
                                           config, lambda);
                    diagnostics.tapeNodes = std::max(
                        diagnostics.tapeNodes, tape->numNodes());
                }
            }
            // Reads a forward value from whichever execution mode ran.
            auto val = [&](VarId id) -> const Tensor& {
                return program ? program->value(id) : tape->value(id);
            };
            {
                auto scope = diagnostics.profile.gradient();
                obs::Span adamSpan("adam");
                optimizer.zeroGrad();
                if (program)
                    program->backward();
                else
                    tape->backward(handles.loss);
                optimizer.step();
            }
            if (obs::traceEnabled()) {
                obs::traceCounter("smoothe.loss",
                                  val(handles.loss).at(0, 0));
                if (handles.penalty >= 0) {
                    obs::traceCounter("smoothe.penalty",
                                      val(handles.penalty).at(0, 0));
                }
            }

            double relaxedLoss = 0.0;
            if (config.recordLossCurves) {
                const Tensor& costs = val(handles.costs);
                for (std::size_t b = 0; b < costs.rows(); ++b)
                    relaxedLoss += costs.at(b, 0);
                relaxedLoss /= static_cast<double>(costs.rows());
            }

            // Sampling stage: seeds are independent, so chunks of the
            // batch run concurrently; the incumbent reduction below stays
            // serial and in seed order, keeping results identical to the
            // sequential schedule for any thread count.
            double iterBest = kInf;
            if ((iter % std::max<std::size_t>(1, config.sampleEvery)) ==
                0) {
                auto scope = diagnostics.profile.sampling();
                const Tensor& cp = val(handles.cp);
                const std::size_t rows = cp.rows();
                std::vector<std::optional<Selection>> candidates(rows);
                std::vector<double> sampleCosts(rows, kInf);
                util::ThreadPool::global().parallelForChunks(
                    0, rows, 1,
                    [&](std::size_t chunkBegin, std::size_t chunkEnd) {
                        obs::Span chunkSpan("sample.chunk", "sampler");
                        GreedySampler sampler(graph);
                        for (std::size_t b = chunkBegin; b < chunkEnd;
                             ++b) {
                            Selection candidate = sampler.sample(
                                cp.row(b), config.repairSampling,
                                config.sampleTemperature, seedRngs[b]);
                            samplesTotal.add(1);
                            if (!candidate.chosen(graph.root()))
                                continue;
                            if (!extract::validate(graph, candidate).ok())
                                continue;
                            samplesValid.add(1);
                            sampleCosts[b] = model.discrete(
                                candidate.toNodeIndicator(graph));
                            candidates[b] = std::move(candidate);
                        }
                    });
                for (std::size_t b = 0; b < rows; ++b) {
                    if (!candidates[b])
                        continue;
                    const double cost = sampleCosts[b];
                    iterBest = std::min(iterBest, cost);
                    if (cost < bestCost) {
                        bestCost = cost;
                        bestSelection = std::move(*candidates[b]);
                        sinceImprovement = 0;
                        logger.debug("iteration %zu: new incumbent %.6g",
                                     iter, bestCost);
                        obs::traceInstant("smoothe.incumbent");
                        obs::traceCounter("smoothe.best_cost", bestCost);
                        if (options.recordTrace) {
                            result.trace.push_back(
                                {timer.seconds(), bestCost});
                        }
                    }
                }
                ++sinceImprovement;
            }

            if (config.recordLossCurves) {
                LossCurvePoint point;
                point.iteration = iter;
                point.relaxedLoss = relaxedLoss;
                point.sampledLoss = iterBest;
                if (handles.penalty >= 0)
                    point.penalty = val(handles.penalty).at(0, 0);
                diagnostics.lossCurve.push_back(point);
            }

            // Convergence telemetry: strided, so the gradient-norm
            // reduction (the only extra arithmetic) is skipped entirely
            // on unrecorded iterations.
            if (recorder.wants(iter)) {
                ConvergencePoint point;
                point.iteration = iter;
                point.loss = val(handles.loss).at(0, 0);
                const Tensor& costs = val(handles.costs);
                double softSum = 0.0;
                for (std::size_t b = 0; b < costs.rows(); ++b)
                    softSum += costs.at(b, 0);
                point.softCost =
                    softSum / static_cast<double>(costs.rows());
                point.sampledCost = bestCost; // kInf until a valid sample
                double gradSq = 0.0;
                for (std::size_t i = 0; i < theta.grad.size(); ++i) {
                    const double g = theta.grad.data()[i];
                    gradSq += g * g;
                }
                point.gradNorm = std::sqrt(gradSq);
                point.wallSeconds = timer.seconds();
                recorder.record(point);
            }

            if (sinceImprovement > config.patience) {
                logger.debug("iteration %zu: patience exhausted", iter);
                break;
            }
        }

        finalizeDiagnostics();
        result.seconds = timer.seconds();
        if (bestCost == kInf) {
            logger.warn("no valid sample after %zu iterations",
                        diagnostics.iterations);
            ws.lastResult.reset();
            result.status = SolveStatus::Failed;
            result.cost = kInf;
            result.note = "no valid sample";
            return result;
        }
        logger.info("done: cost %.6g after %zu iterations (%.3fs, "
                    "peak %zu bytes)",
                    bestCost, diagnostics.iterations, result.seconds,
                    diagnostics.peakMemoryBytes);
        result.status = SolveStatus::Feasible;
        result.selection = std::move(bestSelection);
        result.cost = bestCost;
        ws.lastResult = result;
        return result;
    } catch (const tensor::OomError& oom) {
        diagnostics.outOfMemory = true;
        finalizeDiagnostics();
        obs::counter("extraction.oom").add(1);
        obs::traceInstant("smoothe.oom");
        logger.error("out of memory after %zu iterations: %s",
                     diagnostics.iterations, oom.what());
        // The carried state may be mid-remap: drop it so the next epoch
        // runs cold instead of warm-starting from inconsistent buffers.
        ws.program.reset();
        ws.optimizer.reset();
        ws.prep.reset();
        ws.lastResult.reset();
        result.status = SolveStatus::Failed;
        result.cost = kInf;
        result.seconds = timer.seconds();
        result.note = std::string("OOM: ") + oom.what();
        return result;
    }
}

} // namespace

ExtractionResult
SmoothEExtractor::extractWithCost(const EGraph& graph,
                                  const cost::CostModel& model,
                                  const ExtractOptions& options,
                                  const eg::GraphDelta* delta,
                                  extract::IncrementalState* state)
{
    SMOOTHE_CHECK(state == nullptr || delta != nullptr,
                  "smoothe: incremental state requires a delta");
    if (state != nullptr && delta != nullptr) {
        // First epoch through a fresh state runs cold but leaves its
        // converged parameters behind for the next epoch to warm from.
        WarmState* ws = blobOf<WarmState>(*state);
        const bool fresh = (ws == nullptr);
        if (fresh)
            ws = &storeBlob<WarmState>(*state, config_.memoryBudgetBytes);
        return runSmoothE(graph, model, options, config_, diagnostics_,
                          *ws, fresh ? nullptr : delta);
    }
    WarmState oneShot(config_.memoryBudgetBytes);
    return runSmoothE(graph, model, options, config_, diagnostics_,
                      oneShot, nullptr);
}

ExtractionResult
SmoothEExtractor::extractIncrementalImpl(const EGraph& graph,
                                         const eg::GraphDelta& delta,
                                         extract::IncrementalState& state,
                                         const ExtractOptions& options)
{
    const cost::LinearCost linear(graph);
    return extractWithCost(graph, linear, options, &delta, &state);
}

} // namespace smoothe::core
