/**
 * @file
 * SmoothE: differentiable e-graph extraction (the paper's contribution).
 *
 * Pipeline per optimization step (Sections 3 and 4):
 *   1. theta (B x N free parameters, one row per seed) -> softmax within
 *      each e-class -> conditional probabilities cp (Eq. 3).
 *   2. phi: propagate unconditional probabilities p from the root through
 *      the whole e-graph with the parallel schedule (Eqs. 5-7), iterated a
 *      fixed number of times so cyclic graphs converge.
 *   3. Differentiable objective f(p) from the cost model (linear or any
 *      non-linear differentiable model, e.g. an MLP).
 *   4. NOTEARS acyclicity penalty tr(exp(A)) - d per SCC of the class
 *      dependency graph, optionally with the batched approximation of
 *      Eq. 11.
 *   5. Adam update of theta; then per-seed discrete sampling by arg-max
 *      cp, keeping the best valid solution seen (Section 3.5).
 */

#ifndef SMOOTHE_SMOOTHE_SMOOTHE_HPP
#define SMOOTHE_SMOOTHE_SMOOTHE_HPP

#include <memory>
#include <vector>

#include "costmodel/cost_model.hpp"
#include "extraction/extractor.hpp"
#include "obs/phase_profiler.hpp"
#include "smoothe/config.hpp"
#include "smoothe/convergence.hpp"
#include "util/timer.hpp"

namespace smoothe::core {

/** Per-iteration record for Figure 9 (relaxed vs sampled loss). */
struct LossCurvePoint
{
    std::size_t iteration = 0;
    double relaxedLoss = 0.0;  ///< mean f(p) across seeds
    double sampledLoss = 0.0;  ///< best valid f_b(s) across seeds this iter
    double penalty = 0.0;      ///< NOTEARS h(A) total
};

/** Extended result with SmoothE-specific diagnostics. */
struct SmoothEDiagnostics
{
    std::size_t iterations = 0;
    std::size_t propagationIterations = 0;
    std::size_t sccCount = 0;        ///< non-trivial SCCs penalized
    std::size_t largestScc = 0;
    std::size_t peakMemoryBytes = 0;
    std::size_t tapeNodes = 0;       ///< peak autodiff tape size across the run
    std::size_t threads = 1;         ///< worker pool size used by the run
    bool compiledReplay = false;     ///< ran on a compiled Program
    std::size_t programBuffers = 0;  ///< reusable value+grad slots planned
    double bufferReuseRatio = 0.0;   ///< eager bytes / planned bytes (>= 1)
    bool outOfMemory = false;
    std::vector<LossCurvePoint> lossCurve;
    obs::PhaseProfiler profile;      ///< Figure 8 phase breakdown
    /** Anytime trajectory (see SmoothEConfig::convergenceStride); also
     *  dumped into the process report when one is installed. */
    std::vector<ConvergencePoint> convergence;
    std::size_t convergenceDropped = 0; ///< ring-evicted points
};

/** Relaxed probabilities from one phi evaluation (analysis API). */
struct Probabilities
{
    /** Conditional probabilities cp (Eq. 3), batch x numNodes. */
    ad::Tensor cp;
    /** Class-chosen probabilities q, batch x numClasses. */
    ad::Tensor q;
    /** Unconditional e-node probabilities p (Eq. 5), batch x numNodes. */
    ad::Tensor p;
};

/**
 * Evaluates the differentiable probability computation phi once, without
 * optimization: theta -> softmax-per-class -> cp -> propagate ->
 * (cp, q, p). Exposed so users (and the tests) can inspect exactly what
 * SmoothE optimizes; mirrors the paper's Figure 3 walkthrough.
 *
 * @param theta batch x numNodes free parameters
 * @param propagation_iterations 0 = auto (class-graph depth, clamped)
 */
Probabilities computeProbabilities(const eg::EGraph& graph,
                                   const ad::Tensor& theta,
                                   Assumption assumption,
                                   std::size_t propagation_iterations = 0);

/** The SmoothE extractor. */
class SmoothEExtractor : public extract::Extractor
{
  public:
    SmoothEExtractor() = default;
    explicit SmoothEExtractor(SmoothEConfig config)
        : config_(std::move(config))
    {}

    std::string name() const override { return "SmoothE"; }

    bool supportsIncremental() const override { return true; }

    /**
     * Arbitrary differentiable objective. When `delta` and `state` are
     * both given, the run warm-starts from the previous epoch carried in
     * `state`: theta and the Adam moments are remapped through the delta
     * (new nodes fall back to the softmax prior, merged classes are
     * re-centered per source group), and the compiled Program is patched
     * in place when the growth preserves the recorded op sequence —
     * falling back to a full re-record otherwise (counters
     * `program.patch` / `program.rerecord`). Callers going through the
     * generic protocol should prefer Extractor::extractIncremental,
     * which adds the cross-epoch consistency checks.
     */
    extract::ExtractionResult
    extractWithCost(const eg::EGraph& graph, const cost::CostModel& model,
                    const extract::ExtractOptions& options,
                    const eg::GraphDelta* delta = nullptr,
                    extract::IncrementalState* state = nullptr);

    /** Diagnostics from the most recent extract() call. */
    const SmoothEDiagnostics& diagnostics() const { return diagnostics_; }

    const SmoothEConfig& config() const { return config_; }
    SmoothEConfig& config() { return config_; }

  protected:
    /** Linear objective taken from the graph's per-node costs. */
    extract::ExtractionResult
    extractImpl(const eg::EGraph& graph,
                const extract::ExtractOptions& options) override;

    /** The incremental protocol entry: linear objective + warm start. */
    extract::ExtractionResult
    extractIncrementalImpl(const eg::EGraph& graph,
                           const eg::GraphDelta& delta,
                           extract::IncrementalState& state,
                           const extract::ExtractOptions& options) override;

  private:
    SmoothEConfig config_;
    SmoothEDiagnostics diagnostics_;
};

} // namespace smoothe::core

#endif // SMOOTHE_SMOOTHE_SMOOTHE_HPP
