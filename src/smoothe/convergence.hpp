/**
 * @file
 * Per-iteration convergence recording for SmoothE runs: the data behind
 * Figure 4-style anytime quality-vs-time curves, captured from any run
 * (eager or compiled-replay) for free.
 *
 * The recorder keeps one ConvergencePoint per sampled iteration in a
 * fixed-capacity ring buffer: a configurable stride thins dense runs,
 * and once the ring wraps the oldest points are overwritten, so memory
 * stays bounded no matter how long the optimization runs. The collected
 * trajectory lands in SmoothEDiagnostics and, when a process report is
 * installed (--report-out / BENCH_<tool>.json), in the report's
 * "smoothe.convergence" series.
 */

#ifndef SMOOTHE_SMOOTHE_CONVERGENCE_HPP
#define SMOOTHE_SMOOTHE_CONVERGENCE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace smoothe::obs {
class Report;
} // namespace smoothe::obs

namespace smoothe::core {

/** One recorded optimization step. */
struct ConvergencePoint
{
    std::size_t iteration = 0;
    double loss = 0.0;        ///< total objective incl. NOTEARS penalty
    double softCost = 0.0;    ///< mean relaxed cost f(p) across seeds
    double sampledCost = 0.0; ///< best discrete-sampled cost so far
                              ///< (-1 before the first valid sample)
    double gradNorm = 0.0;    ///< L2 norm of d loss / d theta
    double wallSeconds = 0.0; ///< since extraction start
};

/** Ring-buffered, strided collector of ConvergencePoints. */
class ConvergenceRecorder
{
  public:
    /**
     * @param stride keep every stride-th iteration (>= 1; 0 is treated
     *   as 1)
     * @param capacity ring size; once full, new points overwrite the
     *   oldest (0 disables recording entirely)
     */
    explicit ConvergenceRecorder(std::size_t stride = 1,
                                 std::size_t capacity = 4096);

    /** True when `iteration` should be recorded — callers use this to
     *  skip computing expensive inputs (the gradient norm) on skipped
     *  iterations. */
    bool wants(std::size_t iteration) const;

    /** Stores a point (ring overwrite when full). */
    void record(const ConvergencePoint& point);

    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** Points recorded then overwritten by the ring. */
    std::size_t dropped() const { return dropped_; }

    /** The retained trajectory, oldest first. */
    std::vector<ConvergencePoint> ordered() const;

    /**
     * Appends the trajectory to the report series `name` with columns
     * [run, iteration, loss, softCost, sampledCost, gradNorm,
     * wallSeconds]; `run` disambiguates multiple extractions recorded
     * into one report. Non-finite values are sanitized to -1.
     */
    void dumpTo(obs::Report& report, const std::string& name,
                std::size_t run) const;

  private:
    std::size_t stride_;
    std::size_t capacity_;
    std::vector<ConvergencePoint> ring_;
    std::size_t next_ = 0; ///< ring write position once full
    std::size_t dropped_ = 0;
};

} // namespace smoothe::core

#endif // SMOOTHE_SMOOTHE_CONVERGENCE_HPP
