/**
 * @file
 * Configuration for the SmoothE differentiable extractor.
 */

#ifndef SMOOTHE_SMOOTHE_CONFIG_HPP
#define SMOOTHE_SMOOTHE_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace smoothe::core {

/**
 * Parent-correlation assumption used by the phi probability computation
 * (Section 3.3): how P(e-class chosen) combines parent probabilities.
 */
enum class Assumption {
    Independent, ///< 1 - prod(1 - p_parent)          (Eq. 6)
    Correlated,  ///< max(p_parent)                   (Eq. 7)
    Hybrid,      ///< average of the two              (default)
};

/** Returns a short label ("independent", ...). */
const char* toString(Assumption assumption);

/** All SmoothE hyper-parameters (paper defaults where stated). */
struct SmoothEConfig
{
    /** Parent-correlation assumption (the paper's default is hybrid). */
    Assumption assumption = Assumption::Hybrid;

    /** Seed-batch size B (Section 4.2). */
    std::size_t numSeeds = 16;

    /** Adam learning rate for theta. */
    float learningRate = 0.1f;

    /** NOTEARS penalty coefficient lambda (Eq. 10a). */
    float lambda = 8.0f;

    /** Maximum optimization iterations (the paper's timeout criterion). */
    std::size_t maxIterations = 400;

    /** Stop after this many iterations without sampled-cost improvement. */
    std::size_t patience = 60;

    /**
     * Probability-propagation iterations per forward pass. 0 means
     * auto-derive from the class-graph depth (clamped to [4, 48]).
     */
    std::size_t propagationIterations = 0;

    /** Sample discrete solutions every k-th iteration (paper: every). */
    std::size_t sampleEvery = 1;

    /**
     * Damping factor for the probability propagation (extension beyond
     * the paper, from the loopy-BP literature): the class probability is
     * updated as q <- (1 - damping) * q_new + damping * q_old. 0 disables
     * damping (the paper's parallel schedule); values around 0.3 smooth
     * oscillations on strongly cyclic e-graphs.
     */
    float damping = 0.0f;

    /**
     * Sampling temperature (extension beyond the paper): 0 reproduces the
     * paper's deterministic arg-max-cp sampler; values > 0 draw e-nodes
     * with probability proportional to cp^(1/T) via Gumbel perturbation,
     * trading per-iteration greediness for exploration.
     */
    float sampleTemperature = 0.0f;

    /**
     * Linearly anneal the NOTEARS coefficient from 0 to `lambda` over
     * this many iterations (extension: lets early optimization focus on
     * cost before the acyclicity pressure kicks in). 0 applies full
     * lambda from the first iteration, as in the paper.
     */
    std::size_t lambdaWarmupIterations = 0;

    /** Use SCC decomposition for the NOTEARS term (Section 4.3). */
    bool sccDecomposition = true;

    /**
     * Use the batched matrix-exponential approximation of Eq. 11 (average
     * the per-seed transition matrices before one exponential).
     */
    bool batchedMatexp = true;

    /**
     * Cycle-aware sampling: when the arg-max e-node would close a cycle,
     * fall back to the next-best member. The paper relies purely on the
     * NOTEARS penalty; repair makes the sampler total (engineering
     * addition, can be disabled to reproduce the paper exactly).
     */
    bool repairSampling = true;

    /**
     * Record the iteration graph once and replay it through a compiled
     * ad::Program with a static buffer plan instead of rebuilding the
     * tape every Adam step. Bit-identical to the eager rebuild at every
     * thread count (DESIGN.md "Compiled execution plan"); disable to run
     * the define-by-run path, e.g. for debugging the recorder.
     */
    bool compiledReplay = true;

    /** Kernel backend (Figure 6 ablation). */
    tensor::Backend backend = tensor::Backend::Vectorized;

    /**
     * Worker threads for the batched kernels and the per-seed sampling
     * stage. 0 leaves the process-wide pool as configured (auto =
     * hardware_concurrency, or whatever --threads selected); a positive
     * value resizes the pool. Results are bit-identical for every thread
     * count — see the determinism contract in DESIGN.md.
     */
    std::size_t numThreads = 0;

    /**
     * Arena budget in bytes for all tensors of this run; 0 = unlimited.
     * Emulates GPU memory capacity (Table 5). Exhaustion surfaces as an
     * OOM failure.
     */
    std::size_t memoryBudgetBytes = 0;

    /** Record per-iteration relaxed loss f(p) and sampled loss f_b(s)
     *  (Figure 9). */
    bool recordLossCurves = false;

    /**
     * Convergence recording (anytime-curve telemetry): every run keeps a
     * ring buffer of per-iteration (loss, soft cost, sampled cost, grad
     * norm, wall time) points in SmoothEDiagnostics::convergence and —
     * when a process report is installed — in the report's
     * "smoothe.convergence" series. `convergenceStride` keeps every k-th
     * iteration; `convergenceCapacity` bounds the ring (oldest points
     * are overwritten once full; 0 disables recording).
     */
    std::size_t convergenceStride = 1;
    std::size_t convergenceCapacity = 4096;
};

} // namespace smoothe::core

#endif // SMOOTHE_SMOOTHE_CONFIG_HPP
