#include "smoothe/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smoothe::core {

using eg::ClassId;
using eg::kNoNode;
using eg::NodeId;
using extract::Selection;

Selection
GreedySampler::sample(const float* cp_row, bool repair, float temperature,
                      util::Rng& rng)
{
    priority_.assign(graph_.numNodes(), 0.0);
    for (std::size_t i = 0; i < graph_.numNodes(); ++i) {
        if (temperature > 0.0f) {
            const double gumbel =
                -std::log(-std::log(rng.uniform() + 1e-12) + 1e-12);
            priority_[i] =
                std::log(static_cast<double>(cp_row[i]) + 1e-12) /
                    temperature +
                gumbel;
        } else {
            priority_[i] = cp_row[i];
        }
    }

    Selection sel = Selection::empty(graph_);
    std::vector<ClassId> stack{graph_.root()};
    while (!stack.empty()) {
        const ClassId cls = stack.back();
        stack.pop_back();
        if (sel.choice[cls] != kNoNode)
            continue;

        const auto& members = graph_.nodesInClass(cls);
        NodeId chosen = kNoNode;
        if (!repair) {
            double best = -std::numeric_limits<double>::infinity();
            for (NodeId nid : members) {
                if (priority_[nid] > best) {
                    best = priority_[nid];
                    chosen = nid;
                }
            }
        } else {
            // Try members in decreasing priority until one is acyclic.
            scratch_.assign(members.begin(), members.end());
            std::sort(scratch_.begin(), scratch_.end(),
                      [&](NodeId a, NodeId b) {
                          return priority_[a] > priority_[b];
                      });
            for (NodeId nid : scratch_) {
                sel.choice[cls] = nid;
                if (!createsCycle(sel, cls)) {
                    chosen = nid;
                    break;
                }
                sel.choice[cls] = kNoNode;
            }
        }
        if (chosen == kNoNode) {
            // Dead end; report an invalid selection.
            sel.choice[graph_.root()] = kNoNode;
            return sel;
        }
        sel.choice[cls] = chosen;
        for (ClassId child : graph_.node(chosen).children) {
            if (sel.choice[child] == kNoNode)
                stack.push_back(child);
        }
    }
    return sel;
}

bool
GreedySampler::createsCycle(const Selection& sel, ClassId cls)
{
    visited_.assign(graph_.numClasses(), false);
    dfs_.clear();
    for (ClassId child : graph_.node(sel.choice[cls]).children) {
        if (sel.choice[child] != kNoNode && !visited_[child]) {
            visited_[child] = true;
            dfs_.push_back(child);
        }
    }
    while (!dfs_.empty()) {
        const ClassId cur = dfs_.back();
        dfs_.pop_back();
        if (cur == cls)
            return true;
        for (ClassId child : graph_.node(sel.choice[cur]).children) {
            if (sel.choice[child] != kNoNode && !visited_[child]) {
                visited_[child] = true;
                dfs_.push_back(child);
            }
        }
    }
    return false;
}

} // namespace smoothe::core
