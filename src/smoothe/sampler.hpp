/**
 * @file
 * The discrete sampling stage of SmoothE (Section 3.5): converts one
 * seed's conditional probabilities cp into a valid extraction by walking
 * top-down from the root and picking the highest-priority e-node per
 * needed e-class.
 *
 * Priorities are cp itself (temperature 0, the paper's arg-max) or
 * Gumbel-perturbed log cp (temperature > 0, proportional sampling —
 * an extension). With repair enabled, members whose selection would close
 * a cycle are skipped in decreasing priority order, making the sampler
 * total on cyclic e-graphs; with repair disabled the caller relies on the
 * NOTEARS penalty, exactly as the paper does, and invalid samples are
 * simply discarded by validation.
 */

#ifndef SMOOTHE_SMOOTHE_SAMPLER_HPP
#define SMOOTHE_SMOOTHE_SAMPLER_HPP

#include <vector>

#include "extraction/solution.hpp"
#include "util/rng.hpp"

namespace smoothe::core {

/** Cycle-aware greedy sampler over conditional probabilities. */
class GreedySampler
{
  public:
    explicit GreedySampler(const eg::EGraph& graph) : graph_(graph) {}

    /**
     * Samples a selection from one seed's cp row.
     * @param cp_row numNodes() conditional probabilities
     * @param repair skip cycle-closing members instead of failing
     * @param temperature 0 = deterministic arg-max, > 0 = stochastic
     * @param rng used only when temperature > 0
     * @return a selection; root entry is eg::kNoNode on dead ends
     */
    extract::Selection sample(const float* cp_row, bool repair,
                              float temperature, util::Rng& rng);

  private:
    bool createsCycle(const extract::Selection& sel, eg::ClassId cls);

    const eg::EGraph& graph_;
    std::vector<double> priority_;
    std::vector<eg::NodeId> scratch_;
    std::vector<bool> visited_;
    std::vector<eg::ClassId> dfs_;
};

} // namespace smoothe::core

#endif // SMOOTHE_SMOOTHE_SAMPLER_HPP
