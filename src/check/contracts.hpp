/**
 * @file
 * Project-wide contract macros: always-on checks, internal invariant
 * assertions, and debug-only deep checks.
 *
 * Three tiers (see DESIGN.md "Correctness tooling & static analysis"):
 *
 *  - SMOOTHE_CHECK(cond, fmt, ...)   always compiled; guards external
 *    inputs and API preconditions. Failure is recoverable in Log mode.
 *  - SMOOTHE_ASSERT(cond, fmt, ...)  always compiled; guards internal
 *    invariants whose violation means the library itself is wrong.
 *  - SMOOTHE_DCHECK(cond, fmt, ...)  compiled only in Debug builds or
 *    when the SMOOTHE_DEBUG_INVARIANTS CMake option is ON; guards hot
 *    paths and triggers the deep structural validators.
 *
 * The printf-style message is optional and formatted only on failure. A
 * failure is reported to the installed ViolationObserver — plain stderr
 * by default; obs::installCheckTelemetry() (run by every CLI tool via
 * installCliTelemetry) upgrades it to the "check" logger plus the
 * `check.failures` counters — and then either aborts (default), throws
 * check::ContractViolation, or merely logs, depending on the
 * process-wide FailureMode (settable programmatically or via the
 * SMOOTHE_CHECK_MODE=abort|throw|log environment variable).
 *
 * This module deliberately depends on nothing but the standard library
 * so the lowest layers (util, tensor) can use the macros without a
 * dependency cycle; telemetry is attached from above via the observer.
 *
 * SMOOTHE_DCHECK_OK / SMOOTHE_CHECK_OK adapt the deep validators, which
 * return std::optional<std::string> (nullopt = healthy), to the same
 * failure pipeline.
 *
 * Replaces bare assert() everywhere in the library: assert() vanishes
 * under NDEBUG, turning corrupted state into undefined behavior exactly
 * in the builds users run; contracts keep the cheap tiers on.
 */

#ifndef SMOOTHE_CHECK_CONTRACTS_HPP
#define SMOOTHE_CHECK_CONTRACTS_HPP

#include <optional>
#include <stdexcept>
#include <string>

namespace smoothe::check {

/** What a failed contract does after logging and counting. */
enum class FailureMode {
    Abort, ///< flush logs, std::abort() (default; best for tools/CI)
    Throw, ///< throw ContractViolation (tests, embedders)
    Log,   ///< log and continue (CHECK only; ASSERT still aborts)
};

/** Thrown by failed contracts in FailureMode::Throw. */
class ContractViolation : public std::logic_error
{
  public:
    ContractViolation(std::string what, std::string expression,
                      const char* file, int line)
        : std::logic_error(std::move(what)),
          expression_(std::move(expression)), file_(file), line_(line)
    {}

    const std::string& expression() const { return expression_; }
    const char* file() const { return file_; }
    int line() const { return line_; }

  private:
    std::string expression_;
    const char* file_;
    int line_;
};

/** Everything known about one failed contract, for observers. */
struct ViolationInfo
{
    const char* tier;       ///< "CHECK", "ASSERT", or "DCHECK"
    const char* expression; ///< stringified condition
    const char* file;
    int line;
    const char* message;    ///< formatted user message, "" when none
};

/** Observer invoked on every contract failure before abort/throw. */
using ViolationObserver = void (*)(const ViolationInfo&);

/**
 * Installs the process-wide violation observer; nullptr restores the
 * default stderr reporter. Returns the previous observer so callers can
 * chain or restore it. obs::installCheckTelemetry() is the standard
 * observer (logging + metrics).
 */
ViolationObserver setViolationObserver(ViolationObserver observer);

/** The current process-wide failure mode. */
FailureMode failureMode();

/**
 * Sets the failure mode. The initial mode is Abort unless the
 * SMOOTHE_CHECK_MODE environment variable selects another.
 */
void setFailureMode(FailureMode mode);

/** RAII failure-mode override for tests. */
class ScopedFailureMode
{
  public:
    explicit ScopedFailureMode(FailureMode mode)
        : previous_(failureMode())
    {
        setFailureMode(mode);
    }
    ~ScopedFailureMode() { setFailureMode(previous_); }
    ScopedFailureMode(const ScopedFailureMode&) = delete;
    ScopedFailureMode& operator=(const ScopedFailureMode&) = delete;

  private:
    FailureMode previous_;
};

namespace detail {

/**
 * Reports a failed contract: formats, logs, counts, then aborts or
 * throws per the failure mode. Returns only in FailureMode::Log (and
 * only for the "CHECK" tier; "ASSERT"/"DCHECK" always abort or throw).
 */
void fail(const char* tier, const char* expression, const char* file,
          int line, const char* format, ...)
    __attribute__((format(printf, 5, 6)));

/** fail() for validators: message is the validator's error string. */
void failValidator(const char* tier, const char* expression,
                   const char* file, int line, const std::string& error);

} // namespace detail

} // namespace smoothe::check

// Without a message the macros pass "" as the printf format; silence
// -Wformat-zero-length (an error under SMOOTHE_WERROR) around the call.
#if defined(__GNUC__)
#define SMOOTHE_CHECK_FMT_PUSH_                                           \
    _Pragma("GCC diagnostic push")                                        \
    _Pragma("GCC diagnostic ignored \"-Wformat-zero-length\"")
#define SMOOTHE_CHECK_FMT_POP_ _Pragma("GCC diagnostic pop")
#else
#define SMOOTHE_CHECK_FMT_PUSH_
#define SMOOTHE_CHECK_FMT_POP_
#endif

/** Always-on precondition / external-input check. */
#define SMOOTHE_CHECK(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SMOOTHE_CHECK_FMT_PUSH_                                       \
            ::smoothe::check::detail::fail("CHECK", #cond, __FILE__,      \
                                           __LINE__, "" __VA_ARGS__);     \
            SMOOTHE_CHECK_FMT_POP_                                        \
        }                                                                 \
    } while (0)

/** Always-on internal invariant assertion. */
#define SMOOTHE_ASSERT(cond, ...)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SMOOTHE_CHECK_FMT_PUSH_                                       \
            ::smoothe::check::detail::fail("ASSERT", #cond, __FILE__,     \
                                           __LINE__, "" __VA_ARGS__);     \
            SMOOTHE_CHECK_FMT_POP_                                        \
        }                                                                 \
    } while (0)

/**
 * Adapter for deep validators returning std::optional<std::string>:
 * fails (always-on) when the validator reports a problem.
 */
#define SMOOTHE_CHECK_OK(expr)                                            \
    do {                                                                  \
        if (const auto smoothe_check_err_ = (expr)) {                     \
            ::smoothe::check::detail::failValidator(                      \
                "CHECK", #expr, __FILE__, __LINE__, *smoothe_check_err_); \
        }                                                                 \
    } while (0)

#if defined(SMOOTHE_DEBUG_INVARIANTS) || !defined(NDEBUG)
#define SMOOTHE_INVARIANTS_ENABLED 1
#else
#define SMOOTHE_INVARIANTS_ENABLED 0
#endif

#if SMOOTHE_INVARIANTS_ENABLED
/** Debug-only invariant check (hot paths, deep validators). */
#define SMOOTHE_DCHECK(cond, ...)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SMOOTHE_CHECK_FMT_PUSH_                                       \
            ::smoothe::check::detail::fail("DCHECK", #cond, __FILE__,     \
                                           __LINE__, "" __VA_ARGS__);     \
            SMOOTHE_CHECK_FMT_POP_                                        \
        }                                                                 \
    } while (0)

/** Debug-only validator adapter (see SMOOTHE_CHECK_OK). */
#define SMOOTHE_DCHECK_OK(expr)                                           \
    do {                                                                  \
        if (const auto smoothe_check_err_ = (expr)) {                     \
            ::smoothe::check::detail::failValidator("DCHECK", #expr,      \
                                                    __FILE__, __LINE__,   \
                                                    *smoothe_check_err_); \
        }                                                                 \
    } while (0)
#else
// Compiled out: the condition is parsed but never evaluated, so
// variables it mentions stay "used" for warning purposes.
#define SMOOTHE_DCHECK(cond, ...)                                         \
    do {                                                                  \
        if (false && (cond)) {                                            \
        }                                                                 \
    } while (0)

#define SMOOTHE_DCHECK_OK(expr)                                           \
    do {                                                                  \
        if (false) {                                                      \
            (void)(expr);                                                 \
        }                                                                 \
    } while (0)
#endif

#endif // SMOOTHE_CHECK_CONTRACTS_HPP
