#include "check/contracts.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smoothe::check {

namespace {

FailureMode
initialMode()
{
    const char* env = std::getenv("SMOOTHE_CHECK_MODE");
    if (env == nullptr)
        return FailureMode::Abort;
    if (std::strcmp(env, "throw") == 0)
        return FailureMode::Throw;
    if (std::strcmp(env, "log") == 0)
        return FailureMode::Log;
    return FailureMode::Abort;
}

std::atomic<FailureMode>&
modeStorage()
{
    static std::atomic<FailureMode> mode{initialMode()};
    return mode;
}

std::atomic<ViolationObserver>&
observerStorage()
{
    static std::atomic<ViolationObserver> observer{nullptr};
    return observer;
}

/** Reports + counts via the observer, then aborts/throws/returns per
 *  mode and tier. */
void
dispatch(const char* tier, const char* expression, const char* file,
         int line, const std::string& message)
{
    const ViolationInfo info{tier, expression, file, line, message.c_str()};
    const ViolationObserver observer =
        observerStorage().load(std::memory_order_acquire);
    if (observer != nullptr) {
        observer(info);
    } else {
        std::fprintf(stderr, "smoothe: %s failed at %s:%d: %s%s%s\n", tier,
                     file, line, expression, message.empty() ? "" : " — ",
                     message.c_str());
    }

    // The failure mode guards only its own enum value; no other data is
    // published behind it.  smoothe-lint: allow(relaxed-atomic-handshake)
    const FailureMode mode = modeStorage().load(std::memory_order_relaxed);
    // Log mode only downgrades the recoverable tier; a failed ASSERT or
    // DCHECK means internal state is corrupt and continuing is unsafe.
    if (mode == FailureMode::Log && std::strcmp(tier, "CHECK") == 0)
        return;
    std::string what = std::string(tier) + " failed at " + file + ":" +
                       std::to_string(line) + ": " + expression;
    if (!message.empty())
        what += " — " + message;
    if (mode == FailureMode::Throw)
        throw ContractViolation(what, expression, file, line);
    std::fprintf(stderr, "smoothe: fatal: %s\n", what.c_str());
    std::fflush(nullptr);
    std::abort();
}

} // namespace

ViolationObserver
setViolationObserver(ViolationObserver observer)
{
    return observerStorage().exchange(observer, std::memory_order_acq_rel);
}

FailureMode
failureMode()
{
    // Self-contained flag.  smoothe-lint: allow(relaxed-atomic-handshake)
    return modeStorage().load(std::memory_order_relaxed);
}

void
setFailureMode(FailureMode mode)
{
    // Self-contained flag.  smoothe-lint: allow(relaxed-atomic-handshake)
    modeStorage().store(mode, std::memory_order_relaxed);
}

namespace detail {

void
fail(const char* tier, const char* expression, const char* file, int line,
     const char* format, ...)
{
    char buffer[512];
    buffer[0] = '\0';
    if (format != nullptr && format[0] != '\0') {
        va_list args;
        va_start(args, format);
        std::vsnprintf(buffer, sizeof(buffer), format, args);
        va_end(args);
    }
    dispatch(tier, expression, file, line, buffer);
}

void
failValidator(const char* tier, const char* expression, const char* file,
              int line, const std::string& error)
{
    dispatch(tier, expression, file, line, error);
}

} // namespace detail

} // namespace smoothe::check
