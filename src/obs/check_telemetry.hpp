/**
 * @file
 * Bridges the contract layer (src/check, dependency-free by design) into
 * the observability stack: a ViolationObserver that logs every failed
 * contract through the "check" component and bumps the `check.failures`
 * counters (total plus per tier). Installed automatically by
 * installCliTelemetry(), so every tool and bench binary gets contract
 * telemetry; tests install it explicitly when they assert on counters.
 */

#ifndef SMOOTHE_OBS_CHECK_TELEMETRY_HPP
#define SMOOTHE_OBS_CHECK_TELEMETRY_HPP

namespace smoothe::obs {

/**
 * Routes contract violations into logging + metrics. Idempotent.
 * Returns whether an observer was already installed before this call.
 */
bool installCheckTelemetry();

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_CHECK_TELEMETRY_HPP
