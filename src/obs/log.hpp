/**
 * @file
 * Structured, severity-leveled logging with component-named loggers.
 *
 * Each component ("smoothe", "ilp", "eqsat", ...) owns an atomic level in a
 * process-wide registry; a disabled call site costs one relaxed atomic load
 * and a branch, and formats nothing. Output goes to pluggable sinks — a
 * human-readable stderr sink is installed by default, and a JSONL file sink
 * can be added for machine consumption.
 *
 * Levels are configured programmatically or from the SMOOTHE_LOG
 * environment variable, e.g. `SMOOTHE_LOG=ilp=debug,*=warn`.
 */

#ifndef SMOOTHE_OBS_LOG_HPP
#define SMOOTHE_OBS_LOG_HPP

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

namespace smoothe::obs {

/** Log severity, ordered; Off disables everything. */
enum class Level : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/** Lower-case level name ("trace", ..., "off"). */
const char* levelName(Level level);

/** Parses a level name (case-insensitive); nullopt on unknown. */
std::optional<Level> parseLevel(const std::string& name);

/** One formatted log event, handed to every sink. */
struct LogRecord
{
    double seconds = 0.0;    ///< process-relative timestamp
    Level level = Level::Info;
    const char* component = "";
    const char* message = "";
};

/** Output backend for log records. */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void write(const LogRecord& record) = 0;
};

/** Human-readable `[   0.123s] warn  ilp: message` lines on stderr. */
class StderrSink : public Sink
{
  public:
    void write(const LogRecord& record) override;
};

/** One JSON object per line, appended to a file. */
class JsonlSink : public Sink
{
  public:
    /** Opens (truncates) the file; a failed open disables the sink. */
    explicit JsonlSink(const std::string& path);
    ~JsonlSink() override;
    void write(const LogRecord& record) override;
    bool ok() const { return file_ != nullptr; }

  private:
    std::FILE* file_ = nullptr;
};

namespace detail {

/** Shared per-component state owned by the registry (never freed). */
struct LoggerState
{
    std::string name;
    std::atomic<int> level;
};

} // namespace detail

/**
 * Lightweight handle to a component's logging state.
 *
 * Construction looks the component up in the registry (mutex-protected);
 * keep loggers in statics or members rather than constructing per call.
 */
class Logger
{
  public:
    explicit Logger(const char* component);

    /** True when records at this level would be emitted. */
    bool
    enabled(Level level) const
    {
        return static_cast<int>(level) >=
               state_->level.load(std::memory_order_relaxed);
    }

    /** printf-style; formatting is skipped entirely when disabled. */
    void log(Level level, const char* format, ...)
        __attribute__((format(printf, 3, 4)));

    void trace(const char* format, ...)
        __attribute__((format(printf, 2, 3)));
    void debug(const char* format, ...)
        __attribute__((format(printf, 2, 3)));
    void info(const char* format, ...)
        __attribute__((format(printf, 2, 3)));
    void warn(const char* format, ...)
        __attribute__((format(printf, 2, 3)));
    void error(const char* format, ...)
        __attribute__((format(printf, 2, 3)));

    Level level() const;
    const std::string& component() const { return state_->name; }

  private:
    void vlog(Level level, const char* format, va_list args);

    detail::LoggerState* state_;
};

/**
 * Applies a comma-separated level spec: `component=level` entries plus a
 * bare `level` or `*=level` default, e.g. "ilp=debug,*=warn".
 * Returns false (and changes nothing for that entry) on unknown levels.
 */
bool configureLogging(const std::string& spec);

/** Sets the default level and every existing component's level. */
void setGlobalLogLevel(Level level);

/** Adds a sink; records go to every installed sink. */
void addLogSink(std::unique_ptr<Sink> sink);

/** Convenience: adds a JsonlSink for the path; false on open failure. */
bool addJsonlLogSink(const std::string& path);

/** Restores the default single-stderr-sink configuration (tests). */
void resetLogSinks();

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_LOG_HPP
