/**
 * @file
 * Shared command-line surface for telemetry and execution: every tool and
 * bench binary gains `--log-level LVL`, `--log-json FILE`,
 * `--trace-out FILE`, `--metrics-out FILE`, `--report-out FILE`,
 * `--threads N`, and the kernel-profiler trio `--profile`,
 * `--profile-out FILE` (collapsed stacks for flamegraph tooling), and
 * `--profile-stride N` by routing its parsed util::Args through
 * installCliTelemetry(). Trace, metrics, report, and profile files are
 * flushed automatically at process exit — and from a std::terminate
 * handler, so the files are valid even when a tool aborts mid-run — so
 * harness binaries need no explicit teardown.
 */

#ifndef SMOOTHE_OBS_CLI_HPP
#define SMOOTHE_OBS_CLI_HPP

#include <cstddef>
#include <string>

namespace smoothe::util {
class Args;
} // namespace smoothe::util

namespace smoothe::obs {

/**
 * Reads the telemetry flags from parsed args and applies them:
 * configures log levels (--log-level beats SMOOTHE_LOG), attaches a JSONL
 * log sink, starts a trace session when --trace-out is given, installs
 * the process-wide obs::Report when --report-out is given (named after
 * `tool`, which is usually the argv[0] basename), resizes the
 * process-wide thread pool from --threads (0 or absent = auto, i.e.
 * hardware concurrency) recording the result in the "threads" gauge, and
 * registers atexit + std::terminate hooks that write the trace, metrics,
 * and report files even on a mid-run abort.
 * Safe to call once per process; later calls override the output paths.
 */
void installCliTelemetry(const util::Args& args,
                         const char* tool = nullptr);

/**
 * Writes any configured --trace-out / --metrics-out / --report-out files
 * immediately (also runs at exit and on terminate). Returns false if a
 * write failed.
 */
bool flushCliTelemetry();

/**
 * Registers the atexit + std::terminate flush hooks once per process
 * (installCliTelemetry does this when any output file is configured;
 * callers that install a report through Report::install directly — e.g.
 * the bench harness default BENCH_<tool>.json — call it themselves).
 */
void installTelemetryExitHooks();

/** Strips the directory part of argv[0] ("./build/bench/bench_x" ->
 *  "bench_x"); returns `fallback` for null/empty argv. */
std::string toolNameFromArgv0(const char* argv0, const char* fallback);

/**
 * Logs an error for every flag the program never queried (call after all
 * known flags — including the telemetry ones — have been read) and
 * returns how many there were. Callers treat a nonzero return as a usage
 * error and exit with a nonzero status.
 */
std::size_t reportUnknownFlags(const util::Args& args, const char* program);

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_CLI_HPP
