/**
 * @file
 * Shared command-line surface for telemetry and execution: every tool and
 * bench binary gains `--log-level LVL`, `--log-json FILE`,
 * `--trace-out FILE`, `--metrics-out FILE`, and `--threads N` by routing
 * its parsed util::Args through installCliTelemetry(). Trace and metrics
 * files are flushed automatically at process exit so harness binaries
 * need no explicit teardown.
 */

#ifndef SMOOTHE_OBS_CLI_HPP
#define SMOOTHE_OBS_CLI_HPP

#include <cstddef>
#include <string>

namespace smoothe::util {
class Args;
} // namespace smoothe::util

namespace smoothe::obs {

/**
 * Reads the telemetry flags from parsed args and applies them:
 * configures log levels (--log-level beats SMOOTHE_LOG), attaches a JSONL
 * log sink, starts a trace session when --trace-out is given, resizes the
 * process-wide thread pool from --threads (0 or absent = auto, i.e.
 * hardware concurrency) recording the result in the "threads" gauge, and
 * registers an atexit hook that writes the trace and metrics files.
 * Safe to call once per process; later calls override the output paths.
 */
void installCliTelemetry(const util::Args& args);

/**
 * Writes any configured --trace-out / --metrics-out files immediately
 * (also runs at exit). Returns false if a write failed.
 */
bool flushCliTelemetry();

/**
 * Logs an error for every flag the program never queried (call after all
 * known flags — including the telemetry ones — have been read) and
 * returns how many there were. Callers treat a nonzero return as a usage
 * error and exit with a nonzero status.
 */
std::size_t reportUnknownFlags(const util::Args& args, const char* program);

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_CLI_HPP
