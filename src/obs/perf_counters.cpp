#include "obs/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SMOOTHE_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SMOOTHE_HAVE_PERF_EVENT 0
#endif

namespace smoothe::obs {

#if SMOOTHE_HAVE_PERF_EVENT

namespace {

/** The four events, in fds_ slot order (cycles is the anchor). */
struct EventSpec
{
    std::uint64_t config;
    const char* label;
};

constexpr EventSpec kEvents[4] = {
    {PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
};

int
openEvent(std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // pid=0, cpu=-1: this thread, any CPU.
    return static_cast<int>(
        syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t
readValue(int fd)
{
    std::uint64_t value = 0;
    if (fd < 0)
        return 0;
    if (::read(fd, &value, sizeof(value)) != sizeof(value))
        return 0;
    return value;
}

} // namespace

PerfCounters::PerfCounters()
{
    fds_[0] = openEvent(kEvents[0].config);
    if (fds_[0] < 0) {
        status_ = std::string("perf_event_open(cycles) failed: ") +
                  std::strerror(errno) +
                  " (container likely denies perf access)";
        return;
    }
    std::string missing;
    for (int i = 1; i < 4; ++i) {
        fds_[i] = openEvent(kEvents[i].config);
        if (fds_[i] < 0) {
            if (!missing.empty())
                missing += ", ";
            missing += kEvents[i].label;
        }
    }
    status_ = missing.empty() ? "ok" : "ok (no " + missing + ")";
}

PerfCounters::~PerfCounters()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

PerfSample
PerfCounters::read() const
{
    PerfSample sample;
    if (!available())
        return sample;
    sample.cycles = readValue(fds_[0]);
    sample.instructions = readValue(fds_[1]);
    sample.cacheMisses = readValue(fds_[2]);
    sample.branchMisses = readValue(fds_[3]);
    return sample;
}

#else // !SMOOTHE_HAVE_PERF_EVENT

PerfCounters::PerfCounters()
    : status_("perf_event_open not supported on this platform")
{}

PerfCounters::~PerfCounters() = default;

PerfSample
PerfCounters::read() const
{
    return PerfSample{};
}

#endif // SMOOTHE_HAVE_PERF_EVENT

} // namespace smoothe::obs
