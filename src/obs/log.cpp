#include "obs/log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace smoothe::obs {

namespace {

constexpr Level kDefaultLevel = Level::Warn;

/** Process-wide logger registry: component states, sinks, default level. */
struct LogRegistry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<detail::LoggerState>> states;
    std::map<std::string, Level> overrides; ///< from configure specs
    Level defaultLevel = kDefaultLevel;
    std::vector<std::unique_ptr<Sink>> sinks;
    util::Timer clock; ///< process-relative timestamps

    LogRegistry()
    {
        sinks.push_back(std::make_unique<StderrSink>());
        if (const char* env = std::getenv("SMOOTHE_LOG"))
            applySpecLocked(env);
    }

    detail::LoggerState&
    state(const char* component)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = states.find(component);
        if (it == states.end()) {
            auto owned = std::make_unique<detail::LoggerState>();
            owned->name = component;
            Level level = defaultLevel;
            const auto override = overrides.find(component);
            if (override != overrides.end())
                level = override->second;
            owned->level.store(static_cast<int>(level),
                               std::memory_order_relaxed);
            it = states.emplace(component, std::move(owned)).first;
        }
        return *it->second;
    }

    bool
    applySpecLocked(const std::string& spec)
    {
        bool ok = true;
        std::size_t start = 0;
        while (start <= spec.size()) {
            const std::size_t comma = spec.find(',', start);
            const std::string entry =
                spec.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
            start = comma == std::string::npos ? spec.size() + 1
                                               : comma + 1;
            if (entry.empty())
                continue;
            const std::size_t eq = entry.find('=');
            std::string name =
                eq == std::string::npos ? "*" : entry.substr(0, eq);
            const std::string levelText =
                eq == std::string::npos ? entry : entry.substr(eq + 1);
            const auto level = parseLevel(levelText);
            if (!level) {
                ok = false;
                continue;
            }
            if (name == "*" || name.empty()) {
                defaultLevel = *level;
                for (auto& [_, state] : states) {
                    if (!overrides.count(state->name))
                        state->level.store(static_cast<int>(*level),
                                           std::memory_order_relaxed);
                }
            } else {
                overrides[name] = *level;
                const auto it = states.find(name);
                if (it != states.end())
                    it->second->level.store(static_cast<int>(*level),
                                            std::memory_order_relaxed);
            }
        }
        return ok;
    }

    void
    dispatch(const LogRecord& record)
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& sink : sinks)
            sink->write(record);
    }
};

LogRegistry&
registry()
{
    static LogRegistry instance;
    return instance;
}

} // namespace

const char*
levelName(Level level)
{
    switch (level) {
      case Level::Trace: return "trace";
      case Level::Debug: return "debug";
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
      case Level::Off: return "off";
    }
    return "?";
}

std::optional<Level>
parseLevel(const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (Level level : {Level::Trace, Level::Debug, Level::Info,
                        Level::Warn, Level::Error, Level::Off}) {
        if (lower == levelName(level))
            return level;
    }
    if (lower == "warning")
        return Level::Warn;
    return std::nullopt;
}

void
StderrSink::write(const LogRecord& record)
{
    std::fprintf(stderr, "[%9.3fs] %-5s %s: %s\n", record.seconds,
                 levelName(record.level), record.component,
                 record.message);
}

JsonlSink::JsonlSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w"))
{}

JsonlSink::~JsonlSink()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
JsonlSink::write(const LogRecord& record)
{
    if (file_ == nullptr)
        return;
    util::Json line = util::Json::makeObject();
    line.set("ts", record.seconds);
    line.set("level", levelName(record.level));
    line.set("component", record.component);
    line.set("msg", record.message);
    const std::string text = line.dump();
    std::fwrite(text.data(), 1, text.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
}

Logger::Logger(const char* component) : state_(&registry().state(component))
{}

Level
Logger::level() const
{
    return static_cast<Level>(state_->level.load(std::memory_order_relaxed));
}

void
Logger::vlog(Level level, const char* format, va_list args)
{
    char buffer[512];
    std::vsnprintf(buffer, sizeof(buffer), format, args);
    LogRecord record;
    record.seconds = registry().clock.seconds();
    record.level = level;
    record.component = state_->name.c_str();
    record.message = buffer;
    registry().dispatch(record);
}

// The five convenience wrappers share this shape; a macro keeps the
// va_list plumbing in one place.
#define SMOOTHE_OBS_LOG_BODY(levelExpr)                                    \
    do {                                                                   \
        if (!enabled(levelExpr))                                           \
            return;                                                        \
        va_list args;                                                      \
        va_start(args, format);                                            \
        vlog(levelExpr, format, args);                                     \
        va_end(args);                                                      \
    } while (0)

void
Logger::log(Level level, const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(level);
}

void
Logger::trace(const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(Level::Trace);
}

void
Logger::debug(const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(Level::Debug);
}

void
Logger::info(const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(Level::Info);
}

void
Logger::warn(const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(Level::Warn);
}

void
Logger::error(const char* format, ...)
{
    SMOOTHE_OBS_LOG_BODY(Level::Error);
}

#undef SMOOTHE_OBS_LOG_BODY

bool
configureLogging(const std::string& spec)
{
    LogRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.applySpecLocked(spec);
}

void
setGlobalLogLevel(Level level)
{
    LogRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.defaultLevel = level;
    reg.overrides.clear();
    for (auto& [_, state] : reg.states)
        state->level.store(static_cast<int>(level),
                           std::memory_order_relaxed);
}

void
addLogSink(std::unique_ptr<Sink> sink)
{
    LogRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.sinks.push_back(std::move(sink));
}

bool
addJsonlLogSink(const std::string& path)
{
    auto sink = std::make_unique<JsonlSink>(path);
    if (!sink->ok())
        return false;
    addLogSink(std::move(sink));
    return true;
}

void
resetLogSinks()
{
    LogRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.sinks.clear();
    reg.sinks.push_back(std::make_unique<StderrSink>());
}

} // namespace smoothe::obs
