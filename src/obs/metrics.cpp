#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "util/json.hpp"

namespace smoothe::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1)
{
}

void
Histogram::observe(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::percentile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Target rank in (0, total]; q = 0 maps to the first observation.
    const double target =
        std::max(q * static_cast<double>(total), 1e-12);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double inBucket = static_cast<double>(bucketCount(i));
        if (inBucket == 0.0)
            continue;
        if (cumulative + inBucket < target) {
            cumulative += inBucket;
            continue;
        }
        if (i >= bounds_.size()) {
            // Overflow bucket: no finite upper edge to interpolate
            // toward; clamp to the highest finite bound.
            return bounds_.empty() ? 0.0 : bounds_.back();
        }
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        const double hi = bounds_[i];
        const double fraction = (target - cumulative) / inBucket;
        return lo + fraction * (hi - lo);
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

void
Histogram::reset()
{
    for (auto& bucket : counts_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry&
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Impl&
MetricsRegistry::impl() const
{
    static Impl storage;
    return storage;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> upper_bounds)
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto& slot = state.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(upper_bounds));
    return *slot;
}

util::Json
MetricsRegistry::toJson() const
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    util::Json doc = util::Json::makeObject();
    for (const auto& [name, counter] : state.counters)
        doc.set(name, static_cast<double>(counter->get()));
    for (const auto& [name, gauge] : state.gauges)
        doc.set(name, gauge->get());
    for (const auto& [name, histogram] : state.histograms) {
        util::Json entry = util::Json::makeObject();
        util::Json bounds = util::Json::makeArray();
        for (double bound : histogram->bounds())
            bounds.push(bound);
        util::Json counts = util::Json::makeArray();
        for (std::size_t i = 0; i < histogram->numBuckets(); ++i)
            counts.push(static_cast<double>(histogram->bucketCount(i)));
        entry.set("bounds", std::move(bounds));
        entry.set("counts", std::move(counts));
        entry.set("count", static_cast<double>(histogram->count()));
        entry.set("sum", histogram->sum());
        doc.set(name, std::move(entry));
    }
    return doc;
}

void
MetricsRegistry::reset()
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto& [_, counter] : state.counters)
        counter->reset();
    for (auto& [_, gauge] : state.gauges)
        gauge->reset();
    for (auto& [_, histogram] : state.histograms)
        histogram->reset();
}

std::vector<double>
exponentialBounds(double first, double last, std::size_t count)
{
    std::vector<double> bounds;
    if (count < 2 || first <= 0.0 || last <= first) {
        bounds.push_back(first);
        return bounds;
    }
    bounds.reserve(count);
    const double ratio =
        std::pow(last / first, 1.0 / static_cast<double>(count - 1));
    double bound = first;
    for (std::size_t i = 0; i + 1 < count; ++i) {
        bounds.push_back(bound);
        bound *= ratio;
    }
    bounds.push_back(last); // exact, immune to pow/multiply rounding
    return bounds;
}

Counter&
counter(const std::string& name)
{
    return MetricsRegistry::instance().counter(name);
}

Gauge&
gauge(const std::string& name)
{
    return MetricsRegistry::instance().gauge(name);
}

Histogram&
histogram(const std::string& name, std::vector<double> upper_bounds)
{
    return MetricsRegistry::instance().histogram(name,
                                                 std::move(upper_bounds));
}

bool
writeMetricsFile(const std::string& path)
{
    return util::writeFile(
        path, MetricsRegistry::instance().toJson().dumpPretty());
}

} // namespace smoothe::obs
