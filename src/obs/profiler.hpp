/**
 * @file
 * Per-op kernel profiler for the compiled autodiff Program.
 *
 * The compiled replay loop (src/autodiff/program.cpp) resolves one
 * Profiler::Kernel slot per scheduled op at compile time and, on
 * sampled replays, records each op's wall time plus its statically
 * estimated FLOPs and bytes moved — giving per-kernel call counts,
 * self times, and a roofline-style arithmetic-intensity estimate
 * (FLOP/byte). When a PerfCounters group is available the same slots
 * also accumulate hardware counters (cycles, instructions, cache
 * misses, branch misses) for the replaying thread.
 *
 * Cost model: disabled (the default), the replay pays one relaxed
 * atomic load and a branch per forward()/backward() call — the
 * disabled-overhead budget is < 1%, gated in CI via
 * bench_micro_kernels' profiler.disabled_overhead_pct measurement.
 * Compiling with SMOOTHE_NO_PROFILER makes profilerEnabled() a
 * constant false and the instrumented path dead code. Enabled, every
 * stride-th replay is instrumented (~two clock reads per op, plus one
 * counter read when perf is available); enabled-mode self times
 * include that per-op read cost, so kernel self times sum to the
 * recorded phase totals by construction.
 *
 * Exports: a "profile" section in the obs::Report schema (v2), a
 * collapsed-stack file for flamegraph tooling (--profile-out), and the
 * `smoothe_report profile` top-N kernel table.
 */

#ifndef SMOOTHE_OBS_PROFILER_HPP
#define SMOOTHE_OBS_PROFILER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf_counters.hpp"

namespace smoothe::util {
class Json;
} // namespace smoothe::util

namespace smoothe::obs {

namespace detail {
extern std::atomic<bool> profilerEnabled;
} // namespace detail

/** True while per-op profiling is on (one relaxed load); constant
 *  false when compiled out via SMOOTHE_NO_PROFILER. */
inline bool
profilerEnabled()
{
#if defined(SMOOTHE_NO_PROFILER)
    return false;
#else
    return detail::profilerEnabled.load(std::memory_order_relaxed);
#endif
}

/** Immutable copy of one kernel's accumulated attribution. */
struct KernelStats
{
    std::string name; ///< "<phase>.<kernel>", e.g. "forward.matmul"
    std::uint64_t calls = 0;
    double selfSeconds = 0.0;
    std::uint64_t flops = 0; ///< estimated, from op shapes
    std::uint64_t bytes = 0; ///< estimated bytes moved
    std::uint64_t counterSamples = 0; ///< op executions with perf data
    PerfSample counters;

    /** Arithmetic intensity in FLOP/byte (0 when no bytes recorded). */
    double
    intensity() const
    {
        return bytes > 0 ? static_cast<double>(flops) /
                               static_cast<double>(bytes)
                         : 0.0;
    }
};

/** The process-wide per-op profiler. */
class Profiler
{
  public:
    /** Which replay loop a sample or total belongs to. */
    enum class Phase : std::uint8_t { Forward = 0, Backward = 1 };
    static constexpr std::size_t kNumPhases = 2;

    /**
     * Per-kernel accumulator. References returned by kernel() stay
     * valid for the process lifetime, so replay loops resolve them
     * once at compile time and update them lock-free.
     */
    class Kernel
    {
      public:
        /** Adds one op execution (self time in nanoseconds). */
        void
        record(std::uint64_t self_nanos, std::uint64_t flop_count,
               std::uint64_t byte_count)
        {
            calls_.fetch_add(1, std::memory_order_relaxed);
            selfNanos_.fetch_add(self_nanos, std::memory_order_relaxed);
            flops_.fetch_add(flop_count, std::memory_order_relaxed);
            bytes_.fetch_add(byte_count, std::memory_order_relaxed);
        }

        /** Adds one op execution's hardware-counter deltas. */
        void
        recordCounters(const PerfSample& delta)
        {
            counterSamples_.fetch_add(1, std::memory_order_relaxed);
            cycles_.fetch_add(delta.cycles, std::memory_order_relaxed);
            instructions_.fetch_add(delta.instructions,
                                    std::memory_order_relaxed);
            cacheMisses_.fetch_add(delta.cacheMisses,
                                   std::memory_order_relaxed);
            branchMisses_.fetch_add(delta.branchMisses,
                                    std::memory_order_relaxed);
        }

        const std::string& name() const { return name_; }
        KernelStats stats() const;

      private:
        friend class Profiler;
        explicit Kernel(std::string name) : name_(std::move(name)) {}
        void reset();

        std::string name_;
        std::atomic<std::uint64_t> calls_{0};
        std::atomic<std::uint64_t> selfNanos_{0};
        std::atomic<std::uint64_t> flops_{0};
        std::atomic<std::uint64_t> bytes_{0};
        std::atomic<std::uint64_t> counterSamples_{0};
        std::atomic<std::uint64_t> cycles_{0};
        std::atomic<std::uint64_t> instructions_{0};
        std::atomic<std::uint64_t> cacheMisses_{0};
        std::atomic<std::uint64_t> branchMisses_{0};
    };

    static Profiler& instance();

    /**
     * Turns profiling on: every stride-th forward()/backward() replay
     * is instrumented (stride 1 = all, clamped to >= 1). Also probes
     * perf-counter availability on the calling thread so perfStatus()
     * reports a reason even before the first sampled replay.
     */
    void enable(std::size_t stride = 1);

    /** Turns profiling off; accumulated data stays readable. */
    void disable();

    bool enabled() const { return profilerEnabled(); }
    std::size_t stride() const;

    /**
     * Called once per replay by the instrumenting loop owner; counts
     * the replay and returns whether this one should be instrumented.
     */
    bool sampleReplay(Phase phase);

    /** Adds one sampled replay's loop wall time to the phase total. */
    void recordPhaseTotal(Phase phase, std::uint64_t nanos);

    /** Returns (creating on first use) the named kernel slot; the
     *  reference stays valid for the process lifetime. */
    Kernel& kernel(const std::string& name);

    /**
     * The calling thread's hardware-counter group, or nullptr when
     * perf access is unavailable (opened lazily, once per thread).
     */
    PerfCounters* threadCounters();

    bool perfAvailable() const;
    std::string perfStatus() const;

    /** Snapshot of every kernel with at least one recorded call. */
    std::vector<KernelStats> snapshot() const;

    std::uint64_t replays(Phase phase) const;
    std::uint64_t sampledReplays(Phase phase) const;
    double phaseSeconds(Phase phase) const;

    /** True once any sampled replay recorded kernel data. */
    bool hasData() const;

    /** Clears all accumulated data and replay counters (tests,
     *  multi-section benches); enablement is unchanged. */
    void reset();

    /** The report schema's "profile" section (see DESIGN.md). */
    util::Json toJson() const;

    /**
     * Collapsed-stack ("folded") export for flamegraph tooling: one
     * "smoothe;<phase>;<kernel> <self-microseconds>" line per kernel.
     */
    std::string toFolded() const;

  private:
    Profiler() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Kernel>> kernels_;
    std::atomic<std::size_t> stride_{1};
    std::string perfStatus_ = "unprobed";
    bool perfAvailable_ = false;
    bool perfProbed_ = false;
    std::atomic<std::uint64_t> replays_[kNumPhases] = {};
    std::atomic<std::uint64_t> sampled_[kNumPhases] = {};
    std::atomic<std::uint64_t> phaseNanos_[kNumPhases] = {};
};

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_PROFILER_HPP
