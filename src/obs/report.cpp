#include "obs/report.hpp"

#include <algorithm>
#include <cmath>

#include "obs/build_info.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::obs {

namespace {

/** Default phase-timer layout: exponential 1us .. 60s, 36 buckets. */
std::vector<double>
defaultPhaseBounds()
{
    return exponentialBounds(1e-6, 60.0, 36);
}

struct InstalledReport
{
    std::mutex mutex;
    std::unique_ptr<Report> report;
    std::string outputPath;
};

InstalledReport&
installedReport()
{
    // Intentionally leaked: the CLI layer flushes the report from an
    // atexit/terminate hook, which can run after normal static teardown.
    static InstalledReport* state = new InstalledReport; // smoothe-lint: allow(raw-new)
    return *state;
}

} // namespace

// --- Measurement ---------------------------------------------------------

Measurement&
Measurement::unit(std::string unit_label)
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    unit_ = std::move(unit_label);
    return *this;
}

Measurement&
Measurement::higherIsBetter()
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    lowerIsBetter_ = false;
    return *this;
}

Measurement&
Measurement::checked(bool on)
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    checked_ = on;
    return *this;
}

Measurement&
Measurement::tolerancePct(double pct)
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    tolerancePct_ = pct;
    return *this;
}

void
Measurement::add(double value)
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    values_.push_back(value);
}

std::size_t
Measurement::count() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    return values_.size();
}

double
Measurement::mean() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
Measurement::stddev() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (values_.size() < 2)
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    const double m = sum / static_cast<double>(values_.size());
    double sq = 0.0;
    for (double v : values_)
        sq += (v - m) * (v - m);
    return std::sqrt(sq / static_cast<double>(values_.size()));
}

double
Measurement::minValue() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    return values_.empty()
               ? 0.0
               : *std::min_element(values_.begin(), values_.end());
}

double
Measurement::maxValue() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    return values_.empty()
               ? 0.0
               : *std::max_element(values_.begin(), values_.end());
}

util::Json
Measurement::toJson() const
{
    util::Json entry = util::Json::makeObject();
    entry.set("unit", unit_);
    entry.set("better", lowerIsBetter_ ? "lower" : "higher");
    entry.set("checked", checked_);
    if (tolerancePct_ > 0.0)
        entry.set("tolerancePct", tolerancePct_);
    util::Json values = util::Json::makeArray();
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const double v = values_[i];
        values.push(v);
        sum += v;
        lo = i == 0 ? v : std::min(lo, v);
        hi = i == 0 ? v : std::max(hi, v);
    }
    const double n = static_cast<double>(values_.size());
    const double m = values_.empty() ? 0.0 : sum / n;
    double sq = 0.0;
    for (double v : values_)
        sq += (v - m) * (v - m);
    entry.set("values", std::move(values));
    entry.set("count", values_.size());
    entry.set("mean", m);
    entry.set("stddev", values_.size() < 2 ? 0.0 : std::sqrt(sq / n));
    entry.set("min", lo);
    entry.set("max", hi);
    return entry;
}

// --- PhaseTimer ----------------------------------------------------------

util::Json
PhaseTimer::toJson() const
{
    util::Json entry = util::Json::makeObject();
    entry.set("unit", "s");
    entry.set("count", histogram_.count());
    entry.set("sum", histogram_.sum());
    util::Json bounds = util::Json::makeArray();
    for (double bound : histogram_.bounds())
        bounds.push(bound);
    util::Json counts = util::Json::makeArray();
    for (std::size_t i = 0; i < histogram_.numBuckets(); ++i)
        counts.push(histogram_.bucketCount(i));
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(counts));
    entry.set("p50", histogram_.percentile(0.50));
    entry.set("p90", histogram_.percentile(0.90));
    entry.set("p99", histogram_.percentile(0.99));
    return entry;
}

// --- Series --------------------------------------------------------------

void
Series::addRow(std::vector<double> row)
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    row.resize(columns_.size(), 0.0);
    rows_.push_back(std::move(row));
}

std::size_t
Series::rowCount() const
{
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    return rows_.size();
}

util::Json
Series::toJson() const
{
    util::Json entry = util::Json::makeObject();
    util::Json columns = util::Json::makeArray();
    for (const std::string& column : columns_)
        columns.push(column);
    util::Json rows = util::Json::makeArray();
    for (const auto& row : rows_) {
        util::Json cells = util::Json::makeArray();
        for (double cell : row)
            cells.push(cell); // non-finite cells serialize as null
        rows.push(std::move(cells));
    }
    entry.set("columns", std::move(columns));
    entry.set("rows", std::move(rows));
    return entry;
}

// --- Report --------------------------------------------------------------

void
Report::setRun(const std::string& key, util::Json value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    run_.set(key, std::move(value));
}

Measurement&
Report::measurement(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = measurements_[name];
    if (!slot)
        slot.reset(new Measurement(this)); // smoothe-lint: allow(raw-new)
    return *slot;
}

PhaseTimer&
Report::phase(const std::string& name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = phases_[name];
    if (!slot) {
        if (bounds.empty())
            bounds = defaultPhaseBounds();
        slot.reset(new PhaseTimer(std::move(bounds))); // smoothe-lint: allow(raw-new)
    }
    return *slot;
}

Series&
Report::series(const std::string& name, std::vector<std::string> columns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = series_[name];
    if (!slot)
        slot.reset(new Series(this, std::move(columns))); // smoothe-lint: allow(raw-new)
    return *slot;
}

void
Report::setProfile(util::Json profile)
{
    std::lock_guard<std::mutex> lock(mutex_);
    profile_ = std::move(profile);
}

util::Json
Report::toJson(bool include_metrics) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    util::Json doc = util::Json::makeObject();
    doc.set("schema", kReportSchemaName);
    doc.set("schemaVersion", kReportSchemaVersion);

    util::Json run = util::Json::makeObject();
    run.set("tool", tool_);
    for (const auto& [key, value] : run_.asObject())
        run.set(key, value);
    doc.set("run", std::move(run));

    util::Json measurements = util::Json::makeObject();
    for (const auto& [name, entry] : measurements_)
        measurements.set(name, entry->toJson());
    doc.set("measurements", std::move(measurements));

    util::Json phases = util::Json::makeObject();
    for (const auto& [name, entry] : phases_)
        phases.set(name, entry->toJson());
    doc.set("phases", std::move(phases));

    util::Json series = util::Json::makeObject();
    for (const auto& [name, entry] : series_)
        series.set(name, entry->toJson());
    doc.set("series", std::move(series));

    if (!profile_.isNull())
        doc.set("profile", profile_);

    if (include_metrics)
        doc.set("metrics", MetricsRegistry::instance().toJson());
    return doc;
}

bool
Report::writeTo(const std::string& path) const
{
    return util::writeFile(path, toJson().dumpPretty());
}

Report*
Report::current()
{
    InstalledReport& state = installedReport();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.report.get();
}

Report&
Report::install(const std::string& tool, std::string output_path)
{
    InstalledReport& state = installedReport();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.report.reset(new Report(tool)); // smoothe-lint: allow(raw-new)
    state.outputPath = std::move(output_path);
    Report& report = *state.report;
    report.setRun("gitSha", kBuildGitSha);
    report.setRun("buildType", kBuildType);
    report.setRun("compiler", kBuildCompiler);
    report.setRun("threads", util::ThreadPool::global().size());
    return report;
}

bool
Report::flushCurrent()
{
    InstalledReport& state = installedReport();
    std::unique_lock<std::mutex> lock(state.mutex);
    if (!state.report || state.outputPath.empty())
        return true;
    // writeTo takes the report's own mutex only; safe under state.mutex.
    return state.report->writeTo(state.outputPath);
}

void
Report::uninstall()
{
    InstalledReport& state = installedReport();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.report.reset();
    state.outputPath.clear();
}

// --- Validation and regression checking ----------------------------------

namespace {

bool
failValidation(std::string* error, const std::string& message)
{
    if (error)
        *error = message;
    return false;
}

const util::Json*
findNumber(const util::Json& object, const char* key)
{
    const util::Json* value = object.find(key);
    return value && value->isNumber() ? value : nullptr;
}

} // namespace

bool
validateReportJson(const util::Json& doc, std::string* error)
{
    if (!doc.isObject())
        return failValidation(error, "report is not a JSON object");
    const util::Json* schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kReportSchemaName)
        return failValidation(error, "missing or wrong \"schema\" marker");
    const util::Json* version = doc.find("schemaVersion");
    if (!version || !version->isNumber())
        return failValidation(error, "missing \"schemaVersion\"");
    if (static_cast<int>(version->asNumber()) > kReportSchemaVersion)
        return failValidation(error, "report schema is newer than this "
                                     "reader");
    const util::Json* run = doc.find("run");
    if (!run || !run->isObject())
        return failValidation(error, "missing \"run\" object");
    const util::Json* tool = run->find("tool");
    if (!tool || !tool->isString())
        return failValidation(error, "run.tool missing");

    const util::Json* measurements = doc.find("measurements");
    if (!measurements || !measurements->isObject())
        return failValidation(error, "missing \"measurements\" object");
    for (const auto& [name, entry] : measurements->asObject()) {
        if (!entry.isObject())
            return failValidation(error, "measurement " + name +
                                             " is not an object");
        const util::Json* values = entry.find("values");
        if (!values || !values->isArray())
            return failValidation(error, "measurement " + name +
                                             " has no values array");
        if (!findNumber(entry, "mean") || !findNumber(entry, "stddev"))
            return failValidation(error, "measurement " + name +
                                             " has no mean/stddev");
    }

    const util::Json* phases = doc.find("phases");
    if (!phases || !phases->isObject())
        return failValidation(error, "missing \"phases\" object");
    for (const auto& [name, entry] : phases->asObject()) {
        if (!entry.isObject())
            return failValidation(error,
                                  "phase " + name + " is not an object");
        const util::Json* bounds = entry.find("bounds");
        const util::Json* counts = entry.find("counts");
        if (!bounds || !bounds->isArray() || !counts || !counts->isArray())
            return failValidation(error, "phase " + name +
                                             " has no bounds/counts");
        if (counts->asArray().size() != bounds->asArray().size() + 1)
            return failValidation(error, "phase " + name +
                                             " bucket count mismatch");
        if (!findNumber(entry, "p50") || !findNumber(entry, "p90") ||
            !findNumber(entry, "p99"))
            return failValidation(error, "phase " + name +
                                             " has no percentiles");
    }

    const util::Json* series = doc.find("series");
    if (!series || !series->isObject())
        return failValidation(error, "missing \"series\" object");
    for (const auto& [name, entry] : series->asObject()) {
        if (!entry.isObject())
            return failValidation(error,
                                  "series " + name + " is not an object");
        const util::Json* columns = entry.find("columns");
        const util::Json* rows = entry.find("rows");
        if (!columns || !columns->isArray() || !rows || !rows->isArray())
            return failValidation(error, "series " + name +
                                             " has no columns/rows");
        for (const util::Json& row : rows->asArray()) {
            if (!row.isArray() ||
                row.asArray().size() != columns->asArray().size())
                return failValidation(error, "series " + name +
                                                 " has a malformed row");
        }
    }

    // "profile" is new in schema v2 and stays optional: v1 documents
    // never carry it, v2 documents only when the profiler ran.
    if (const util::Json* profile = doc.find("profile")) {
        if (!profile->isObject())
            return failValidation(error, "\"profile\" is not an object");
        const util::Json* kernels = profile->find("kernels");
        if (!kernels || !kernels->isObject())
            return failValidation(error,
                                  "profile has no \"kernels\" object");
        for (const auto& [name, entry] : kernels->asObject()) {
            if (!entry.isObject() || !findNumber(entry, "calls") ||
                !findNumber(entry, "selfSeconds"))
                return failValidation(error,
                                      "profile kernel " + name +
                                          " has no calls/selfSeconds");
        }
    }
    return true;
}

int
reportSchemaVersion(const util::Json& doc)
{
    const util::Json* version = doc.find("schemaVersion");
    return version != nullptr && version->isNumber()
               ? static_cast<int>(version->asNumber())
               : 0;
}

std::vector<CheckFinding>
checkReports(const util::Json& baseline, const util::Json& candidate,
             double default_tolerance_pct)
{
    std::vector<CheckFinding> findings;
    const util::Json* baseMeasurements = baseline.find("measurements");
    const util::Json* candMeasurements = candidate.find("measurements");
    if (!baseMeasurements || !candMeasurements)
        return findings;
    for (const auto& [name, baseEntry] : baseMeasurements->asObject()) {
        const util::Json* checked = baseEntry.find("checked");
        if (checked && checked->isBool() && !checked->asBool())
            continue;
        const util::Json* candEntry = candMeasurements->find(name);
        if (!candEntry || !candEntry->isObject())
            continue; // absent in candidate: not comparable
        const util::Json* baseMean = findNumber(baseEntry, "mean");
        const util::Json* candMean = findNumber(*candEntry, "mean");
        if (!baseMean || !candMean)
            continue;

        CheckFinding finding;
        finding.measurement = name;
        finding.baseline = baseMean->asNumber();
        finding.candidate = candMean->asNumber();
        finding.tolerancePct = default_tolerance_pct;
        if (const util::Json* tol = findNumber(baseEntry, "tolerancePct"))
            finding.tolerancePct = tol->asNumber();

        const double denom = std::max(std::fabs(finding.baseline), 1e-12);
        finding.changePct =
            (finding.candidate - finding.baseline) / denom * 100.0;

        const util::Json* better = baseEntry.find("better");
        const bool lowerIsBetter =
            !better || !better->isString() || better->asString() != "higher";
        const double worsenedPct =
            lowerIsBetter ? finding.changePct : -finding.changePct;
        finding.regression = worsenedPct > finding.tolerancePct;
        findings.push_back(std::move(finding));
    }
    return findings;
}

} // namespace smoothe::obs
