#include "obs/trace.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace smoothe::obs {

namespace detail {
std::atomic<bool> traceEnabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Small dense per-process thread ids (Chrome wants integers). */
std::uint32_t
currentTid()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid = next.fetch_add(1);
    return tid;
}

} // namespace

struct TraceSession::Impl
{
    mutable std::mutex mutex;
    Clock::time_point t0 = Clock::now();

    struct Event
    {
        const char* name; ///< string literals at call sites
        const char* category;
        char phase;  ///< 'X' complete, 'C' counter, 'i' instant
        double tsUs; ///< relative microseconds
        double durUs = 0.0;
        double value = 0.0; ///< counter events
        std::uint32_t tid = 0;
    };
    std::vector<Event> events;
};

TraceSession&
TraceSession::instance()
{
    static TraceSession session;
    return session;
}

TraceSession::Impl&
TraceSession::impl() const
{
    static Impl storage;
    return storage;
}

void
TraceSession::start()
{
    Impl& state = impl();
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.events.clear();
        state.t0 = Clock::now();
    }
    detail::traceEnabled.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    detail::traceEnabled.store(false, std::memory_order_relaxed);
}

double
TraceSession::nowMicros() const
{
    const Impl& state = impl();
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     state.t0)
        .count();
}

void
TraceSession::addComplete(const char* name, const char* category,
                          double start_us)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.tsUs = start_us;
    event.durUs = nowMicros() - start_us;
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

void
TraceSession::addCounter(const char* name, double value)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = "metric";
    event.phase = 'C';
    event.tsUs = nowMicros();
    event.value = value;
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

void
TraceSession::addInstant(const char* name, const char* category)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = category;
    event.phase = 'i';
    event.tsUs = nowMicros();
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

std::size_t
TraceSession::eventCount() const
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.events.size();
}

util::Json
TraceSession::toJson() const
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    util::Json events = util::Json::makeArray();
    for (const Impl::Event& event : state.events) {
        util::Json entry = util::Json::makeObject();
        entry.set("name", event.name);
        entry.set("cat", event.category);
        entry.set("ph", std::string(1, event.phase));
        entry.set("pid", 1);
        entry.set("tid", static_cast<double>(event.tid));
        entry.set("ts", event.tsUs);
        if (event.phase == 'X')
            entry.set("dur", event.durUs);
        if (event.phase == 'C') {
            util::Json args = util::Json::makeObject();
            args.set("value", event.value);
            entry.set("args", std::move(args));
        }
        if (event.phase == 'i')
            entry.set("s", "t"); // thread-scoped instant
        events.push(std::move(entry));
    }
    util::Json doc = util::Json::makeObject();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

bool
TraceSession::writeTo(const std::string& path) const
{
    return util::writeFile(path, toJson().dump());
}

void
TraceSession::clear()
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.clear();
}

} // namespace smoothe::obs
