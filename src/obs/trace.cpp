#include "obs/trace.hpp"

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::obs {

namespace detail {
std::atomic<bool> traceEnabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** tid -> track label, recorded once per thread for "M" metadata events. */
struct ThreadNames
{
    std::mutex mutex;
    std::vector<std::pair<std::uint32_t, std::string>> entries;
};

ThreadNames&
threadNames()
{
    // Intentionally leaked: the first span can be recorded after the CLI
    // layer registers its atexit flush, so a normal static would be
    // destroyed before toJson() runs at exit.
    static ThreadNames* names = new ThreadNames; // smoothe-lint: allow(raw-new)
    return *names;
}

/**
 * Small dense per-process thread ids (Chrome wants integers). The first
 * call on each thread also records its track name: pool workers carry
 * their worker label so spans from parallel sections land on named
 * per-worker tracks.
 */
std::uint32_t
currentTid()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid = 0;
    if (tid == 0) {
        tid = next.fetch_add(1);
        const char* label = util::ThreadPool::currentThreadLabel();
        ThreadNames& names = threadNames();
        std::lock_guard<std::mutex> lock(names.mutex);
        names.entries.emplace_back(tid, label ? label : "main");
    }
    return tid;
}

} // namespace

struct TraceSession::Impl
{
    mutable std::mutex mutex;
    Clock::time_point t0 = Clock::now();

    struct Event
    {
        const char* name; ///< string literals at call sites
        const char* category;
        char phase;  ///< 'X' complete, 'C' counter, 'i' instant
        double tsUs; ///< relative microseconds
        double durUs = 0.0;
        double value = 0.0; ///< counter events
        std::uint32_t tid = 0;
    };
    std::vector<Event> events;
};

TraceSession&
TraceSession::instance()
{
    static TraceSession session;
    return session;
}

TraceSession::Impl&
TraceSession::impl() const
{
    static Impl storage;
    return storage;
}

void
TraceSession::start()
{
    Impl& state = impl();
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.events.clear();
        state.t0 = Clock::now();
    }
    detail::traceEnabled.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    detail::traceEnabled.store(false, std::memory_order_relaxed);
}

double
TraceSession::nowMicros() const
{
    const Impl& state = impl();
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     state.t0)
        .count();
}

void
TraceSession::addComplete(const char* name, const char* category,
                          double start_us)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.tsUs = start_us;
    event.durUs = nowMicros() - start_us;
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

void
TraceSession::addCounter(const char* name, double value)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = "metric";
    event.phase = 'C';
    event.tsUs = nowMicros();
    event.value = value;
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

void
TraceSession::addInstant(const char* name, const char* category)
{
    if (!enabled())
        return;
    Impl& state = impl();
    Impl::Event event;
    event.name = name;
    event.category = category;
    event.phase = 'i';
    event.tsUs = nowMicros();
    event.tid = currentTid();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.push_back(event);
}

std::size_t
TraceSession::eventCount() const
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.events.size();
}

util::Json
TraceSession::toJson() const
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    util::Json events = util::Json::makeArray();
    {
        ThreadNames& names = threadNames();
        std::lock_guard<std::mutex> nameLock(names.mutex);
        for (const auto& [tid, label] : names.entries) {
            util::Json entry = util::Json::makeObject();
            entry.set("name", "thread_name");
            entry.set("ph", "M");
            entry.set("pid", 1);
            entry.set("tid", static_cast<double>(tid));
            entry.set("ts", 0.0);
            util::Json args = util::Json::makeObject();
            args.set("name", label);
            entry.set("args", std::move(args));
            events.push(std::move(entry));
        }
    }
    for (const Impl::Event& event : state.events) {
        util::Json entry = util::Json::makeObject();
        entry.set("name", event.name);
        entry.set("cat", event.category);
        entry.set("ph", std::string(1, event.phase));
        entry.set("pid", 1);
        entry.set("tid", static_cast<double>(event.tid));
        entry.set("ts", event.tsUs);
        if (event.phase == 'X')
            entry.set("dur", event.durUs);
        if (event.phase == 'C') {
            util::Json args = util::Json::makeObject();
            args.set("value", event.value);
            entry.set("args", std::move(args));
        }
        if (event.phase == 'i')
            entry.set("s", "t"); // thread-scoped instant
        events.push(std::move(entry));
    }
    util::Json doc = util::Json::makeObject();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

bool
TraceSession::writeTo(const std::string& path) const
{
    return util::writeFile(path, toJson().dump());
}

void
TraceSession::clear()
{
    Impl& state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.clear();
}

} // namespace smoothe::obs
