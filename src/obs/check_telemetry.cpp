#include "obs/check_telemetry.hpp"

#include <cstring>

#include "check/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace smoothe::obs {

namespace {

/** Counter name for a tier ("CHECK" -> "check.failures.check"). */
const char*
tierCounterName(const char* tier)
{
    if (std::strcmp(tier, "ASSERT") == 0)
        return "check.failures.assert";
    if (std::strcmp(tier, "DCHECK") == 0)
        return "check.failures.dcheck";
    return "check.failures.check";
}

void
observeViolation(const check::ViolationInfo& info)
{
    static Logger logger("check");
    counter("check.failures").add();
    counter(tierCounterName(info.tier)).add();
    logger.error("%s failed at %s:%d: %s%s%s", info.tier, info.file,
                 info.line, info.expression,
                 info.message[0] == '\0' ? "" : " — ", info.message);
}

} // namespace

bool
installCheckTelemetry()
{
    return check::setViolationObserver(&observeViolation) != nullptr;
}

} // namespace smoothe::obs
