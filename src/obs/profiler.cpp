#include "obs/profiler.hpp"

#include "util/json.hpp"

namespace smoothe::obs {

namespace detail {
std::atomic<bool> profilerEnabled{false};
} // namespace detail

namespace {

constexpr const char* kPhaseNames[Profiler::kNumPhases] = {"forward",
                                                          "backward"};

} // namespace

// --- Kernel --------------------------------------------------------------

KernelStats
Profiler::Kernel::stats() const
{
    KernelStats out;
    out.name = name_;
    out.calls = calls_.load(std::memory_order_relaxed);
    out.selfSeconds =
        static_cast<double>(selfNanos_.load(std::memory_order_relaxed)) *
        1e-9;
    out.flops = flops_.load(std::memory_order_relaxed);
    out.bytes = bytes_.load(std::memory_order_relaxed);
    out.counterSamples = counterSamples_.load(std::memory_order_relaxed);
    out.counters.cycles = cycles_.load(std::memory_order_relaxed);
    out.counters.instructions =
        instructions_.load(std::memory_order_relaxed);
    out.counters.cacheMisses = cacheMisses_.load(std::memory_order_relaxed);
    out.counters.branchMisses =
        branchMisses_.load(std::memory_order_relaxed);
    return out;
}

void
Profiler::Kernel::reset()
{
    calls_.store(0, std::memory_order_relaxed);
    selfNanos_.store(0, std::memory_order_relaxed);
    flops_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    counterSamples_.store(0, std::memory_order_relaxed);
    cycles_.store(0, std::memory_order_relaxed);
    instructions_.store(0, std::memory_order_relaxed);
    cacheMisses_.store(0, std::memory_order_relaxed);
    branchMisses_.store(0, std::memory_order_relaxed);
}

// --- Profiler ------------------------------------------------------------

Profiler&
Profiler::instance()
{
    // Intentionally leaked: the CLI exit hooks serialize the profiler
    // after normal static teardown may have begun.
    static Profiler* singleton = new Profiler; // smoothe-lint: allow(raw-new)
    return *singleton;
}

void
Profiler::enable(std::size_t stride)
{
    stride_.store(stride == 0 ? 1 : stride, std::memory_order_relaxed);
    threadCounters(); // probe perf availability for reporting
    detail::profilerEnabled.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    detail::profilerEnabled.store(false, std::memory_order_relaxed);
}

std::size_t
Profiler::stride() const
{
    return stride_.load(std::memory_order_relaxed);
}

bool
Profiler::sampleReplay(Phase phase)
{
    const auto index = static_cast<std::size_t>(phase);
    const std::uint64_t n =
        replays_[index].fetch_add(1, std::memory_order_relaxed);
    if (n % stride() != 0)
        return false;
    sampled_[index].fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
Profiler::recordPhaseTotal(Phase phase, std::uint64_t nanos)
{
    phaseNanos_[static_cast<std::size_t>(phase)].fetch_add(
        nanos, std::memory_order_relaxed);
}

Profiler::Kernel&
Profiler::kernel(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = kernels_[name];
    if (!slot)
        slot.reset(new Kernel(name)); // smoothe-lint: allow(raw-new)
    return *slot;
}

PerfCounters*
Profiler::threadCounters()
{
    thread_local std::unique_ptr<PerfCounters> group;
    thread_local bool opened = false;
    if (!opened) {
        opened = true;
        group = std::make_unique<PerfCounters>();
        std::lock_guard<std::mutex> lock(mutex_);
        // First probe wins; a later thread that does get counters
        // upgrades the process-level verdict.
        if (!perfProbed_ || group->available()) {
            perfProbed_ = true;
            perfAvailable_ = group->available();
            perfStatus_ = group->status();
        }
    }
    return group && group->available() ? group.get() : nullptr;
}

bool
Profiler::perfAvailable() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return perfAvailable_;
}

std::string
Profiler::perfStatus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return perfProbed_ ? perfStatus_ : "unprobed";
}

std::vector<KernelStats>
Profiler::snapshot() const
{
    std::vector<KernelStats> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(kernels_.size());
    for (const auto& [name, kernel] : kernels_) {
        KernelStats stats = kernel->stats();
        if (stats.calls > 0)
            out.push_back(std::move(stats));
    }
    return out;
}

std::uint64_t
Profiler::replays(Phase phase) const
{
    return replays_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
}

std::uint64_t
Profiler::sampledReplays(Phase phase) const
{
    return sampled_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
}

double
Profiler::phaseSeconds(Phase phase) const
{
    return static_cast<double>(
               phaseNanos_[static_cast<std::size_t>(phase)].load(
                   std::memory_order_relaxed)) *
           1e-9;
}

bool
Profiler::hasData() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, kernel] : kernels_) {
        (void)name;
        if (kernel->stats().calls > 0)
            return true;
    }
    return false;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, kernel] : kernels_) {
        (void)name;
        kernel->reset();
    }
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        replays_[i].store(0, std::memory_order_relaxed);
        sampled_[i].store(0, std::memory_order_relaxed);
        phaseNanos_[i].store(0, std::memory_order_relaxed);
    }
}

util::Json
Profiler::toJson() const
{
    util::Json profile = util::Json::makeObject();
    profile.set("stride", stride());

    util::Json perf = util::Json::makeObject();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        perf.set("available", perfAvailable_);
        perf.set("status", perfProbed_ ? perfStatus_ : "unprobed");
    }
    profile.set("perf", std::move(perf));

    util::Json totals = util::Json::makeObject();
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const auto phase = static_cast<Phase>(i);
        util::Json entry = util::Json::makeObject();
        entry.set("seconds", phaseSeconds(phase));
        entry.set("replays", static_cast<double>(replays(phase)));
        entry.set("sampled", static_cast<double>(sampledReplays(phase)));
        totals.set(kPhaseNames[i], std::move(entry));
    }
    profile.set("totals", std::move(totals));

    util::Json kernels = util::Json::makeObject();
    for (const KernelStats& stats : snapshot()) {
        util::Json entry = util::Json::makeObject();
        entry.set("calls", static_cast<double>(stats.calls));
        entry.set("selfSeconds", stats.selfSeconds);
        entry.set("flops", static_cast<double>(stats.flops));
        entry.set("bytes", static_cast<double>(stats.bytes));
        entry.set("intensityFlopPerByte", stats.intensity());
        entry.set("counterSamples",
                  static_cast<double>(stats.counterSamples));
        entry.set("cycles", static_cast<double>(stats.counters.cycles));
        entry.set("instructions",
                  static_cast<double>(stats.counters.instructions));
        entry.set("cacheMisses",
                  static_cast<double>(stats.counters.cacheMisses));
        entry.set("branchMisses",
                  static_cast<double>(stats.counters.branchMisses));
        kernels.set(stats.name, std::move(entry));
    }
    profile.set("kernels", std::move(kernels));
    return profile;
}

std::string
Profiler::toFolded() const
{
    std::string out;
    for (const KernelStats& stats : snapshot()) {
        std::string line = "smoothe;";
        for (const char c : stats.name)
            line += c == '.' ? ';' : c;
        line += ' ';
        line += std::to_string(
            static_cast<std::uint64_t>(stats.selfSeconds * 1e6));
        line += '\n';
        out += line;
    }
    return out;
}

} // namespace smoothe::obs
