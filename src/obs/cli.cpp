#include "obs/cli.hpp"

#include <cstdlib>
#include <exception>
#include <mutex>

#include "obs/check_telemetry.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::obs {

namespace {

struct CliState
{
    std::mutex mutex;
    std::string traceOut;
    std::string metricsOut;
    std::string profileOut;
    bool hooksRegistered = false;
    std::terminate_handler previousTerminate = nullptr;
};

CliState&
cliState()
{
    static CliState state;
    return state;
}

void
flushAtExit()
{
    flushCliTelemetry();
}

/**
 * std::terminate runs for uncaught exceptions and std::terminate()
 * calls, where atexit handlers never fire: flush whatever telemetry is
 * buffered so --trace-out/--metrics-out/--report-out files are valid
 * JSON snapshots of the aborted run, then chain to the previous handler
 * (which normally calls abort()).
 */
[[noreturn]] void
flushOnTerminate()
{
    flushCliTelemetry();
    const std::terminate_handler previous = [] {
        CliState& state = cliState();
        std::lock_guard<std::mutex> lock(state.mutex);
        return state.previousTerminate;
    }();
    if (previous)
        previous();
    std::abort();
}

} // namespace

void
installTelemetryExitHooks()
{
    CliState& state = cliState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.hooksRegistered)
        return;
    std::atexit(flushAtExit);
    state.previousTerminate = std::set_terminate(flushOnTerminate);
    state.hooksRegistered = true;
}

std::string
toolNameFromArgv0(const char* argv0, const char* fallback)
{
    if (argv0 == nullptr || *argv0 == '\0')
        return fallback;
    const std::string path(argv0);
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base.empty() ? std::string(fallback) : base;
}

void
installCliTelemetry(const util::Args& args, const char* tool)
{
    Logger log("obs");
    installCheckTelemetry();

    const std::string level = args.getString("log-level", "");
    if (!level.empty() && !configureLogging(level))
        log.warn("ignoring invalid --log-level \"%s\"", level.c_str());

    const std::string logJson = args.getString("log-json", "");
    if (!logJson.empty() && !addJsonlLogSink(logJson))
        log.warn("cannot open --log-json file %s", logJson.c_str());

    const std::string traceOut = args.getString("trace-out", "");
    const std::string metricsOut = args.getString("metrics-out", "");

    const std::int64_t threads = args.getInt("threads", 0);
    if (threads < 0) {
        log.warn("ignoring invalid --threads %lld",
                 static_cast<long long>(threads));
    } else if (!util::ThreadPool::onWorkerThread()) {
        // 0 = auto (hardware concurrency); the pool clamps internally.
        const std::size_t size = util::ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(threads));
        gauge("threads").set(static_cast<double>(size));
        if (threads > 0)
            log.info("thread pool: %zu workers", size);
    }

    // Force the registry singletons into existence now, so their static
    // storage outlives the atexit flush handler registered below.
    counter("obs.cli_installs").add(1);

    const std::string reportOut = args.getString("report-out", "");
    if (!reportOut.empty())
        Report::install(tool ? tool : "unknown", reportOut);

    // --profile turns per-op attribution on; --profile-out implies it
    // (no point writing an empty flamegraph) and names the collapsed-
    // stack file written at exit/terminate.
    const std::string profileOut = args.getString("profile-out", "");
    const std::int64_t profileStride = args.getInt("profile-stride", 1);
    if (args.getBool("profile", false) || !profileOut.empty()) {
        Profiler::instance().enable(
            profileStride > 0 ? static_cast<std::size_t>(profileStride)
                              : 1);
    }

    {
        CliState& state = cliState();
        std::lock_guard<std::mutex> lock(state.mutex);
        state.traceOut = traceOut;
        state.metricsOut = metricsOut;
        state.profileOut = profileOut;
        if (!traceOut.empty())
            TraceSession::instance().start();
    }
    if (!traceOut.empty() || !metricsOut.empty() || !reportOut.empty() ||
        !profileOut.empty())
        installTelemetryExitHooks();
}

bool
flushCliTelemetry()
{
    std::string traceOut;
    std::string metricsOut;
    std::string profileOut;
    {
        CliState& state = cliState();
        std::lock_guard<std::mutex> lock(state.mutex);
        traceOut = state.traceOut;
        metricsOut = state.metricsOut;
        profileOut = state.profileOut;
    }
    bool ok = true;
    Logger log("obs");
    if (!traceOut.empty()) {
        TraceSession::instance().stop();
        if (TraceSession::instance().writeTo(traceOut)) {
            log.info("wrote trace to %s", traceOut.c_str());
        } else {
            log.error("cannot write trace file %s", traceOut.c_str());
            ok = false;
        }
    }
    if (!metricsOut.empty()) {
        if (writeMetricsFile(metricsOut)) {
            log.info("wrote metrics to %s", metricsOut.c_str());
        } else {
            log.error("cannot write metrics file %s", metricsOut.c_str());
            ok = false;
        }
    }
    // Profiler output is attached/written whenever data exists — the
    // profiler may have been enabled programmatically (benches) rather
    // than via --profile, and it may already be disabled again.
    if (Profiler::instance().hasData()) {
        if (Report* report = Report::current())
            report->setProfile(Profiler::instance().toJson());
        if (!profileOut.empty()) {
            if (util::writeFile(profileOut,
                                Profiler::instance().toFolded())) {
                log.info("wrote profile to %s", profileOut.c_str());
            } else {
                log.error("cannot write profile file %s",
                          profileOut.c_str());
                ok = false;
            }
        }
    }
    if (!Report::flushCurrent()) {
        log.error("cannot write report file");
        ok = false;
    }
    return ok;
}

std::size_t
reportUnknownFlags(const util::Args& args, const char* program)
{
    const std::vector<std::string> unknown = args.unrecognized();
    if (!unknown.empty()) {
        Logger log("cli");
        for (const std::string& name : unknown)
            log.error("%s: unrecognized flag --%s", program, name.c_str());
    }
    return unknown.size();
}

} // namespace smoothe::obs
