#include "obs/cli.hpp"

#include <cstdlib>
#include <mutex>

#include "obs/check_telemetry.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::obs {

namespace {

struct CliState
{
    std::mutex mutex;
    std::string traceOut;
    std::string metricsOut;
    bool atexitRegistered = false;
};

CliState&
cliState()
{
    static CliState state;
    return state;
}

void
flushAtExit()
{
    flushCliTelemetry();
}

} // namespace

void
installCliTelemetry(const util::Args& args)
{
    Logger log("obs");
    installCheckTelemetry();

    const std::string level = args.getString("log-level", "");
    if (!level.empty() && !configureLogging(level))
        log.warn("ignoring invalid --log-level \"%s\"", level.c_str());

    const std::string logJson = args.getString("log-json", "");
    if (!logJson.empty() && !addJsonlLogSink(logJson))
        log.warn("cannot open --log-json file %s", logJson.c_str());

    const std::string traceOut = args.getString("trace-out", "");
    const std::string metricsOut = args.getString("metrics-out", "");

    const std::int64_t threads = args.getInt("threads", 0);
    if (threads < 0) {
        log.warn("ignoring invalid --threads %lld",
                 static_cast<long long>(threads));
    } else if (!util::ThreadPool::onWorkerThread()) {
        // 0 = auto (hardware concurrency); the pool clamps internally.
        const std::size_t size = util::ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(threads));
        gauge("threads").set(static_cast<double>(size));
        if (threads > 0)
            log.info("thread pool: %zu workers", size);
    }

    // Force the registry singletons into existence now, so their static
    // storage outlives the atexit flush handler registered below.
    counter("obs.cli_installs").add(1);

    CliState& state = cliState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.traceOut = traceOut;
    state.metricsOut = metricsOut;
    if (!traceOut.empty())
        TraceSession::instance().start();
    if ((!traceOut.empty() || !metricsOut.empty()) &&
        !state.atexitRegistered) {
        std::atexit(flushAtExit);
        state.atexitRegistered = true;
    }
}

bool
flushCliTelemetry()
{
    std::string traceOut;
    std::string metricsOut;
    {
        CliState& state = cliState();
        std::lock_guard<std::mutex> lock(state.mutex);
        traceOut = state.traceOut;
        metricsOut = state.metricsOut;
    }
    bool ok = true;
    Logger log("obs");
    if (!traceOut.empty()) {
        TraceSession::instance().stop();
        if (TraceSession::instance().writeTo(traceOut)) {
            log.info("wrote trace to %s", traceOut.c_str());
        } else {
            log.error("cannot write trace file %s", traceOut.c_str());
            ok = false;
        }
    }
    if (!metricsOut.empty()) {
        if (writeMetricsFile(metricsOut)) {
            log.info("wrote metrics to %s", metricsOut.c_str());
        } else {
            log.error("cannot write metrics file %s", metricsOut.c_str());
            ok = false;
        }
    }
    return ok;
}

std::size_t
reportUnknownFlags(const util::Args& args, const char* program)
{
    const std::vector<std::string> unknown = args.unrecognized();
    if (!unknown.empty()) {
        Logger log("cli");
        for (const std::string& name : unknown)
            log.error("%s: unrecognized flag --%s", program, name.c_str());
    }
    return unknown.size();
}

} // namespace smoothe::obs
