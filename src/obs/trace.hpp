/**
 * @file
 * Chrome trace-event recording: RAII spans and counter events that load
 * into chrome://tracing or Perfetto.
 *
 * A single process-wide TraceSession collects events while enabled.
 * Spans emit "complete" events (ph "X" with pid/tid/ts/dur); counter
 * events (ph "C") chart scalar series like loss curves over time. When
 * the session is disabled — the default — a span costs one relaxed
 * atomic load and a branch, and allocates nothing.
 */

#ifndef SMOOTHE_OBS_TRACE_HPP
#define SMOOTHE_OBS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>

namespace smoothe::util {
class Json;
} // namespace smoothe::util

namespace smoothe::obs {

namespace detail {
extern std::atomic<bool> traceEnabled;
} // namespace detail

/** True while a trace session is recording (one relaxed load). */
inline bool
traceEnabled()
{
    return detail::traceEnabled.load(std::memory_order_relaxed);
}

/** The process-wide trace-event collector. */
class TraceSession
{
  public:
    static TraceSession& instance();

    /** Clears prior events, restarts the clock, starts recording. */
    void start();

    /** Stops recording; collected events stay available. */
    void stop();

    bool enabled() const { return obs::traceEnabled(); }

    /** Microseconds since start() (0 before the first start). */
    double nowMicros() const;

    /** Records a complete event closing now; no-op when disabled. */
    void addComplete(const char* name, const char* category,
                     double start_us);

    /** Records a counter event (ph "C") at the current time. */
    void addCounter(const char* name, double value);

    /** Records an instant event (ph "i") at the current time. */
    void addInstant(const char* name, const char* category);

    std::size_t eventCount() const;

    /** {"traceEvents": [...], "displayTimeUnit": "ms"}. */
    util::Json toJson() const;

    /** Writes toJson() to a file; false on I/O error. */
    bool writeTo(const std::string& path) const;

    /** Drops all recorded events (does not change enablement). */
    void clear();

  private:
    TraceSession() = default;
    struct Impl;
    Impl& impl() const;
};

/**
 * RAII span: emits one complete trace event covering its lifetime.
 * Construction and destruction are a branch on an atomic when disabled.
 */
class Span
{
  public:
    explicit Span(const char* name, const char* category = "smoothe")
        : name_(name), category_(category), active_(obs::traceEnabled())
    {
        if (active_)
            startUs_ = TraceSession::instance().nowMicros();
    }

    ~Span() { end(); }

    /** Closes the span early; the destructor then does nothing. */
    void
    end()
    {
        if (active_) {
            active_ = false;
            TraceSession::instance().addComplete(name_, category_,
                                                 startUs_);
        }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

  private:
    const char* name_;
    const char* category_;
    double startUs_ = 0.0;
    bool active_;
};

/** Emits a counter event when tracing is enabled; otherwise free. */
inline void
traceCounter(const char* name, double value)
{
    if (obs::traceEnabled())
        TraceSession::instance().addCounter(name, value);
}

/** Emits an instant event when tracing is enabled; otherwise free. */
inline void
traceInstant(const char* name, const char* category = "smoothe")
{
    if (obs::traceEnabled())
        TraceSession::instance().addInstant(name, category);
}

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_TRACE_HPP
