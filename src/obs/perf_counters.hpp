/**
 * @file
 * Hardware performance counters via perf_event_open: cycles,
 * instructions, cache misses, and branch misses for the calling thread.
 *
 * Containers and hardened kernels routinely deny perf access
 * (perf_event_paranoid, seccomp, missing PMU); construction therefore
 * never fails — an unavailable counter group reports available() ==
 * false with a human-readable status() reason, and read() returns
 * zeros. Callers (the obs::Profiler) degrade to wall-time-only
 * attribution and surface the reason in their output instead of
 * failing the run.
 *
 * Counters are opened on — and measure — the constructing thread only.
 * Kernels that fan work out to the pool (parallelChunks is
 * caller-participates) are therefore attributed the caller's share of
 * the work; wall times remain the authoritative cross-thread signal.
 */

#ifndef SMOOTHE_OBS_PERF_COUNTERS_HPP
#define SMOOTHE_OBS_PERF_COUNTERS_HPP

#include <cstdint>
#include <string>

namespace smoothe::obs {

/** One reading of the counter group (monotonic totals since open). */
struct PerfSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;

    PerfSample
    operator-(const PerfSample& other) const
    {
        PerfSample d;
        d.cycles = cycles - other.cycles;
        d.instructions = instructions - other.instructions;
        d.cacheMisses = cacheMisses - other.cacheMisses;
        d.branchMisses = branchMisses - other.branchMisses;
        return d;
    }

    PerfSample&
    operator+=(const PerfSample& other)
    {
        cycles += other.cycles;
        instructions += other.instructions;
        cacheMisses += other.cacheMisses;
        branchMisses += other.branchMisses;
        return *this;
    }
};

/**
 * An open group of per-thread hardware counters. Cycles is the
 * availability anchor: when it cannot be opened the whole group is
 * unavailable. The other three degrade individually (a VM without a
 * cache-miss event still reports cycles/instructions); absent counters
 * read as 0 and are listed in status().
 */
class PerfCounters
{
  public:
    /** Opens the counters on the calling thread; never throws. */
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    /** True when at least the cycle counter is live. */
    bool available() const { return fds_[0] >= 0; }

    /** "ok", "ok (no cache-misses)", or the open-failure reason. */
    const std::string& status() const { return status_; }

    /** Current totals; all-zero when unavailable. */
    PerfSample read() const;

  private:
    int fds_[4] = {-1, -1, -1, -1};
    std::string status_;
};

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_PERF_COUNTERS_HPP
