/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and fixed-bucket
 * histograms, dumpable as JSON.
 *
 * Metrics are registered lazily on first use and live for the process
 * lifetime, so call sites can cache a reference once (typically in a
 * function-local static) and then update it with a single relaxed atomic
 * operation — cheap enough for kernel-level hot paths. The registry is
 * thread-safe; updates never allocate.
 */

#ifndef SMOOTHE_OBS_METRICS_HPP
#define SMOOTHE_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace smoothe::util {
class Json;
} // namespace smoothe::util

namespace smoothe::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value) { value_.store(value, std::memory_order_relaxed); }

    double get() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
 * an implicit +inf overflow bucket. Bucket bounds are fixed at
 * registration; observe() is lock-free and allocation-free.
 */
class Histogram
{
  public:
    /** @param upper_bounds ascending inclusive upper bounds */
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double value);

    /** Number of buckets including the overflow bucket. */
    std::size_t numBuckets() const { return bounds_.size() + 1; }
    std::uint64_t bucketCount(std::size_t i) const;
    const std::vector<double>& bounds() const { return bounds_; }
    std::uint64_t count() const;
    double sum() const;
    void reset();

    /**
     * Interpolated quantile estimate from the bucket counts.
     *
     * @param q quantile in [0, 1] (0.5 = median)
     * @return the estimated observation value: linear interpolation
     *   between the enclosing bucket's boundaries, with the first bucket
     *   interpolated from 0 (observations are assumed non-negative, as
     *   for durations). Quantiles landing in the +inf overflow bucket
     *   clamp to the highest finite bound; an empty histogram returns 0.
     */
    double percentile(double q) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** The process-wide named-metric registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry& instance();

    /** Returns (registering on first use) the named metric; the reference
     *  stays valid for the process lifetime. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /** bounds are used only on first registration of the name. */
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds);

    /**
     * Flat JSON object: counters and gauges as numbers, histograms as
     * {"bounds": [...], "counts": [...], "count": n, "sum": s}.
     */
    util::Json toJson() const;

    /** Zeroes every metric, keeping registrations (tests, multi-run). */
    void reset();

  private:
    MetricsRegistry() = default;
    struct Impl;
    Impl& impl() const;
};

/**
 * Geometrically spaced histogram bucket boundaries: `count` ascending
 * bounds from `first` to `last` inclusive (both > 0, count >= 2). The
 * standard layout for duration histograms, where relative resolution
 * matters across orders of magnitude.
 */
std::vector<double> exponentialBounds(double first, double last,
                                      std::size_t count);

/** Shorthand for MetricsRegistry::instance().counter(name) etc. */
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::vector<double> upper_bounds);

/** Writes the registry JSON (pretty) to a file; false on I/O error. */
bool writeMetricsFile(const std::string& path);

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_METRICS_HPP
