/**
 * @file
 * Figure 8 phase accumulator, reimplemented on top of trace spans.
 *
 * The wall-clock accumulation API (lossSeconds et al.) is unchanged from
 * the original util::PhaseProfiler, so the Figure 8 bench output is
 * byte-identical; additionally each scope now emits a "phase"-category
 * trace span when a TraceSession is recording.
 */

#ifndef SMOOTHE_OBS_PHASE_PROFILER_HPP
#define SMOOTHE_OBS_PHASE_PROFILER_HPP

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::obs {

/** Accumulates time spent in named phases (used for Figure 8 profiling). */
class PhaseProfiler
{
  public:
    /** RAII scope: adds its lifetime to the slot and emits a span. */
    class Scope
    {
      public:
        Scope(const char* name, double& slot)
            : slot_(slot), span_(name, "phase")
        {}
        ~Scope() { slot_ += timer_.seconds(); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        double& slot_;
        Span span_;
        util::Timer timer_;
    };

    double lossSeconds = 0.0;     ///< forward pass / loss calculation
    double gradientSeconds = 0.0; ///< backward pass + optimizer step
    double samplingSeconds = 0.0; ///< discrete sampling + validation
    double otherSeconds = 0.0;    ///< setup, bookkeeping

    Scope loss() { return Scope("loss", lossSeconds); }
    Scope gradient() { return Scope("gradient", gradientSeconds); }
    Scope sampling() { return Scope("sampling", samplingSeconds); }
    Scope other() { return Scope("other", otherSeconds); }

    double
    total() const
    {
        return lossSeconds + gradientSeconds + samplingSeconds + otherSeconds;
    }
};

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_PHASE_PROFILER_HPP
