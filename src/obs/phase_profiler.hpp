/**
 * @file
 * Figure 8 phase accumulator, reimplemented on top of trace spans.
 *
 * The wall-clock accumulation API (lossSeconds et al.) is unchanged from
 * the original util::PhaseProfiler, so the Figure 8 bench output is
 * byte-identical; additionally each scope now emits a "phase"-category
 * trace span when a TraceSession is recording, and observes its duration
 * into the process report's per-phase histogram timer (interpolated
 * p50/p90/p99 in the report's "phases" section) when a report is
 * installed.
 */

#ifndef SMOOTHE_OBS_PHASE_PROFILER_HPP
#define SMOOTHE_OBS_PHASE_PROFILER_HPP

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace smoothe::obs {

/** Accumulates time spent in named phases (used for Figure 8 profiling). */
class PhaseProfiler
{
  public:
    /** RAII scope: adds its lifetime to the slot, emits a span, and
     *  feeds the report's phase histogram when one is installed. */
    class Scope
    {
      public:
        Scope(const char* name, double& slot)
            : name_(name), slot_(slot), span_(name, "phase")
        {}
        ~Scope()
        {
            const double seconds = timer_.seconds();
            slot_ += seconds;
            if (Report* report = Report::current())
                report->phase(name_).observe(seconds);
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        const char* name_;
        double& slot_;
        Span span_;
        util::Timer timer_;
    };

    double lossSeconds = 0.0;     ///< forward pass / loss calculation
    double gradientSeconds = 0.0; ///< backward pass + optimizer step
    double samplingSeconds = 0.0; ///< discrete sampling + validation
    double otherSeconds = 0.0;    ///< setup, bookkeeping

    Scope loss() { return Scope("loss", lossSeconds); }
    Scope gradient() { return Scope("gradient", gradientSeconds); }
    Scope sampling() { return Scope("sampling", samplingSeconds); }
    Scope other() { return Scope("other", otherSeconds); }

    double
    total() const
    {
        return lossSeconds + gradientSeconds + samplingSeconds + otherSeconds;
    }
};

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_PHASE_PROFILER_HPP
