/**
 * @file
 * Umbrella header for the telemetry subsystem: structured logging
 * (obs/log.hpp), the metrics registry (obs/metrics.hpp), Chrome trace
 * spans (obs/trace.hpp), the span-backed phase profiler
 * (obs/phase_profiler.hpp), and structured run reports (obs/report.hpp).
 * See DESIGN.md's "Observability" and "Telemetry pipeline" sections for
 * the metric name catalogue and usage conventions.
 */

#ifndef SMOOTHE_OBS_OBS_HPP
#define SMOOTHE_OBS_OBS_HPP

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

#endif // SMOOTHE_OBS_OBS_HPP
