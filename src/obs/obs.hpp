/**
 * @file
 * Umbrella header for the telemetry subsystem: structured logging
 * (obs/log.hpp), the metrics registry (obs/metrics.hpp), Chrome trace
 * spans (obs/trace.hpp), and the span-backed phase profiler
 * (obs/phase_profiler.hpp). See DESIGN.md's "Observability" section for
 * the metric name catalogue and usage conventions.
 */

#ifndef SMOOTHE_OBS_OBS_HPP
#define SMOOTHE_OBS_OBS_HPP

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/trace.hpp"

#endif // SMOOTHE_OBS_OBS_HPP
