/**
 * @file
 * Structured benchmark run reports: the durable, versioned counterpart to
 * the human-readable tables the bench binaries print.
 *
 * A Report collects, for one process run:
 *   - run metadata (tool name, git sha, build flags, thread count,
 *     dataset/family, arbitrary key/value pairs),
 *   - named scalar measurement series with mean/stddev/min/max,
 *   - per-phase histogram timers (exponential buckets, interpolated
 *     p50/p90/p99),
 *   - named tabular series (e.g. the SmoothE convergence recorder), and
 *   - a final snapshot of the process-wide metrics registry,
 * and serializes everything as one JSON document conforming to the
 * "smoothe.report" schema (kReportSchemaVersion). The schema is what
 * tools/smoothe_report consumes for comparison tables and the
 * perf-regression gate (`--check --baseline ... --tolerance ...`).
 *
 * One process-wide report can be installed (the CLI layer does this for
 * `--report-out`, the bench harness defaults to `BENCH_<tool>.json`);
 * library code such as the SmoothE extractor appends to it through
 * Report::current() when present, and stays silent otherwise.
 */

#ifndef SMOOTHE_OBS_REPORT_HPP
#define SMOOTHE_OBS_REPORT_HPP

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace smoothe::obs {

class Report;

/**
 * Schema identifier and version stamped into every report document.
 * v1: run/measurements/phases/series/metrics sections.
 * v2: adds an optional "profile" section (per-kernel attribution from
 *     obs::Profiler). validateReportJson accepts v1 and v2 documents,
 *     so committed v1 baselines keep gating v2 candidates.
 */
inline constexpr const char* kReportSchemaName = "smoothe.report";
inline constexpr int kReportSchemaVersion = 2;

/**
 * One named scalar measurement: a series of repeated observations of the
 * same quantity (e.g. seconds per iteration across --repeat runs).
 * Configuration calls are chainable; add() is thread-safe.
 */
class Measurement
{
  public:
    /** Unit label emitted into the schema (e.g. "s", "bytes", "x"). */
    Measurement& unit(std::string unit_label);

    /** Declares larger values as improvements (default: lower wins). */
    Measurement& higherIsBetter();

    /** Includes/excludes this measurement from `smoothe_report --check`
     *  (default: checked). Wall-clock times measured on heterogeneous CI
     *  runners are typically recorded but unchecked. */
    Measurement& checked(bool on);

    /** Per-measurement regression tolerance override in percent; 0 uses
     *  the tool-level --tolerance (the default). */
    Measurement& tolerancePct(double pct);

    /** Records one observation. */
    void add(double value);

    std::size_t count() const;
    double mean() const;
    double stddev() const; ///< population stddev; 0 for < 2 samples
    double minValue() const;
    double maxValue() const;

  private:
    friend class Report;
    explicit Measurement(Report* owner) : owner_(owner) {}
    util::Json toJson() const; ///< caller holds the report mutex

    Report* owner_;
    std::string unit_;
    bool lowerIsBetter_ = true;
    bool checked_ = true;
    double tolerancePct_ = 0.0;
    std::vector<double> values_;
};

/**
 * A per-phase duration histogram: observations in seconds land in
 * exponential buckets; the report emits bucket counts plus interpolated
 * p50/p90/p99. observe() is lock-free (atomic bucket increments).
 */
class PhaseTimer
{
  public:
    void observe(double seconds) { histogram_.observe(seconds); }

    const Histogram& histogram() const { return histogram_; }

  private:
    friend class Report;
    explicit PhaseTimer(std::vector<double> bounds)
        : histogram_(std::move(bounds))
    {}
    util::Json toJson() const;

    Histogram histogram_;
};

/**
 * A named table of numeric rows with fixed column labels — the shape of
 * anytime/convergence curves. Rows are kept in insertion order.
 */
class Series
{
  public:
    /** Appends a row; short rows are padded with 0. */
    void addRow(std::vector<double> row);

    std::size_t rowCount() const;
    const std::vector<std::string>& columns() const { return columns_; }

  private:
    friend class Report;
    Series(Report* owner, std::vector<std::string> columns)
        : owner_(owner), columns_(std::move(columns))
    {}
    util::Json toJson() const;

    Report* owner_;
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;
};

/** A structured run report (see the file comment for the schema). */
class Report
{
  public:
    explicit Report(std::string tool) : tool_(std::move(tool)) {}

    Report(const Report&) = delete;
    Report& operator=(const Report&) = delete;

    const std::string& tool() const { return tool_; }

    /** Sets one run-metadata key (insertion-ordered in the output). */
    void setRun(const std::string& key, util::Json value);

    /** Returns (creating on first use) the named measurement; the
     *  reference stays valid for the report's lifetime. */
    Measurement& measurement(const std::string& name);

    /** Returns (creating on first use) the named phase timer. The bucket
     *  boundaries of `bounds` apply on first creation only; pass {} for
     *  the default exponential 1us..60s layout. */
    PhaseTimer& phase(const std::string& name,
                      std::vector<double> bounds = {});

    /** Returns (creating on first use) the named series; columns apply on
     *  first creation only. */
    Series& series(const std::string& name,
                   std::vector<std::string> columns);

    /**
     * Attaches the schema-v2 "profile" section (the obs::Profiler's
     * toJson() output); the CLI flush hooks do this automatically when
     * the profiler holds data. A null value removes the section.
     */
    void setProfile(util::Json profile);

    /**
     * Serializes the report. When include_metrics is true (the default,
     * used by writeTo) the current metrics-registry snapshot is embedded
     * under "metrics"; tests compare against golden files without it.
     */
    util::Json toJson(bool include_metrics = true) const;

    /** Writes toJson() (pretty) to a file; false on I/O error. */
    bool writeTo(const std::string& path) const;

    // --- process-wide report -------------------------------------------

    /** The installed process report, or nullptr when none. */
    static Report* current();

    /**
     * Installs the process-wide report (replacing any previous one),
     * stamps build/run metadata (git sha, build type, compiler, threads),
     * and remembers `output_path` for flushCurrent(); the CLI exit hooks
     * call flushCurrent() so installed reports survive mid-run aborts.
     */
    static Report& install(const std::string& tool,
                           std::string output_path);

    /** Writes the installed report to its output path (no-op without an
     *  installed report; false on I/O error). */
    static bool flushCurrent();

    /** Drops the installed report (tests). */
    static void uninstall();

  private:
    friend class Measurement;
    friend class Series;

    mutable std::mutex mutex_;
    std::string tool_;
    util::Json run_ = util::Json::makeObject();
    std::map<std::string, std::unique_ptr<Measurement>> measurements_;
    std::map<std::string, std::unique_ptr<PhaseTimer>> phases_;
    std::map<std::string, std::unique_ptr<Series>> series_;
    util::Json profile_; ///< null until setProfile()
};

/** The numeric schemaVersion of a parsed report (0 when absent). */
int reportSchemaVersion(const util::Json& doc);

/**
 * Validates that a parsed JSON document structurally conforms to the
 * report schema (name, version, section shapes). On failure returns
 * false and, when `error` is non-null, explains the first problem.
 */
bool validateReportJson(const util::Json& doc, std::string* error);

/** One comparison verdict from checkReports(). */
struct CheckFinding
{
    std::string measurement;
    double baseline = 0.0;     ///< baseline mean
    double candidate = 0.0;    ///< candidate mean
    double changePct = 0.0;    ///< +x% = candidate larger
    double tolerancePct = 0.0; ///< tolerance that applied
    bool regression = false;   ///< worsened beyond tolerance
};

/**
 * Compares every checked measurement present in both reports: a finding
 * is a regression when the candidate mean worsens (per the baseline's
 * better-direction) by more than the tolerance. The baseline's
 * per-measurement tolerancePct overrides `default_tolerance_pct` when
 * nonzero. Both documents must already be schema-valid.
 */
std::vector<CheckFinding> checkReports(const util::Json& baseline,
                                       const util::Json& candidate,
                                       double default_tolerance_pct);

} // namespace smoothe::obs

#endif // SMOOTHE_OBS_REPORT_HPP
