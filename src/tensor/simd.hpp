/**
 * @file
 * Runtime SIMD dispatch for the vectorized tensor backend.
 *
 * The Vectorized backend's kernels come in two variants: generic
 * portable loops (the "scalar" SIMD level — still auto-vectorizable by
 * the compiler at the baseline ISA) and explicit AVX2 intrinsics
 * (src/tensor/kernels_avx2.cpp, compiled with per-function target
 * attributes so the default build needs no -mavx2). Which variant runs
 * is decided once per process from cpuid plus the SMOOTHE_SIMD
 * environment override and cached in one atomic; kernels pay a single
 * relaxed load per call to dispatch.
 *
 * SMOOTHE_SIMD accepts:
 *   - "scalar": force the generic loops even on AVX2 hardware
 *   - "avx2":   request the AVX2 kernels; falls back to scalar (with a
 *               warning log) when the CPU lacks AVX2
 *   - "auto":   use AVX2 iff the CPU supports it (the default)
 *
 * This level is orthogonal to tensor::Backend: Backend::Scalar is the
 * deliberately slow per-element interpreter (the paper's CPU baseline)
 * and never dispatches SIMD; the level only selects the implementation
 * of Backend::Vectorized kernels. Every AVX2 kernel except the
 * segment-softmax exponential is bitwise identical to its generic
 * counterpart (see DESIGN.md "Vectorized backend").
 */

#ifndef SMOOTHE_TENSOR_SIMD_HPP
#define SMOOTHE_TENSOR_SIMD_HPP

#include <cstdint>

namespace smoothe::tensor::simd {

/** Instruction-set level a kernel variant targets. */
enum class Level : std::uint8_t {
    Scalar, ///< generic portable loops (baseline ISA)
    Avx2,   ///< 8-lane float / 4-lane double intrinsics
};

/** Highest level this CPU supports (cpuid, probed once). */
Level detectedLevel();

/**
 * The level kernels dispatch on: resolved once from SMOOTHE_SIMD and
 * detectedLevel(), then cached; setLevel() overrides it.
 */
Level activeLevel();

/**
 * Overrides the active level for this process (tests and benches use
 * this to time both variants in one run). Requests above
 * detectedLevel() clamp down to what the CPU supports.
 */
void setLevel(Level level);

/** True when SMOOTHE_SIMD requested a level the CPU cannot run (the
 *  request was clamped; CI surfaces this as a visible notice). */
bool requestedUnsupported();

/** Stable lowercase name ("scalar", "avx2") for logs and reports. */
const char* levelName(Level level);

/**
 * Kernel-slot suffix for the active level: "@avx2" when AVX2 kernels
 * are dispatched, "" otherwise. The Program compiler appends this to
 * profiler kernel names for ops with SIMD variants so
 * `smoothe_report profile` shows scalar-vs-AVX2 rows side by side.
 */
const char* kernelSuffix();

/** Shorthand: the active level dispatches AVX2 kernels. */
inline bool
avx2Active()
{
    return activeLevel() == Level::Avx2;
}

} // namespace smoothe::tensor::simd

#endif // SMOOTHE_TENSOR_SIMD_HPP
