/**
 * @file
 * Destination-buffer tensor kernels ("*Into" variants).
 *
 * Every kernel writes its result into a caller-provided, correctly
 * shaped tensor instead of allocating one. This is what lets the
 * compiled autodiff Program (src/autodiff/program.hpp) replay a
 * recorded forward pass into a static buffer plan with zero
 * per-iteration allocation; the eager Tape calls the same kernels with
 * freshly allocated tensors, so both execution modes share one kernel
 * body and stay bit-identical.
 *
 * Determinism contract (see DESIGN.md "Parallel execution"): chunk
 * grains are fixed constants, each output element is written by exactly
 * one task, and in-chunk loop order matches the serial code, so results
 * are bit-identical for every thread count.
 *
 * Buffer-reuse contract: kernels either write every output element
 * unconditionally or zero the destination themselves (matmulInto,
 * scatterMatrixInto, meanRowsInto, and segmentSoftmaxInto when the
 * segments do not cover every column), so replaying into a dirty buffer
 * yields the same bits as running into a fresh zeroed one.
 */

#ifndef SMOOTHE_TENSOR_KERNELS_HPP
#define SMOOTHE_TENSOR_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace smoothe::tensor {

/** Sparse (column, matrix-position) entries for scatterMatrixInto. */
struct MatrixEntry
{
    std::uint32_t column;   ///< source column in the input tensor
    std::uint32_t position; ///< destination flat index in the d x d matrix
};

/**
 * Stage kinds a fused elementwise chain may contain. All four have
 * constant Jacobians (the backward pass never reads intermediate
 * values), which is what lets the Program fusion pass collapse
 * arbitrary single-consumer runs of them into one kernel launch.
 */
enum class ElemStageKind : std::uint8_t {
    Scale,     ///< v = alpha * v
    AddScalar, ///< v = v + alpha
    MulConst,  ///< v = v * c[i]   (c may broadcast 1 x C over rows)
    AddConst,  ///< v = v + c[i]   (c may broadcast 1 x C over rows)
};

/** One stage of a fused elementwise chain. */
struct ElemStage
{
    ElemStageKind kind = ElemStageKind::Scale;
    float alpha = 0.0f; ///< Scale factor / AddScalar addend
    Tensor c;           ///< MulConst/AddConst operand (empty otherwise)
};

/**
 * Flat elements per parallel task for elementwise kernels. Fixed (never
 * derived from the worker count) so the work partition — and therefore
 * the float result — is identical for every thread count.
 */
constexpr std::size_t kElemGrain = std::size_t{1} << 15;

/** Batch rows per parallel task, sized so a task touches ~kElemGrain
 *  elements. */
std::size_t rowGrain(std::size_t cols);

/**
 * Static cost-model weights the per-op profiler (obs::Profiler) uses to
 * derive roofline-style FLOP and byte estimates from op shapes.
 * Centralized next to the kernels they describe so estimate drift is
 * caught where the implementation changes.
 */
namespace cost {

/** Bytes per tensor element (everything here is float32). */
inline constexpr std::uint64_t kElemBytes = sizeof(float);

/** FLOPs charged per expf evaluation (softmax, product-complement). */
inline constexpr std::uint64_t kExpFlops = 8;

/**
 * Dense d x d matmuls one scaling-and-squaring expm evaluation performs
 * (Taylor-term products plus squarings; see autodiff/matexp.cpp).
 */
inline constexpr std::uint64_t kExpmMatmuls = 24;

/** FLOPs of an m x k by k x n matmul (one multiply + one add per MAC). */
inline constexpr std::uint64_t
matmulFlops(std::uint64_t m, std::uint64_t k, std::uint64_t n)
{
    return 2 * m * k * n;
}

} // namespace cost

/**
 * Runs body over chunks of [0, n): on the global pool when parallel,
 * inline as one chunk otherwise (the Scalar baseline, which models an
 * unoptimized single-stream interpreter).
 */
void parallelChunks(bool parallel, std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>&
                        body);

/** out = a + b (same shape). */
void addInto(const Tensor& a, const Tensor& b, Tensor& out,
             Backend backend);
/** out = a - b (same shape). */
void subInto(const Tensor& a, const Tensor& b, Tensor& out,
             Backend backend);
/** out = a * b elementwise (same shape). */
void mulInto(const Tensor& a, const Tensor& b, Tensor& out,
             Backend backend);
/** out = alpha * a. */
void scaleInto(const Tensor& a, float alpha, Tensor& out, Backend backend);
/** out = a + alpha. */
void addScalarInto(const Tensor& a, float alpha, Tensor& out,
                   Backend backend);
/**
 * Fused scale-then-add-scalar: out = (alpha * a) + beta, each element
 * computed with the same two separately rounded float operations as the
 * unfused scaleInto + addScalarInto pair, so fusion is bitwise
 * invisible. (The build uses no -march/-ffp-contract flags, so the
 * compiler cannot contract the pair into an FMA; the Program parity
 * tests pin this.)
 */
void affineInto(const Tensor& a, float alpha, float beta, Tensor& out,
                Backend backend);
/** out = max(a, 0). */
void reluInto(const Tensor& a, Tensor& out, Backend backend);
/** out = a * c elementwise; c may broadcast 1 x C over rows. */
void mulConstInto(const Tensor& a, const Tensor& c, Tensor& out,
                  Backend backend);
/** out = a + c elementwise; c may broadcast 1 x C over rows. */
void addConstInto(const Tensor& a, const Tensor& c, Tensor& out,
                  Backend backend);
/**
 * Fused multiply-const-then-add-const: out = (a * m) + c, same rounding
 * sequence as mulConstInto followed by addConstInto (see affineInto).
 */
void mulAddConstInto(const Tensor& a, const Tensor& m, const Tensor& c,
                     Tensor& out, Backend backend);
/**
 * Fused elementwise chain: applies the stages to each element in
 * recorded order, every stage computed with the same single rounded
 * float operation as its unfused counterpart, so fusion of any length
 * is bitwise invisible (see affineInto for why no FMA contraction can
 * occur).
 */
void elemChainInto(const Tensor& a, const std::vector<ElemStage>& stages,
                   Tensor& out, Backend backend);
/** out[b, 0] = sum_i a[b, i] * u[i]. */
void dotRowsInto(const Tensor& a, const std::vector<float>& u, Tensor& out,
                 Backend backend);
/** out[0, 0] = sum of all elements (double accumulator, serial). */
void sumAllInto(const Tensor& a, Tensor& out);
/** out[0, :] = column-wise mean over rows (zeroes out first). */
void meanRowsInto(const Tensor& a, Tensor& out);
/** Softmax within each column segment, per batch row. */
void segmentSoftmaxInto(const Tensor& a, const SegmentIndex& segs,
                        Tensor& out, Backend backend);
/** out[b, s] = prod_{k in segment s} (1 - a[b, items[k]]). */
void segmentProductComplementInto(const Tensor& a, const SegmentIndex& segs,
                                  Tensor& out, Backend backend);
/**
 * out[b, s] = max over segment s; arg_out records the argmax column per
 * (row, segment), UINT32_MAX for empty segments.
 */
void segmentMaxGatherInto(const Tensor& a, const SegmentIndex& segs,
                          Tensor& out,
                          std::vector<std::uint32_t>& arg_out,
                          Backend backend);
/** out[b, i] = a[b, index[i]]. */
void gatherColsInto(const Tensor& a,
                    const std::vector<std::uint32_t>& index, Tensor& out,
                    Backend backend);
/** Dense matmul a (B x K) times w (K x H) into out (zeroes out first). */
void matmulInto(const Tensor& a, const Tensor& w, Tensor& out,
                Backend backend);
/** out[b, :] = a[b, :] + bias[0, :]. */
void addRowBroadcastInto(const Tensor& a, const Tensor& bias, Tensor& out);
/**
 * Scatter into per-row d x d matrices (zeroes out first):
 * out[r, e.position] += a[r, e.column]; with mean_over_rows the result
 * is one row-averaged matrix.
 */
void scatterMatrixInto(const Tensor& a,
                       const std::vector<MatrixEntry>& entries,
                       std::size_t dim, bool mean_over_rows, Tensor& out,
                       Backend backend);

} // namespace smoothe::tensor

#endif // SMOOTHE_TENSOR_KERNELS_HPP
