/**
 * @file
 * Batched dense tensors, sparse index structures, and the memory arena.
 *
 * This module is the stand-in for the paper's PyTorch + torch_sparse
 * substrate. Tensors are 2-D row-major float32 buffers, conventionally
 * (batch B) x (length N); the batch dimension carries the paper's *seed
 * batching* (Section 4.2). The Arena tracks live tensor bytes against an
 * optional budget so experiments can emulate GPU memory capacities
 * (Table 5 portability, Figure 6 OOM entries).
 */

#ifndef SMOOTHE_TENSOR_TENSOR_HPP
#define SMOOTHE_TENSOR_TENSOR_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smoothe::tensor {

/** Execution backend selector (Figure 6 ablation). */
enum class Backend {
    Scalar,     ///< unoptimized per-element reference loops ("CPU baseline")
    Vectorized, ///< contiguous batched kernels (the "GPU-style" fast path)
};

/** Thrown when an allocation would exceed the arena budget (emulated OOM). */
class OomError : public std::runtime_error
{
  public:
    explicit OomError(const std::string& message)
        : std::runtime_error(message)
    {}
};

/**
 * Tracks live tensor bytes against an optional budget.
 *
 * budgetBytes == 0 means unlimited. Allocation beyond the budget throws
 * OomError, which SmoothE surfaces as an OOM failure exactly like a CUDA
 * allocator would.
 *
 * Thread-safe: the counters are atomics so tensors may be created and
 * destroyed from thread-pool workers (parallel sampling, per-graph tool
 * parallelism). setBudget() is not synchronized against concurrent
 * allocations; configure the budget before sharing the arena.
 */
class Arena
{
  public:
    explicit Arena(std::size_t budget_bytes = 0) : budget_(budget_bytes) {}

    /** Registers an allocation; throws OomError when over budget. */
    void
    allocate(std::size_t bytes)
    {
        const std::size_t used =
            used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        if (budget_ != 0 && used > budget_) {
            used_.fetch_sub(bytes, std::memory_order_relaxed);
            throw OomError("arena budget exceeded: " + std::to_string(used) +
                           " > " + std::to_string(budget_) + " bytes");
        }
        std::size_t peak = peak_.load(std::memory_order_relaxed);
        while (used > peak &&
               !peak_.compare_exchange_weak(peak, used,
                                            std::memory_order_relaxed)) {
        }
    }

    /** Releases a previously registered allocation. */
    void
    release(std::size_t bytes)
    {
        std::size_t used = used_.load(std::memory_order_relaxed);
        while (!used_.compare_exchange_weak(used,
                                            bytes > used ? 0 : used - bytes,
                                            std::memory_order_relaxed)) {
        }
    }

    std::size_t used() const
    {
        return used_.load(std::memory_order_relaxed);
    }
    std::size_t peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }
    std::size_t budget() const { return budget_; }
    void setBudget(std::size_t bytes) { budget_ = bytes; }
    void resetPeak()
    {
        peak_.store(used_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }

  private:
    std::size_t budget_;
    std::atomic<std::size_t> used_{0};
    std::atomic<std::size_t> peak_{0};
};

/**
 * A 2-D row-major float32 tensor, optionally arena-accounted.
 *
 * Rows usually carry the seed batch; a 1 x N tensor is a plain vector.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocates rows x cols zeros, registering with the arena if given. */
    Tensor(std::size_t rows, std::size_t cols, Arena* arena = nullptr);

    /** Allocates and fills with a constant. */
    Tensor(std::size_t rows, std::size_t cols, float fill,
           Arena* arena = nullptr);

    Tensor(const Tensor& other);
    Tensor(Tensor&& other) noexcept;
    Tensor& operator=(const Tensor& other);
    Tensor& operator=(Tensor&& other) noexcept;
    ~Tensor();

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float* row(std::size_t r) { return data_.data() + r * cols_; }
    const float* row(std::size_t r) const { return data_.data() + r * cols_; }

    /** Sets every element to the given value. */
    void fill(float value);

    /** Sum of all elements (double accumulator). */
    double sum() const;

  private:
    void registerBytes();
    void releaseBytes();

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
    Arena* arena_ = nullptr;
};

/**
 * CSR-style segment index: segment s owns items[offsets[s] .. offsets[s+1]).
 * Used for e-class -> member-e-node and e-class -> parent-e-node maps.
 */
struct SegmentIndex
{
    std::vector<std::uint32_t> offsets; ///< size = numSegments + 1
    std::vector<std::uint32_t> items;

    std::size_t numSegments() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
    std::size_t
    segmentSize(std::size_t s) const
    {
        return offsets[s + 1] - offsets[s];
    }

    /** Builds from per-item segment assignment (items sorted by segment). */
    static SegmentIndex fromAssignment(
        const std::vector<std::uint32_t>& item_segment,
        std::size_t num_segments);
};

// Sparse matrix layouts (CsrMatrix, CscMatrix) and the batched
// propagation SpMV live in tensor/sparse.hpp.

} // namespace smoothe::tensor

#endif // SMOOTHE_TENSOR_TENSOR_HPP
