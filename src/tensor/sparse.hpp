/**
 * @file
 * Sparse matrix layouts and the batched propagation SpMV.
 *
 * CSR (row-compressed) carries the forward propagation product
 * out[b, i] = sum_j A[i, j] * x[b, j]; CSC (column-compressed) is its
 * transpose-friendly twin, giving the backward/transposed product
 * without re-walking the CSR structure. Both layouts build from the
 * e-graph's SegmentIndex adjacency (class -> member/parent lists), so
 * the propagation step's sparse structure is constructed once and
 * replayed every iteration.
 *
 * The Vectorized backend's SpMV dispatches to a cross-seed AVX2 kernel
 * (8 seed rows per lane group, one strided gather per nonzero) when
 * the CPU supports it; per-lane accumulation order matches the generic
 * loop exactly, so scalar and AVX2 results are bit-identical. See
 * DESIGN.md "Vectorized backend".
 */

#ifndef SMOOTHE_TENSOR_SPARSE_HPP
#define SMOOTHE_TENSOR_SPARSE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace smoothe::tensor {

/** A CSR sparse matrix with float values. */
struct CsrMatrix
{
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<std::uint32_t> rowOffsets; ///< size numRows + 1
    std::vector<std::uint32_t> colIndices;
    std::vector<float> values;

    std::size_t nnz() const { return colIndices.size(); }
};

/** A CSC sparse matrix: column j owns rowIndices[colOffsets[j] ..
 *  colOffsets[j+1]). Built from a CsrMatrix for transposed products. */
struct CscMatrix
{
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<std::uint32_t> colOffsets; ///< size numCols + 1
    std::vector<std::uint32_t> rowIndices;
    std::vector<float> values;

    std::size_t nnz() const { return rowIndices.size(); }
};

/**
 * Builds the 0/1 incidence CSR of a SegmentIndex: row s has a 1.0
 * entry at every column in segment s. This is exactly the propagation
 * adjacency (e-class -> member/parent e-nodes) as a sparse matrix.
 */
CsrMatrix csrFromSegments(const SegmentIndex& segs, std::size_t num_cols);

/** Transposes a CSR matrix into CSC layout (counting sort; stable, so
 *  entries within a column stay in ascending row order). */
CscMatrix cscFromCsr(const CsrMatrix& a);

/**
 * Batched SpMV: out[b, i] = sum_j A[i, j] * x[b, j].
 * @param backend Scalar iterates per batch row with a double
 *        accumulator (the reference interpreter); Vectorized runs the
 *        float-accumulating fast path, cross-seed AVX2 when available.
 */
void spmv(const CsrMatrix& a, const Tensor& x, Tensor& out, Backend backend);

/**
 * Batched transposed SpMV via CSC: out[b, j] = sum_i A[i, j] * x[b, i]
 * — the adjoint of spmv, used for gradients flowing back through a
 * propagation product. Same backend/bit-identity contract as spmv.
 */
void spmvT(const CscMatrix& a, const Tensor& x, Tensor& out,
           Backend backend);

} // namespace smoothe::tensor

#endif // SMOOTHE_TENSOR_SPARSE_HPP
