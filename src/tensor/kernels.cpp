#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "tensor/kernels_avx2.hpp"
#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::tensor {

namespace {

/**
 * Deliberately slow per-element application used by the Scalar backend:
 * the function-pointer call per element defeats vectorization and
 * fusion, mimicking an unoptimized eager interpreter (the paper's CPU
 * baseline in Figure 6).
 */
__attribute__((noinline)) void
scalarApply(float (*f)(float, float), const float* a, const float* b,
            float* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = f(a[i], b ? b[i] : 0.0f);
}

float opAdd(float x, float y) { return x + y; }
float opSub(float x, float y) { return x - y; }
float opMul(float x, float y) { return x * y; }
float opRelu(float x, float) { return x > 0.0f ? x : 0.0f; }

} // namespace

std::size_t
rowGrain(std::size_t cols)
{
    return std::max<std::size_t>(1,
                                 kElemGrain / std::max<std::size_t>(1, cols));
}

void
parallelChunks(bool parallel, std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& body)
{
    if (parallel)
        util::ThreadPool::global().parallelForChunks(0, n, grain, body);
    else
        body(0, n);
}

void
addInto(const Tensor& a, const Tensor& b, Tensor& out, Backend backend)
{
    if (backend == Backend::Scalar) {
        scalarApply(opAdd, a.data(), b.data(), out.data(), a.size());
        return;
    }
    const float* __restrict x = a.data();
    const float* __restrict y = b.data();
    float* __restrict o = out.data();
    const bool useAvx2 = simd::avx2Active();
    parallelChunks(true, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::addSpan(x + begin, y + begin, o + begin,
                                         end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] + y[i];
                   });
}

void
subInto(const Tensor& a, const Tensor& b, Tensor& out, Backend backend)
{
    if (backend == Backend::Scalar) {
        scalarApply(opSub, a.data(), b.data(), out.data(), a.size());
        return;
    }
    const float* __restrict x = a.data();
    const float* __restrict y = b.data();
    float* __restrict o = out.data();
    const bool useAvx2 = simd::avx2Active();
    parallelChunks(true, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::subSpan(x + begin, y + begin, o + begin,
                                         end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] - y[i];
                   });
}

void
mulInto(const Tensor& a, const Tensor& b, Tensor& out, Backend backend)
{
    if (backend == Backend::Scalar) {
        scalarApply(opMul, a.data(), b.data(), out.data(), a.size());
        return;
    }
    const float* __restrict x = a.data();
    const float* __restrict y = b.data();
    float* __restrict o = out.data();
    const bool useAvx2 = simd::avx2Active();
    parallelChunks(true, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::mulSpan(x + begin, y + begin, o + begin,
                                         end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] * y[i];
                   });
}

void
scaleInto(const Tensor& a, float alpha, Tensor& out, Backend backend)
{
    const float* x = a.data();
    float* o = out.data();
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::scaleSpan(x + begin, alpha, o + begin,
                                           end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = alpha * x[i];
                   });
}

void
addScalarInto(const Tensor& a, float alpha, Tensor& out, Backend backend)
{
    const float* x = a.data();
    float* o = out.data();
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::addScalarSpan(x + begin, alpha, o + begin,
                                               end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] + alpha;
                   });
}

void
affineInto(const Tensor& a, float alpha, float beta, Tensor& out,
           Backend backend)
{
    const float* x = a.data();
    float* o = out.data();
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::affineSpan(x + begin, alpha, beta,
                                            o + begin, end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i) {
                           const float scaled = alpha * x[i];
                           o[i] = scaled + beta;
                       }
                   });
}

void
reluInto(const Tensor& a, Tensor& out, Backend backend)
{
    if (backend == Backend::Scalar) {
        scalarApply(opRelu, a.data(), nullptr, out.data(), a.size());
        return;
    }
    const float* __restrict x = a.data();
    float* __restrict o = out.data();
    const bool useAvx2 = simd::avx2Active();
    parallelChunks(true, a.size(), kElemGrain,
                   [&](std::size_t begin, std::size_t end) {
                       if (useAvx2) {
                           avx2::reluSpan(x + begin, o + begin,
                                          end - begin);
                           return;
                       }
                       for (std::size_t i = begin; i < end; ++i)
                           o[i] = x[i] > 0.0f ? x[i] : 0.0f;
                   });
}

void
mulConstInto(const Tensor& a, const Tensor& c, Tensor& out, Backend backend)
{
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.rows(), rowGrain(a.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = a.row(r);
                           const float* m = c.row(c.rows() == 1 ? 0 : r);
                           float* o = out.row(r);
                           if (useAvx2) {
                               avx2::mulSpan(x, m, o, a.cols());
                               continue;
                           }
                           for (std::size_t i = 0; i < a.cols(); ++i)
                               o[i] = x[i] * m[i];
                       }
                   });
}

void
addConstInto(const Tensor& a, const Tensor& c, Tensor& out, Backend backend)
{
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.rows(), rowGrain(a.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = a.row(r);
                           const float* m = c.row(c.rows() == 1 ? 0 : r);
                           float* o = out.row(r);
                           if (useAvx2) {
                               avx2::addSpan(x, m, o, a.cols());
                               continue;
                           }
                           for (std::size_t i = 0; i < a.cols(); ++i)
                               o[i] = x[i] + m[i];
                       }
                   });
}

void
mulAddConstInto(const Tensor& a, const Tensor& m, const Tensor& c,
                Tensor& out, Backend backend)
{
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.rows(), rowGrain(a.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = a.row(r);
                           const float* mr = m.row(m.rows() == 1 ? 0 : r);
                           const float* cr = c.row(c.rows() == 1 ? 0 : r);
                           float* o = out.row(r);
                           if (useAvx2) {
                               avx2::mulAddSpan(x, mr, cr, o, a.cols());
                               continue;
                           }
                           for (std::size_t i = 0; i < a.cols(); ++i) {
                               const float scaled = x[i] * mr[i];
                               o[i] = scaled + cr[i];
                           }
                       }
                   });
}

void
elemChainInto(const Tensor& a, const std::vector<ElemStage>& stages,
              Tensor& out, Backend backend)
{
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    const std::size_t cols = a.cols();
    parallelChunks(
        backend != Backend::Scalar, a.rows(), rowGrain(cols),
        [&](std::size_t begin, std::size_t end) {
            std::vector<const float*> stageRows(stages.size(), nullptr);
            for (std::size_t r = begin; r < end; ++r) {
                for (std::size_t s = 0; s < stages.size(); ++s) {
                    const Tensor& c = stages[s].c;
                    stageRows[s] = c.empty()
                                       ? nullptr
                                       : c.row(c.rows() == 1 ? 0 : r);
                }
                const float* x = a.row(r);
                float* o = out.row(r);
                if (useAvx2) {
                    avx2::elemChainRow(x, stages.data(), stageRows.data(),
                                       stages.size(), o, cols);
                    continue;
                }
                // One rounded op per stage, exactly as the unfused
                // kernels would produce.
                for (std::size_t i = 0; i < cols; ++i) {
                    float v = x[i];
                    for (std::size_t s = 0; s < stages.size(); ++s) {
                        switch (stages[s].kind) {
                          case ElemStageKind::Scale:
                            v = stages[s].alpha * v;
                            break;
                          case ElemStageKind::AddScalar:
                            v = v + stages[s].alpha;
                            break;
                          case ElemStageKind::MulConst:
                            v = v * stageRows[s][i];
                            break;
                          case ElemStageKind::AddConst:
                            v = v + stageRows[s][i];
                            break;
                        }
                    }
                    o[i] = v;
                }
            }
        });
}

void
dotRowsInto(const Tensor& a, const std::vector<float>& u, Tensor& out,
            Backend backend)
{
    if (backend == Backend::Scalar) {
        for (std::size_t r = 0; r < a.rows(); ++r) {
            double acc = 0.0;
            for (std::size_t i = 0; i < a.cols(); ++i)
                acc += static_cast<double>(a.at(r, i)) * u[i];
            out.at(r, 0) = static_cast<float>(acc);
        }
        return;
    }
    const float* uv = u.data();
    parallelChunks(true, a.rows(), rowGrain(a.cols()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* __restrict x = a.row(r);
                           float acc = 0.0f;
                           for (std::size_t i = 0; i < a.cols(); ++i)
                               acc += x[i] * uv[i];
                           out.at(r, 0) = acc;
                       }
                   });
}

void
sumAllInto(const Tensor& a, Tensor& out)
{
    out.at(0, 0) = static_cast<float>(a.sum());
}

void
meanRowsInto(const Tensor& a, Tensor& out)
{
    out.fill(0.0f);
    const float inv = a.rows() ? 1.0f / static_cast<float>(a.rows()) : 0.0f;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float* x = a.row(r);
        float* o = out.row(0);
        for (std::size_t i = 0; i < a.cols(); ++i)
            o[i] += x[i] * inv;
    }
}

void
segmentSoftmaxInto(const Tensor& a, const SegmentIndex& segs, Tensor& out,
                   Backend backend)
{
    static obs::Counter& calls = obs::counter("kernel.softmax.calls");
    static obs::Counter& bytes = obs::counter("kernel.softmax.bytes");
    calls.add(1);
    bytes.add(a.size() * sizeof(float));
    // Columns outside every segment are never written; zero them only
    // when the segments are not a full partition so reused buffers match
    // the zeros a fresh tensor would carry.
    if (segs.items.size() != a.cols())
        out.fill(0.0f);
    const std::size_t numSegments = segs.numSegments();
    const bool parallel = backend != Backend::Scalar;

    // Cross-seed AVX2: 8 seed rows become the lanes of one pass over
    // the segment structure (polynomial expf; few-ULP vs std::exp).
    const std::size_t groups =
        (parallel && simd::avx2Active()) ? a.rows() / 8 : std::size_t{0};
    if (groups > 0) {
        util::ThreadPool::global().parallelFor(
            0, groups, 1, [&](std::size_t g) {
                avx2::segmentSoftmax8(a.row(g * 8), out.row(g * 8),
                                      a.cols(), segs.offsets.data(),
                                      numSegments, segs.items.data());
            });
    }

    const std::size_t remBegin = groups * 8;
    parallelChunks(
        parallel, a.rows() - remBegin, rowGrain(a.cols()),
        [&](std::size_t chunkBegin, std::size_t chunkEnd) {
            for (std::size_t r = remBegin + chunkBegin;
                 r < remBegin + chunkEnd; ++r) {
                const float* x = a.row(r);
                float* o = out.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    const std::uint32_t begin = segs.offsets[s];
                    const std::uint32_t end = segs.offsets[s + 1];
                    if (begin == end)
                        continue;
                    float maxVal = -std::numeric_limits<float>::infinity();
                    for (std::uint32_t e = begin; e < end; ++e)
                        maxVal = std::max(maxVal, x[segs.items[e]]);
                    float denom = 0.0f;
                    for (std::uint32_t e = begin; e < end; ++e) {
                        const float ev = std::exp(x[segs.items[e]] - maxVal);
                        o[segs.items[e]] = ev;
                        denom += ev;
                    }
                    const float inv = 1.0f / denom;
                    for (std::uint32_t e = begin; e < end; ++e)
                        o[segs.items[e]] *= inv;
                }
            }
        });
}

void
segmentProductComplementInto(const Tensor& a, const SegmentIndex& segs,
                             Tensor& out, Backend backend)
{
    const std::size_t numSegments = segs.numSegments();
    const bool parallel = backend != Backend::Scalar;

    // Cross-seed AVX2: per-lane product order matches the generic loop,
    // so the two variants are bit-identical.
    const std::size_t groups =
        (parallel && simd::avx2Active()) ? a.rows() / 8 : std::size_t{0};
    if (groups > 0) {
        util::ThreadPool::global().parallelFor(
            0, groups, 1, [&](std::size_t g) {
                avx2::segmentProductComplement8(
                    a.row(g * 8), a.cols(), out.row(g * 8), out.cols(),
                    segs.offsets.data(), numSegments, segs.items.data());
            });
    }

    const std::size_t remBegin = groups * 8;
    parallelChunks(
        parallel, a.rows() - remBegin, rowGrain(numSegments),
        [&](std::size_t chunkBegin, std::size_t chunkEnd) {
            for (std::size_t r = remBegin + chunkBegin;
                 r < remBegin + chunkEnd; ++r) {
                const float* x = a.row(r);
                float* o = out.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    float prod = 1.0f;
                    for (std::uint32_t e = segs.offsets[s];
                         e < segs.offsets[s + 1]; ++e)
                        prod *= (1.0f - x[segs.items[e]]);
                    o[s] = prod;
                }
            }
        });
}

void
segmentMaxGatherInto(const Tensor& a, const SegmentIndex& segs, Tensor& out,
                     std::vector<std::uint32_t>& arg_out, Backend backend)
{
    const std::size_t numSegments = segs.numSegments();
    arg_out.assign(a.rows() * numSegments,
                   std::numeric_limits<std::uint32_t>::max());
    parallelChunks(
        backend != Backend::Scalar, a.rows(), rowGrain(numSegments),
        [&](std::size_t rowBegin, std::size_t rowEnd) {
            for (std::size_t r = rowBegin; r < rowEnd; ++r) {
                const float* x = a.row(r);
                float* o = out.row(r);
                for (std::size_t s = 0; s < numSegments; ++s) {
                    const std::uint32_t begin = segs.offsets[s];
                    const std::uint32_t end = segs.offsets[s + 1];
                    if (begin == end) {
                        o[s] = 0.0f;
                        continue;
                    }
                    float best = -std::numeric_limits<float>::infinity();
                    std::uint32_t arg = segs.items[begin];
                    for (std::uint32_t e = begin; e < end; ++e) {
                        const float v = x[segs.items[e]];
                        if (v > best) {
                            best = v;
                            arg = segs.items[e];
                        }
                    }
                    o[s] = best;
                    arg_out[r * numSegments + s] = arg;
                }
            }
        });
}

void
gatherColsInto(const Tensor& a, const std::vector<std::uint32_t>& index,
               Tensor& out, Backend backend)
{
    const bool useAvx2 =
        backend != Backend::Scalar && simd::avx2Active();
    parallelChunks(backend != Backend::Scalar, a.rows(),
                   rowGrain(index.size()),
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t r = begin; r < end; ++r) {
                           const float* x = a.row(r);
                           float* o = out.row(r);
                           if (useAvx2) {
                               avx2::gatherColsRow(x, index.data(), o,
                                                   index.size());
                               continue;
                           }
                           for (std::size_t i = 0; i < index.size(); ++i)
                               o[i] = x[index[i]];
                       }
                   });
}

void
matmulInto(const Tensor& a, const Tensor& w, Tensor& out, Backend backend)
{
    if (backend == Backend::Scalar) {
        for (std::size_t b = 0; b < a.rows(); ++b) {
            for (std::size_t h = 0; h < w.cols(); ++h) {
                double acc = 0.0;
                for (std::size_t k = 0; k < a.cols(); ++k)
                    acc += static_cast<double>(a.at(b, k)) * w.at(k, h);
                out.at(b, h) = static_cast<float>(acc);
            }
        }
        return;
    }
    // ikj order with restrict pointers for vectorizable inner loop,
    // parallel over output rows (each task owns disjoint rows). The
    // accumulation needs a zeroed destination.
    out.fill(0.0f);
    parallelChunks(
        true, a.rows(), rowGrain(a.cols() * w.cols()),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t b = begin; b < end; ++b) {
                const float* __restrict aRow = a.row(b);
                float* __restrict oRow = out.row(b);
                for (std::size_t k = 0; k < a.cols(); ++k) {
                    const float av_k = aRow[k];
                    if (av_k == 0.0f)
                        continue;
                    const float* __restrict wRow = w.row(k);
                    for (std::size_t h = 0; h < w.cols(); ++h)
                        oRow[h] += av_k * wRow[h];
                }
            }
        });
}

void
addRowBroadcastInto(const Tensor& a, const Tensor& bias, Tensor& out)
{
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const float* x = a.row(r);
        const float* m = bias.row(0);
        float* o = out.row(r);
        for (std::size_t i = 0; i < a.cols(); ++i)
            o[i] = x[i] + m[i];
    }
}

void
scatterMatrixInto(const Tensor& a, const std::vector<MatrixEntry>& entries,
                  std::size_t dim, bool mean_over_rows, Tensor& out,
                  Backend backend)
{
    (void)dim;
    out.fill(0.0f);
    if (mean_over_rows) {
        const float inv =
            a.rows() ? 1.0f / static_cast<float>(a.rows()) : 0.0f;
        float* o = out.row(0);
        for (const MatrixEntry& entry : entries) {
            float acc = 0.0f;
            for (std::size_t r = 0; r < a.rows(); ++r)
                acc += a.at(r, entry.column);
            o[entry.position] += acc * inv;
        }
    } else {
        parallelChunks(backend != Backend::Scalar, a.rows(),
                       rowGrain(entries.size()),
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t r = begin; r < end; ++r) {
                               const float* x = a.row(r);
                               float* o = out.row(r);
                               for (const MatrixEntry& entry : entries)
                                   o[entry.position] += x[entry.column];
                           }
                       });
    }
}

} // namespace smoothe::tensor
