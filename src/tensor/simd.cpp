#include "tensor/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/log.hpp"

namespace smoothe::tensor::simd {

namespace {

obs::Logger&
logger()
{
    static obs::Logger log("simd");
    return log;
}

/** One-time cpuid probe. __builtin_cpu_supports covers gcc and clang;
 *  non-x86 targets simply never report AVX2. */
Level
probeDetectedLevel()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

std::atomic<bool> g_requestedUnsupported{false};

/** Resolves SMOOTHE_SIMD against the detected level (first call only;
 *  later reads hit the cached atomic in activeLevel()). */
Level
resolveInitialLevel()
{
    const Level detected = probeDetectedLevel();
    const char* env = std::getenv("SMOOTHE_SIMD");
    if (env == nullptr || std::strcmp(env, "auto") == 0)
        return detected;
    if (std::strcmp(env, "scalar") == 0)
        return Level::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        if (detected == Level::Avx2)
            return Level::Avx2;
        g_requestedUnsupported.store(true, std::memory_order_relaxed);
        logger().warn("SMOOTHE_SIMD=avx2 requested but the CPU lacks "
                      "AVX2; falling back to scalar kernels");
        return Level::Scalar;
    }
    logger().warn("unknown SMOOTHE_SIMD value '%s' (expected scalar, "
                  "avx2, or auto); using auto",
                  env);
    return detected;
}

std::atomic<Level>&
levelCache()
{
    static std::atomic<Level> level{resolveInitialLevel()};
    return level;
}

} // namespace

Level
detectedLevel()
{
    static const Level detected = probeDetectedLevel();
    return detected;
}

Level
activeLevel()
{
    return levelCache().load(std::memory_order_relaxed);
}

void
setLevel(Level level)
{
    if (level > detectedLevel())
        level = detectedLevel();
    levelCache().store(level, std::memory_order_relaxed);
}

bool
requestedUnsupported()
{
    // Force env resolution so the flag is meaningful even before the
    // first kernel dispatch.
    (void)activeLevel();
    return g_requestedUnsupported.load(std::memory_order_relaxed);
}

const char*
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
    }
    return "unknown";
}

const char*
kernelSuffix()
{
    return avx2Active() ? "@avx2" : "";
}

} // namespace smoothe::tensor::simd
