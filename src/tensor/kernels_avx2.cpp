/**
 * @file
 * AVX2 kernel bodies (see kernels_avx2.hpp for the bitwise contract).
 *
 * Every function is compiled with a per-function target("avx2")
 * attribute so this TU builds without -mavx2; the simd::avx2Active()
 * dispatch in the callers guarantees none of them run on hardware
 * without AVX2. No FMA intrinsics are used anywhere: the generic
 * kernels round every multiply and add separately (the build carries
 * no -mfma/-ffp-contract), and matching that rounding is what keeps
 * the two variants bit-identical.
 */

#include "tensor/kernels_avx2.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "check/contracts.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#define SMOOTHE_AVX2_FN __attribute__((target("avx2")))

namespace smoothe::tensor::avx2 {

namespace {

/**
 * 8-lane polynomial expf (Cephes-style range reduction, degree-5
 * polynomial). Accurate to a few ULP of std::exp over the range
 * segment softmax feeds it (inputs <= 0 after max subtraction); this
 * is the one place the AVX2 variant is not bitwise equal to scalar.
 */
SMOOTHE_AVX2_FN inline __m256
exp256(__m256 x)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647949f);
    const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
    const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
    const __m256 c1 = _mm256_set1_ps(0.693359375f);
    const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
    const __m256 one = _mm256_set1_ps(1.0f);

    x = _mm256_min_ps(x, hi);
    x = _mm256_max_ps(x, lo);

    // n = floor(x * log2(e) + 0.5)
    __m256 fx = _mm256_add_ps(_mm256_mul_ps(x, log2e),
                              _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);

    // r = x - n*ln2 (split-constant reduction)
    x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c1));
    x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c2));

    const __m256 z = _mm256_mul_ps(x, x);
    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_add_ps(_mm256_mul_ps(y, x),
                      _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_add_ps(_mm256_mul_ps(y, x),
                      _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_add_ps(_mm256_mul_ps(y, x),
                      _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_add_ps(_mm256_mul_ps(y, x),
                      _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_add_ps(_mm256_mul_ps(y, x),
                      _mm256_set1_ps(5.0000001201e-1f));
    y = _mm256_add_ps(_mm256_mul_ps(y, z), _mm256_add_ps(x, one));

    // y *= 2^n via exponent-field construction
    const __m256i n = _mm256_cvttps_epi32(fx);
    const __m256i pow2n = _mm256_slli_epi32(
        _mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

/** Per-lane flat offsets {0, s, 2s, ..., 7s} for strided gathers. */
SMOOTHE_AVX2_FN inline __m256i
laneOffsets(std::size_t stride)
{
    return _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        _mm256_set1_epi32(static_cast<int>(stride)));
}

} // namespace

SMOOTHE_AVX2_FN void
addSpan(const float* a, const float* b, float* o, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] + b[i];
}

SMOOTHE_AVX2_FN void
subSpan(const float* a, const float* b, float* o, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] - b[i];
}

SMOOTHE_AVX2_FN void
mulSpan(const float* a, const float* b, float* o, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < n; ++i)
        o[i] = a[i] * b[i];
}

SMOOTHE_AVX2_FN void
scaleSpan(const float* a, float alpha, float* o, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i,
                         _mm256_mul_ps(va, _mm256_loadu_ps(a + i)));
    for (; i < n; ++i)
        o[i] = alpha * a[i];
}

SMOOTHE_AVX2_FN void
addScalarSpan(const float* a, float alpha, float* o, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i,
                         _mm256_add_ps(_mm256_loadu_ps(a + i), va));
    for (; i < n; ++i)
        o[i] = a[i] + alpha;
}

SMOOTHE_AVX2_FN void
affineSpan(const float* a, float alpha, float beta, float* o, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(alpha);
    const __m256 vb = _mm256_set1_ps(beta);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 scaled = _mm256_mul_ps(va, _mm256_loadu_ps(a + i));
        _mm256_storeu_ps(o + i, _mm256_add_ps(scaled, vb));
    }
    for (; i < n; ++i) {
        const float scaled = alpha * a[i];
        o[i] = scaled + beta;
    }
}

SMOOTHE_AVX2_FN void
reluSpan(const float* a, float* o, std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    // max_ps(v, 0) returns the second operand for -0.0 and NaN inputs,
    // matching the scalar `x > 0 ? x : 0` exactly.
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(o + i,
                         _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
    for (; i < n; ++i)
        o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

SMOOTHE_AVX2_FN void
mulAddSpan(const float* a, const float* m, const float* c, float* o,
           std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(m + i));
        _mm256_storeu_ps(
            o + i, _mm256_add_ps(scaled, _mm256_loadu_ps(c + i)));
    }
    for (; i < n; ++i) {
        const float scaled = a[i] * m[i];
        o[i] = scaled + c[i];
    }
}

SMOOTHE_AVX2_FN void
elemChainRow(const float* x, const ElemStage* stages,
             const float* const* stage_rows, std::size_t num_stages,
             float* o, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(x + i);
        for (std::size_t s = 0; s < num_stages; ++s) {
            switch (stages[s].kind) {
              case ElemStageKind::Scale:
                v = _mm256_mul_ps(_mm256_set1_ps(stages[s].alpha), v);
                break;
              case ElemStageKind::AddScalar:
                v = _mm256_add_ps(v, _mm256_set1_ps(stages[s].alpha));
                break;
              case ElemStageKind::MulConst:
                v = _mm256_mul_ps(v,
                                  _mm256_loadu_ps(stage_rows[s] + i));
                break;
              case ElemStageKind::AddConst:
                v = _mm256_add_ps(v,
                                  _mm256_loadu_ps(stage_rows[s] + i));
                break;
            }
        }
        _mm256_storeu_ps(o + i, v);
    }
    for (; i < n; ++i) {
        float v = x[i];
        for (std::size_t s = 0; s < num_stages; ++s) {
            switch (stages[s].kind) {
              case ElemStageKind::Scale:
                v = stages[s].alpha * v;
                break;
              case ElemStageKind::AddScalar:
                v = v + stages[s].alpha;
                break;
              case ElemStageKind::MulConst:
                v = v * stage_rows[s][i];
                break;
              case ElemStageKind::AddConst:
                v = v + stage_rows[s][i];
                break;
            }
        }
        o[i] = v;
    }
}

SMOOTHE_AVX2_FN void
gatherColsRow(const float* x, const std::uint32_t* index, float* o,
              std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(index + i));
        _mm256_storeu_ps(o + i, _mm256_i32gather_ps(x, idx, 4));
    }
    for (; i < n; ++i)
        o[i] = x[index[i]];
}

SMOOTHE_AVX2_FN void
spmvRows8(const std::uint32_t* row_offsets,
          const std::uint32_t* col_indices, const float* values,
          std::size_t row_begin, std::size_t row_end, const float* x,
          std::size_t x_stride, float* o, std::size_t o_stride)
{
    const __m256i lanes = laneOffsets(x_stride);
    alignas(32) float tmp[8];
    for (std::size_t i = row_begin; i < row_end; ++i) {
        __m256 acc = _mm256_setzero_ps();
        const std::uint32_t begin = row_offsets[i];
        const std::uint32_t end = row_offsets[i + 1];
        for (std::uint32_t e = begin; e < end; ++e) {
            const __m256i idx = _mm256_add_epi32(
                lanes,
                _mm256_set1_epi32(static_cast<int>(col_indices[e])));
            const __m256 vx = _mm256_i32gather_ps(x, idx, 4);
            acc = _mm256_add_ps(acc,
                                _mm256_mul_ps(_mm256_set1_ps(values[e]),
                                              vx));
        }
        _mm256_store_ps(tmp, acc);
        for (std::size_t l = 0; l < 8; ++l)
            o[l * o_stride + i] = tmp[l];
    }
}

SMOOTHE_AVX2_FN void
segmentSoftmax8(const float* x, float* o, std::size_t stride,
                const std::uint32_t* offsets, std::size_t num_segments,
                const std::uint32_t* items)
{
    const __m256i lanes = laneOffsets(stride);
    alignas(32) float tmp[8];
    std::vector<float> scratch; // per-segment exp values, [element][lane]
    for (std::size_t s = 0; s < num_segments; ++s) {
        const std::uint32_t begin = offsets[s];
        const std::uint32_t end = offsets[s + 1];
        if (begin == end)
            continue;
        const std::size_t len = end - begin;
        if (scratch.size() < len * 8)
            scratch.resize(len * 8);
        __m256 vmax =
            _mm256_set1_ps(-std::numeric_limits<float>::infinity());
        for (std::uint32_t e = begin; e < end; ++e) {
            const __m256i idx = _mm256_add_epi32(
                lanes, _mm256_set1_epi32(static_cast<int>(items[e])));
            vmax = _mm256_max_ps(vmax, _mm256_i32gather_ps(x, idx, 4));
        }
        __m256 vdenom = _mm256_setzero_ps();
        for (std::uint32_t e = begin; e < end; ++e) {
            const __m256i idx = _mm256_add_epi32(
                lanes, _mm256_set1_epi32(static_cast<int>(items[e])));
            const __m256 ev =
                exp256(_mm256_sub_ps(_mm256_i32gather_ps(x, idx, 4),
                                     vmax));
            _mm256_storeu_ps(scratch.data() + (e - begin) * 8, ev);
            vdenom = _mm256_add_ps(vdenom, ev);
        }
        const __m256 vinv = _mm256_div_ps(_mm256_set1_ps(1.0f), vdenom);
        for (std::uint32_t e = begin; e < end; ++e) {
            const __m256 ev =
                _mm256_loadu_ps(scratch.data() + (e - begin) * 8);
            _mm256_store_ps(tmp, _mm256_mul_ps(ev, vinv));
            float* dst = o + items[e];
            for (std::size_t l = 0; l < 8; ++l)
                dst[l * stride] = tmp[l];
        }
    }
}

SMOOTHE_AVX2_FN void
segmentProductComplement8(const float* x, std::size_t x_stride, float* o,
                          std::size_t o_stride,
                          const std::uint32_t* offsets,
                          std::size_t num_segments,
                          const std::uint32_t* items)
{
    const __m256i lanes = laneOffsets(x_stride);
    const __m256 one = _mm256_set1_ps(1.0f);
    alignas(32) float tmp[8];
    for (std::size_t s = 0; s < num_segments; ++s) {
        __m256 prod = one;
        for (std::uint32_t e = offsets[s]; e < offsets[s + 1]; ++e) {
            const __m256i idx = _mm256_add_epi32(
                lanes, _mm256_set1_epi32(static_cast<int>(items[e])));
            prod = _mm256_mul_ps(
                prod,
                _mm256_sub_ps(one, _mm256_i32gather_ps(x, idx, 4)));
        }
        _mm256_store_ps(tmp, prod);
        for (std::size_t l = 0; l < 8; ++l)
            o[l * o_stride + s] = tmp[l];
    }
}

SMOOTHE_AVX2_FN void
matmulSquare(const double* a, const double* b, double* c, std::size_t d)
{
    std::fill(c, c + d * d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t k = 0; k < d; ++k) {
            const double aik = a[i * d + k];
            if (aik == 0.0)
                continue;
            const double* bRow = b + k * d;
            double* cRow = c + i * d;
            const __m256d va = _mm256_set1_pd(aik);
            std::size_t j = 0;
            for (; j + 4 <= d; j += 4) {
                const __m256d prod =
                    _mm256_mul_pd(va, _mm256_loadu_pd(bRow + j));
                _mm256_storeu_pd(
                    cRow + j,
                    _mm256_add_pd(_mm256_loadu_pd(cRow + j), prod));
            }
            for (; j < d; ++j)
                cRow[j] += aik * bRow[j];
        }
    }
}

} // namespace smoothe::tensor::avx2

#else // !x86: dispatch never selects these; keep the symbols linkable.

namespace smoothe::tensor::avx2 {

namespace {
[[noreturn]] void
unreachable()
{
    SMOOTHE_ASSERT(false, "AVX2 kernel invoked on non-x86 hardware");
    std::abort();
}
} // namespace

void
addSpan(const float*, const float*, float*, std::size_t)
{
    unreachable();
}
void
subSpan(const float*, const float*, float*, std::size_t)
{
    unreachable();
}
void
mulSpan(const float*, const float*, float*, std::size_t)
{
    unreachable();
}
void
scaleSpan(const float*, float, float*, std::size_t)
{
    unreachable();
}
void
addScalarSpan(const float*, float, float*, std::size_t)
{
    unreachable();
}
void
affineSpan(const float*, float, float, float*, std::size_t)
{
    unreachable();
}
void
reluSpan(const float*, float*, std::size_t)
{
    unreachable();
}
void
mulAddSpan(const float*, const float*, const float*, float*, std::size_t)
{
    unreachable();
}
void
elemChainRow(const float*, const ElemStage*, const float* const*,
             std::size_t, float*, std::size_t)
{
    unreachable();
}
void
gatherColsRow(const float*, const std::uint32_t*, float*, std::size_t)
{
    unreachable();
}
void
spmvRows8(const std::uint32_t*, const std::uint32_t*, const float*,
          std::size_t, std::size_t, const float*, std::size_t, float*,
          std::size_t)
{
    unreachable();
}
void
segmentSoftmax8(const float*, float*, std::size_t, const std::uint32_t*,
                std::size_t, const std::uint32_t*)
{
    unreachable();
}
void
segmentProductComplement8(const float*, std::size_t, float*, std::size_t,
                          const std::uint32_t*, std::size_t,
                          const std::uint32_t*)
{
    unreachable();
}
void
matmulSquare(const double*, const double*, double*, std::size_t)
{
    unreachable();
}

} // namespace smoothe::tensor::avx2

#endif
