#include "tensor/tensor.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace smoothe::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols, Arena* arena)
    : rows_(rows), cols_(cols), arena_(arena)
{
    registerBytes();
    data_.assign(rows * cols, 0.0f);
}

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill, Arena* arena)
    : rows_(rows), cols_(cols), arena_(arena)
{
    registerBytes();
    data_.assign(rows * cols, fill);
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_), cols_(other.cols_), arena_(other.arena_)
{
    registerBytes();
    data_ = other.data_;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)),
      arena_(other.arena_)
{
    other.rows_ = 0;
    other.cols_ = 0;
    other.arena_ = nullptr;
}

Tensor&
Tensor::operator=(const Tensor& other)
{
    if (this == &other)
        return *this;
    releaseBytes();
    rows_ = other.rows_;
    cols_ = other.cols_;
    arena_ = other.arena_;
    registerBytes();
    data_ = other.data_;
    return *this;
}

Tensor&
Tensor::operator=(Tensor&& other) noexcept
{
    if (this == &other)
        return *this;
    releaseBytes();
    rows_ = other.rows_;
    cols_ = other.cols_;
    arena_ = other.arena_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.arena_ = nullptr;
    return *this;
}

Tensor::~Tensor()
{
    releaseBytes();
}

void
Tensor::registerBytes()
{
    if (arena_)
        arena_->allocate(rows_ * cols_ * sizeof(float));
}

void
Tensor::releaseBytes()
{
    if (arena_)
        arena_->release(rows_ * cols_ * sizeof(float));
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

SegmentIndex
SegmentIndex::fromAssignment(const std::vector<std::uint32_t>& item_segment,
                             std::size_t num_segments)
{
    SegmentIndex index;
    index.offsets.assign(num_segments + 1, 0);
    for (std::uint32_t seg : item_segment) {
        SMOOTHE_DCHECK(seg < num_segments, "segment id %u out of %zu", seg,
                       num_segments);
        ++index.offsets[seg + 1];
    }
    for (std::size_t s = 0; s < num_segments; ++s)
        index.offsets[s + 1] += index.offsets[s];
    index.items.resize(item_segment.size());
    std::vector<std::uint32_t> cursor(index.offsets.begin(),
                                      index.offsets.end() - 1);
    for (std::uint32_t item = 0; item < item_segment.size(); ++item)
        index.items[cursor[item_segment[item]]++] = item;
    return index;
}

} // namespace smoothe::tensor
