#include "tensor/tensor.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::tensor {

namespace {

/**
 * Rows of the output matrix handled per parallel task. Fixed (never
 * derived from the worker count) so the work partition — and therefore
 * the float result — is identical for every thread count.
 */
constexpr std::size_t kSpmvRowBlock = 512;

} // namespace

Tensor::Tensor(std::size_t rows, std::size_t cols, Arena* arena)
    : rows_(rows), cols_(cols), arena_(arena)
{
    registerBytes();
    data_.assign(rows * cols, 0.0f);
}

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill, Arena* arena)
    : rows_(rows), cols_(cols), arena_(arena)
{
    registerBytes();
    data_.assign(rows * cols, fill);
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_), cols_(other.cols_), arena_(other.arena_)
{
    registerBytes();
    data_ = other.data_;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)),
      arena_(other.arena_)
{
    other.rows_ = 0;
    other.cols_ = 0;
    other.arena_ = nullptr;
}

Tensor&
Tensor::operator=(const Tensor& other)
{
    if (this == &other)
        return *this;
    releaseBytes();
    rows_ = other.rows_;
    cols_ = other.cols_;
    arena_ = other.arena_;
    registerBytes();
    data_ = other.data_;
    return *this;
}

Tensor&
Tensor::operator=(Tensor&& other) noexcept
{
    if (this == &other)
        return *this;
    releaseBytes();
    rows_ = other.rows_;
    cols_ = other.cols_;
    arena_ = other.arena_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.arena_ = nullptr;
    return *this;
}

Tensor::~Tensor()
{
    releaseBytes();
}

void
Tensor::registerBytes()
{
    if (arena_)
        arena_->allocate(rows_ * cols_ * sizeof(float));
}

void
Tensor::releaseBytes()
{
    if (arena_)
        arena_->release(rows_ * cols_ * sizeof(float));
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
Tensor::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

SegmentIndex
SegmentIndex::fromAssignment(const std::vector<std::uint32_t>& item_segment,
                             std::size_t num_segments)
{
    SegmentIndex index;
    index.offsets.assign(num_segments + 1, 0);
    for (std::uint32_t seg : item_segment) {
        SMOOTHE_DCHECK(seg < num_segments, "segment id %u out of %zu", seg,
                       num_segments);
        ++index.offsets[seg + 1];
    }
    for (std::size_t s = 0; s < num_segments; ++s)
        index.offsets[s + 1] += index.offsets[s];
    index.items.resize(item_segment.size());
    std::vector<std::uint32_t> cursor(index.offsets.begin(),
                                      index.offsets.end() - 1);
    for (std::uint32_t item = 0; item < item_segment.size(); ++item)
        index.items[cursor[item_segment[item]]++] = item;
    return index;
}

void
spmv(const CsrMatrix& a, const Tensor& x, Tensor& out, Backend backend)
{
    SMOOTHE_ASSERT(x.cols() == a.numCols, "spmv: %zu cols vs %zu matrix cols",
                   x.cols(), a.numCols);
    SMOOTHE_ASSERT(out.rows() == x.rows() && out.cols() == a.numRows,
                   "spmv: output %zux%zu for %zux%zu", out.rows(), out.cols(),
                   x.rows(), a.numRows);
    const std::size_t batch = x.rows();

    static obs::Counter& calls = obs::counter("kernel.spmv.calls");
    static obs::Counter& bytes = obs::counter("kernel.spmv.bytes");
    calls.add(1);
    // Bytes touched: nnz values + column indices, plus in/out vectors.
    bytes.add(a.values.size() * (sizeof(float) + sizeof(std::uint32_t)) +
              (x.size() + out.size()) * sizeof(float));

    if (backend == Backend::Scalar) {
        // Reference path: per batch row, per matrix row, indexed access.
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t i = 0; i < a.numRows; ++i) {
                double acc = 0.0;
                for (std::uint32_t e = a.rowOffsets[i];
                     e < a.rowOffsets[i + 1]; ++e) {
                    acc += static_cast<double>(a.values[e]) *
                           x.at(b, a.colIndices[e]);
                }
                out.at(b, i) = static_cast<float>(acc);
            }
        }
        return;
    }

    // Vectorized path: raw pointers, float accumulation, tight loops,
    // parallel over (batch row, matrix row-block) pairs. Every output
    // element is produced by exactly one task with the same inner loop as
    // the serial code, so results are bit-identical for any thread count.
    const float* __restrict xv = x.data();
    float* __restrict ov = out.data();
    const std::size_t xCols = x.cols();
    const std::size_t oCols = out.cols();
    const std::size_t numBlocks =
        (a.numRows + kSpmvRowBlock - 1) / kSpmvRowBlock;
    util::ThreadPool::global().parallelFor(
        0, batch * numBlocks, 1, [&](std::size_t task) {
            const std::size_t b = task / numBlocks;
            const std::size_t rowBegin = (task % numBlocks) * kSpmvRowBlock;
            const std::size_t rowEnd =
                std::min(a.numRows, rowBegin + kSpmvRowBlock);
            const float* __restrict xRow = xv + b * xCols;
            float* __restrict oRow = ov + b * oCols;
            for (std::size_t i = rowBegin; i < rowEnd; ++i) {
                float acc = 0.0f;
                const std::uint32_t begin = a.rowOffsets[i];
                const std::uint32_t end = a.rowOffsets[i + 1];
                for (std::uint32_t e = begin; e < end; ++e)
                    acc += a.values[e] * xRow[a.colIndices[e]];
                oRow[i] = acc;
            }
        });
}

} // namespace smoothe::tensor
