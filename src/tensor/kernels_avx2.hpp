/**
 * @file
 * Explicit AVX2 kernel variants for the vectorized backend.
 *
 * These are the raw-span bodies the dispatching kernels in
 * src/tensor/kernels.cpp and src/tensor/sparse.cpp call when
 * simd::avx2Active(); each definition in kernels_avx2.cpp carries a
 * per-function `target("avx2")` attribute so the default build needs
 * no -mavx2 flag, and the cpuid-gated dispatch guarantees they never
 * execute on hardware without AVX2.
 *
 * Bitwise contract: every function here performs exactly the rounded
 * float operations of its generic counterpart, in the same per-element
 * (or per-lane) order, with loop tails handled by the identical scalar
 * code — so scalar and AVX2 results are bit-identical. The one
 * documented exception is segmentSoftmax8, whose 8-lane polynomial
 * exponential differs from std::exp by a few ULP (the scalar<->AVX2
 * parity tests compare it with a tolerance; see DESIGN.md "Vectorized
 * backend").
 *
 * The cross-seed kernels (spmvRows8, segmentSoftmax8,
 * segmentProductComplement8) realize the seed-batch batching: the B
 * seed rows become the SIMD lane dimension, so one pass over the
 * sparse structure serves 8 seeds instead of replaying it per seed.
 */

#ifndef SMOOTHE_TENSOR_KERNELS_AVX2_HPP
#define SMOOTHE_TENSOR_KERNELS_AVX2_HPP

#include <cstddef>
#include <cstdint>

#include "tensor/kernels.hpp"

namespace smoothe::tensor::avx2 {

/** o[i] = a[i] + b[i]. */
void addSpan(const float* a, const float* b, float* o, std::size_t n);
/** o[i] = a[i] - b[i]. */
void subSpan(const float* a, const float* b, float* o, std::size_t n);
/** o[i] = a[i] * b[i]. */
void mulSpan(const float* a, const float* b, float* o, std::size_t n);
/** o[i] = alpha * a[i]. */
void scaleSpan(const float* a, float alpha, float* o, std::size_t n);
/** o[i] = a[i] + alpha. */
void addScalarSpan(const float* a, float alpha, float* o, std::size_t n);
/** o[i] = (alpha * a[i]) + beta, two separately rounded ops. */
void affineSpan(const float* a, float alpha, float beta, float* o,
                std::size_t n);
/** o[i] = max(a[i], 0). */
void reluSpan(const float* a, float* o, std::size_t n);
/** o[i] = (a[i] * m[i]) + c[i], two separately rounded ops. */
void mulAddSpan(const float* a, const float* m, const float* c, float* o,
                std::size_t n);
/**
 * Applies `stages` to one row of n elements. stage_rows[s] is the
 * stage's const-row pointer (MulConst/AddConst, already broadcast-
 * resolved by the caller) or nullptr for scalar stages.
 */
void elemChainRow(const float* x, const ElemStage* stages,
                  const float* const* stage_rows, std::size_t num_stages,
                  float* o, std::size_t n);
/** o[i] = x[index[i]] for one row (8-wide index gathers). */
void gatherColsRow(const float* x, const std::uint32_t* index, float* o,
                   std::size_t n);

/**
 * Cross-seed CSR SpMV over 8 consecutive batch rows: for matrix rows
 * [row_begin, row_end), o[l * o_stride + i] accumulates
 * values[e] * x[l * x_stride + colIndices[e]] across the row's
 * entries, all 8 lanes fed by one strided gather per entry.
 */
void spmvRows8(const std::uint32_t* row_offsets,
               const std::uint32_t* col_indices, const float* values,
               std::size_t row_begin, std::size_t row_end, const float* x,
               std::size_t x_stride, float* o, std::size_t o_stride);

/**
 * Cross-seed segment softmax over 8 consecutive batch rows. Uses a
 * polynomial expf (few-ULP difference vs std::exp); max, denominator,
 * and normalization follow the scalar order per lane.
 */
void segmentSoftmax8(const float* x, float* o, std::size_t stride,
                     const std::uint32_t* offsets,
                     std::size_t num_segments,
                     const std::uint32_t* items);

/** Cross-seed segment product-complement over 8 consecutive batch
 *  rows: o[l * o_stride + s] = prod_{e in segment s} (1 - x[l][item]).
 */
void segmentProductComplement8(const float* x, std::size_t x_stride,
                               float* o, std::size_t o_stride,
                               const std::uint32_t* offsets,
                               std::size_t num_segments,
                               const std::uint32_t* items);

/** c = a * b for row-major d x d doubles, 4-lane inner loop; bitwise
 *  identical to autodiff/matexp.cpp's scalar matmulSquare. */
void matmulSquare(const double* a, const double* b, double* c,
                  std::size_t d);

} // namespace smoothe::tensor::avx2

#endif // SMOOTHE_TENSOR_KERNELS_AVX2_HPP
