#include "tensor/sparse.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "obs/metrics.hpp"
#include "tensor/kernels_avx2.hpp"
#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace smoothe::tensor {

namespace {

/**
 * Output rows handled per parallel task. Fixed (never derived from the
 * worker count) so the work partition — and therefore the float
 * result — is identical for every thread count.
 */
constexpr std::size_t kSpmvRowBlock = 512;

/**
 * The shared compressed-axis product both spmv (CSR) and spmvT (CSC)
 * lower to: out[b, i] = sum over entries e of compressed axis i of
 * values[e] * x[b, indices[e]].
 *
 * Scalar backend: reference per-batch-row loops with a double
 * accumulator. Vectorized: float accumulation, parallel over (batch,
 * row-block) pairs; with AVX2 active and >= 8 batch rows, groups of 8
 * batch rows become the SIMD lanes of one cross-seed kernel (per-lane
 * accumulation order matches the generic loop, so the variants are
 * bit-identical).
 */
void
compressedProduct(const std::uint32_t* offsets,
                  const std::uint32_t* indices, const float* values,
                  std::size_t n_out, const Tensor& x, Tensor& out,
                  Backend backend)
{
    const std::size_t batch = x.rows();

    if (backend == Backend::Scalar) {
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t i = 0; i < n_out; ++i) {
                double acc = 0.0;
                for (std::uint32_t e = offsets[i]; e < offsets[i + 1];
                     ++e) {
                    acc += static_cast<double>(values[e]) *
                           x.at(b, indices[e]);
                }
                out.at(b, i) = static_cast<float>(acc);
            }
        }
        return;
    }

    const float* __restrict xv = x.data();
    float* __restrict ov = out.data();
    const std::size_t xCols = x.cols();
    const std::size_t oCols = out.cols();
    const std::size_t numBlocks =
        (n_out + kSpmvRowBlock - 1) / kSpmvRowBlock;
    const std::size_t groups =
        simd::avx2Active() ? batch / 8 : std::size_t{0};

    // Cross-seed AVX2: each task owns one (8-row seed group, row
    // block); every output element is written by exactly one task.
    if (groups > 0) {
        util::ThreadPool::global().parallelFor(
            0, groups * numBlocks, 1, [&](std::size_t task) {
                const std::size_t g = task / numBlocks;
                const std::size_t rowBegin =
                    (task % numBlocks) * kSpmvRowBlock;
                const std::size_t rowEnd =
                    std::min(n_out, rowBegin + kSpmvRowBlock);
                avx2::spmvRows8(offsets, indices, values, rowBegin,
                                rowEnd, xv + g * 8 * xCols, xCols,
                                ov + g * 8 * oCols, oCols);
            });
    }

    // Generic path: remaining batch rows (all of them when AVX2 is
    // off; the non-multiple-of-8 tail otherwise).
    const std::size_t remBegin = groups * 8;
    if (remBegin < batch) {
        util::ThreadPool::global().parallelFor(
            0, (batch - remBegin) * numBlocks, 1, [&](std::size_t task) {
                const std::size_t b = remBegin + task / numBlocks;
                const std::size_t rowBegin =
                    (task % numBlocks) * kSpmvRowBlock;
                const std::size_t rowEnd =
                    std::min(n_out, rowBegin + kSpmvRowBlock);
                const float* __restrict xRow = xv + b * xCols;
                float* __restrict oRow = ov + b * oCols;
                for (std::size_t i = rowBegin; i < rowEnd; ++i) {
                    float acc = 0.0f;
                    for (std::uint32_t e = offsets[i];
                         e < offsets[i + 1]; ++e)
                        acc += values[e] * xRow[indices[e]];
                    oRow[i] = acc;
                }
            });
    }
}

} // namespace

CsrMatrix
csrFromSegments(const SegmentIndex& segs, std::size_t num_cols)
{
    CsrMatrix m;
    m.numRows = segs.numSegments();
    m.numCols = num_cols;
    m.rowOffsets = segs.offsets;
    m.colIndices = segs.items;
    m.values.assign(segs.items.size(), 1.0f);
    return m;
}

CscMatrix
cscFromCsr(const CsrMatrix& a)
{
    CscMatrix t;
    t.numRows = a.numRows;
    t.numCols = a.numCols;
    t.colOffsets.assign(a.numCols + 1, 0);
    for (std::uint32_t col : a.colIndices)
        ++t.colOffsets[col + 1];
    for (std::size_t j = 0; j < a.numCols; ++j)
        t.colOffsets[j + 1] += t.colOffsets[j];
    t.rowIndices.resize(a.nnz());
    t.values.resize(a.nnz());
    std::vector<std::uint32_t> cursor(t.colOffsets.begin(),
                                      t.colOffsets.end() - 1);
    for (std::size_t i = 0; i < a.numRows; ++i) {
        for (std::uint32_t e = a.rowOffsets[i]; e < a.rowOffsets[i + 1];
             ++e) {
            const std::uint32_t dst = cursor[a.colIndices[e]]++;
            t.rowIndices[dst] = static_cast<std::uint32_t>(i);
            t.values[dst] = a.values[e];
        }
    }
    return t;
}

void
spmv(const CsrMatrix& a, const Tensor& x, Tensor& out, Backend backend)
{
    SMOOTHE_ASSERT(x.cols() == a.numCols, "spmv: %zu cols vs %zu matrix cols",
                   x.cols(), a.numCols);
    SMOOTHE_ASSERT(out.rows() == x.rows() && out.cols() == a.numRows,
                   "spmv: output %zux%zu for %zux%zu", out.rows(), out.cols(),
                   x.rows(), a.numRows);

    static obs::Counter& calls = obs::counter("kernel.spmv.calls");
    static obs::Counter& bytes = obs::counter("kernel.spmv.bytes");
    calls.add(1);
    // Bytes touched: nnz values + column indices, plus in/out vectors.
    bytes.add(a.values.size() * (sizeof(float) + sizeof(std::uint32_t)) +
              (x.size() + out.size()) * sizeof(float));

    compressedProduct(a.rowOffsets.data(), a.colIndices.data(),
                      a.values.data(), a.numRows, x, out, backend);
}

void
spmvT(const CscMatrix& a, const Tensor& x, Tensor& out, Backend backend)
{
    SMOOTHE_ASSERT(x.cols() == a.numRows,
                   "spmvT: %zu cols vs %zu matrix rows", x.cols(),
                   a.numRows);
    SMOOTHE_ASSERT(out.rows() == x.rows() && out.cols() == a.numCols,
                   "spmvT: output %zux%zu for %zux%zu", out.rows(),
                   out.cols(), x.rows(), a.numCols);

    static obs::Counter& calls = obs::counter("kernel.spmvt.calls");
    static obs::Counter& bytes = obs::counter("kernel.spmvt.bytes");
    calls.add(1);
    bytes.add(a.values.size() * (sizeof(float) + sizeof(std::uint32_t)) +
              (x.size() + out.size()) * sizeof(float));

    compressedProduct(a.colOffsets.data(), a.rowIndices.data(),
                      a.values.data(), a.numCols, x, out, backend);
}

} // namespace smoothe::tensor
