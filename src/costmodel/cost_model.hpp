/**
 * @file
 * Differentiable cost models (Section 3.2, Section 5.5).
 *
 * A CostModel plays two roles:
 *  - during SmoothE optimization it builds the differentiable objective
 *    f(p) on the autodiff tape, mapping the relaxed selection
 *    probabilities p (B x N, one row per seed) to a per-seed cost (B x 1);
 *  - during sampling / baseline evaluation it scores a *discrete* binary
 *    selection s.
 *
 * The linear model f(p) = u^T p is the paper's Table 2/3/4 objective; the
 * MLP model is the Section 5.5 non-linear benchmark; Composite adds the
 * MLP correction term on top of the linear base:
 * f(x) = f_linear(x) + f_nonlinear(x).
 */

#ifndef SMOOTHE_COSTMODEL_COST_MODEL_HPP
#define SMOOTHE_COSTMODEL_COST_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "egraph/egraph.hpp"
#include "util/rng.hpp"

namespace smoothe::cost {

/** Abstract differentiable cost model over e-node selections. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Human-readable name for tables. */
    virtual std::string name() const = 0;

    /**
     * Builds the relaxed objective on the tape.
     * @param tape the active tape
     * @param p B x N selection probabilities
     * @return a B x 1 node holding the per-seed cost
     */
    virtual ad::VarId build(ad::Tape& tape, ad::VarId p) const = 0;

    /** Scores a discrete binary selection (s[i] = e-node i chosen). */
    virtual double discrete(const std::vector<bool>& s) const = 0;
};

/** f(p) = u^T p with u taken from the e-graph's per-node costs. */
class LinearCost : public CostModel
{
  public:
    /** Builds u from graph.node(i).cost. */
    explicit LinearCost(const eg::EGraph& graph);
    /** Builds from an explicit weight vector. */
    explicit LinearCost(std::vector<float> weights);

    std::string name() const override { return "linear"; }
    ad::VarId build(ad::Tape& tape, ad::VarId p) const override;
    double discrete(const std::vector<bool>& s) const override;

    const std::vector<float>& weights() const { return weights_; }

  private:
    std::vector<float> weights_;
};

/**
 * The paper's 4-layer MLP: N -> 64 -> 64 -> 8 -> 1 with ReLU, producing a
 * scalar (negative) correction per selection. Trainable on synthetic
 * regression data per Section 5.5.
 */
class MlpCost : public CostModel
{
  public:
    /**
     * @param num_nodes input dimension N
     * @param rng initializes the weights (He initialization)
     */
    MlpCost(std::size_t num_nodes, util::Rng& rng);

    std::string name() const override { return "mlp"; }
    ad::VarId build(ad::Tape& tape, ad::VarId p) const override;
    double discrete(const std::vector<bool>& s) const override;

    /**
     * Trains on synthetic data following the paper: random valid
     * extractions as inputs, random negative targets (savings) as labels,
     * MSE regression with Adam.
     * @param graph source of valid random selections
     * @param num_samples synthetic dataset size
     * @param epochs full passes over the dataset
     * @param rng sampling and shuffling
     * @return final training MSE
     */
    double trainSynthetic(const eg::EGraph& graph, std::size_t num_samples,
                          std::size_t epochs, util::Rng& rng);

    /** Direct forward evaluation on a batch of indicator rows (B x N). */
    std::vector<double> forwardBatch(const ad::Tensor& inputs) const;

  private:
    std::size_t inputDim_;
    // Parameters are mutable state owned by the model; build() reads them.
    mutable ad::Param w1_, b1_, w2_, b2_, w3_, b3_, w4_, b4_;
};

/** f(x) = linear(x) + scale * nonlinear(x). */
class CompositeCost : public CostModel
{
  public:
    CompositeCost(std::shared_ptr<CostModel> linear,
                  std::shared_ptr<CostModel> nonlinear, float scale = 1.0f);

    std::string name() const override { return "linear+mlp"; }
    ad::VarId build(ad::Tape& tape, ad::VarId p) const override;
    double discrete(const std::vector<bool>& s) const override;

  private:
    std::shared_ptr<CostModel> linear_;
    std::shared_ptr<CostModel> nonlinear_;
    float scale_;
};

} // namespace smoothe::cost

#endif // SMOOTHE_COSTMODEL_COST_MODEL_HPP
