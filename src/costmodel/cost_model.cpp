#include "costmodel/cost_model.hpp"

#include <cmath>

#include "autodiff/adam.hpp"
#include "autodiff/program.hpp"
#include "check/contracts.hpp"
#include "extraction/random_sample.hpp"

namespace smoothe::cost {

using ad::Param;
using ad::Tape;
using ad::Tensor;
using ad::VarId;

// --- LinearCost ---------------------------------------------------------

LinearCost::LinearCost(const eg::EGraph& graph)
{
    weights_.reserve(graph.numNodes());
    for (eg::NodeId nid = 0; nid < graph.numNodes(); ++nid)
        weights_.push_back(static_cast<float>(graph.node(nid).cost));
}

LinearCost::LinearCost(std::vector<float> weights)
    : weights_(std::move(weights))
{}

VarId
LinearCost::build(Tape& tape, VarId p) const
{
    return tape.dotRowsConst(p, weights_);
}

double
LinearCost::discrete(const std::vector<bool>& s) const
{
    SMOOTHE_CHECK(s.size() == weights_.size(),
                  "indicator has %zu entries for %zu weights", s.size(),
                  weights_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i])
            total += weights_[i];
    }
    return total;
}

// --- MlpCost ------------------------------------------------------------

namespace {

constexpr std::size_t kHidden1 = 64;
constexpr std::size_t kHidden2 = 64;
constexpr std::size_t kHidden3 = 8;

Tensor
heInit(std::size_t rows, std::size_t cols, util::Rng& rng)
{
    Tensor t(rows, cols);
    const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

} // namespace

MlpCost::MlpCost(std::size_t num_nodes, util::Rng& rng)
    : inputDim_(num_nodes),
      w1_(heInit(num_nodes, kHidden1, rng)), b1_(Tensor(1, kHidden1)),
      w2_(heInit(kHidden1, kHidden2, rng)), b2_(Tensor(1, kHidden2)),
      w3_(heInit(kHidden2, kHidden3, rng)), b3_(Tensor(1, kHidden3)),
      w4_(heInit(kHidden3, 1, rng)), b4_(Tensor(1, 1))
{}

VarId
MlpCost::build(Tape& tape, VarId p) const
{
    VarId h = tape.matmul(p, tape.leaf(&w1_));
    h = tape.relu(tape.addRowBroadcast(h, tape.leaf(&b1_)));
    h = tape.matmul(h, tape.leaf(&w2_));
    h = tape.relu(tape.addRowBroadcast(h, tape.leaf(&b2_)));
    h = tape.matmul(h, tape.leaf(&w3_));
    h = tape.relu(tape.addRowBroadcast(h, tape.leaf(&b3_)));
    h = tape.matmul(h, tape.leaf(&w4_));
    h = tape.addRowBroadcast(h, tape.leaf(&b4_));
    return h; // B x 1
}

double
MlpCost::discrete(const std::vector<bool>& s) const
{
    Tensor input(1, inputDim_);
    for (std::size_t i = 0; i < s.size() && i < inputDim_; ++i)
        input.at(0, i) = s[i] ? 1.0f : 0.0f;
    return forwardBatch(input).front();
}

std::vector<double>
MlpCost::forwardBatch(const Tensor& inputs) const
{
    Tape tape;
    const VarId x = tape.constant(inputs);
    const VarId out = build(tape, x);
    const Tensor& v = tape.value(out);
    std::vector<double> result(v.rows());
    for (std::size_t r = 0; r < v.rows(); ++r)
        result[r] = v.at(r, 0);
    return result;
}

double
MlpCost::trainSynthetic(const eg::EGraph& graph, std::size_t num_samples,
                        std::size_t epochs, util::Rng& rng)
{
    // Synthetic dataset per the paper: inputs are random *valid* discrete
    // extractions; targets are random negative numbers ("savings").
    const auto selections =
        extract::sampleRandomSelections(graph, num_samples, rng);
    Tensor inputs(num_samples, inputDim_);
    Tensor targets(num_samples, 1);
    for (std::size_t row = 0; row < selections.size(); ++row) {
        const auto indicator = selections[row].toNodeIndicator(graph);
        for (std::size_t i = 0; i < inputDim_; ++i)
            inputs.at(row, i) = indicator[i] ? 1.0f : 0.0f;
        targets.at(row, 0) = static_cast<float>(rng.uniform(-10.0, -1.0));
    }

    ad::Adam optimizer({&w1_, &b1_, &w2_, &b2_, &w3_, &b3_, &w4_, &b4_},
                       ad::AdamConfig{0.003f, 0.9f, 0.999f, 1e-8f});

    // Record the epoch graph once and replay it: leaf values alias the
    // Param storage, so every replay forwards through the freshly
    // stepped weights, bit-identical to rebuilding the tape per epoch.
    Tape tape;
    const VarId x = tape.constant(std::move(inputs));
    const VarId pred = build(tape, x);
    const VarId diff = tape.sub(pred, tape.constant(std::move(targets)));
    const VarId sq = tape.mul(diff, diff);
    const VarId loss = tape.scale(
        tape.sumAll(sq), 1.0f / static_cast<float>(num_samples));
    ad::Program program(std::move(tape), loss);

    double finalMse = 0.0;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        optimizer.zeroGrad();
        program.forward();
        finalMse = program.value(loss).at(0, 0);
        program.backward();
        optimizer.step();
    }
    return finalMse;
}

// --- CompositeCost ------------------------------------------------------

CompositeCost::CompositeCost(std::shared_ptr<CostModel> linear,
                             std::shared_ptr<CostModel> nonlinear,
                             float scale)
    : linear_(std::move(linear)), nonlinear_(std::move(nonlinear)),
      scale_(scale)
{}

VarId
CompositeCost::build(Tape& tape, VarId p) const
{
    const VarId base = linear_->build(tape, p);
    const VarId correction = nonlinear_->build(tape, p);
    return tape.add(base, tape.scale(correction, scale_));
}

double
CompositeCost::discrete(const std::vector<bool>& s) const
{
    return linear_->discrete(s) + scale_ * nonlinear_->discrete(s);
}

} // namespace smoothe::cost
