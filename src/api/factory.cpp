#include "api/factory.hpp"

#include "extraction/bottom_up.hpp"
#include "extraction/genetic.hpp"
#include "extraction/greedy_dag.hpp"
#include "ilp/ilp_extractor.hpp"
#include "smoothe/smoothe.hpp"

namespace smoothe::api {

const std::vector<std::string>&
extractorNames()
{
    static const std::vector<std::string> names = {
        "heuristic",  "heuristic+", "greedy-dag", "genetic",
        "ilp-strong", "ilp-medium", "ilp-weak",
        "smoothe"};
    return names;
}

std::unique_ptr<extract::Extractor>
makeExtractor(const std::string& name,
              const core::SmoothEConfig& smoothe_config)
{
    if (name == "heuristic")
        return std::make_unique<extract::BottomUpExtractor>();
    if (name == "heuristic+")
        return std::make_unique<extract::FasterBottomUpExtractor>();
    if (name == "genetic")
        return std::make_unique<extract::GeneticExtractor>();
    if (name == "greedy-dag")
        return std::make_unique<extract::GreedyDagExtractor>();
    if (name == "ilp-strong")
        return std::make_unique<ilp::IlpExtractor>(ilp::IlpPreset::Strong);
    if (name == "ilp-medium")
        return std::make_unique<ilp::IlpExtractor>(ilp::IlpPreset::Medium);
    if (name == "ilp-weak")
        return std::make_unique<ilp::IlpExtractor>(ilp::IlpPreset::Weak);
    if (name == "smoothe")
        return std::make_unique<core::SmoothEExtractor>(smoothe_config);
    return nullptr;
}

} // namespace smoothe::api
