/**
 * @file
 * Top-level convenience API: construct any extractor by name (as the
 * bench harness and the smoothe_extract CLI do) and enumerate what is
 * available. This is the one-stop entry point for downstream users.
 */

#ifndef SMOOTHE_API_FACTORY_HPP
#define SMOOTHE_API_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "extraction/extractor.hpp"
#include "smoothe/config.hpp"

namespace smoothe::api {

/** Names accepted by makeExtractor, in display order. */
const std::vector<std::string>& extractorNames();

/**
 * Creates an extractor by name:
 *  - "heuristic"              egg's bottom-up worklist
 *  - "heuristic+"             extraction-gym faster-bottom-up
 *  - "genetic"                random-key genetic algorithm
 *  - "ilp-strong|medium|weak" branch-and-bound ILP presets
 *  - "smoothe"                the differentiable extractor
 * Returns nullptr for unknown names.
 * @param smoothe_config used only by "smoothe"
 */
std::unique_ptr<extract::Extractor>
makeExtractor(const std::string& name,
              const core::SmoothEConfig& smoothe_config = {});

} // namespace smoothe::api

#endif // SMOOTHE_API_FACTORY_HPP
