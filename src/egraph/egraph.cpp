#include "egraph/egraph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "check/contracts.hpp"

namespace smoothe::eg {

ClassId
EGraph::addClass()
{
    SMOOTHE_ASSERT(!finalized_, "addClass() after finalize()");
    classNodes_.emplace_back();
    return static_cast<ClassId>(classNodes_.size() - 1);
}

NodeId
EGraph::addNode(ClassId cls, ENode node)
{
    SMOOTHE_ASSERT(!finalized_, "addNode() after finalize()");
    SMOOTHE_CHECK(cls < classNodes_.size(),
                  "addNode: e-class %u does not exist (have %zu)", cls,
                  classNodes_.size());
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    nodeClass_.push_back(cls);
    classNodes_[cls].push_back(id);
    return id;
}

NodeId
EGraph::addNode(ClassId cls, std::string op, std::vector<ClassId> children,
                double cost)
{
    ENode node;
    node.op = std::move(op);
    node.children = std::move(children);
    node.cost = cost;
    return addNode(cls, std::move(node));
}

std::optional<std::string>
EGraph::finalize()
{
    if (finalized_)
        return std::nullopt;
    if (root_ == kNoClass)
        return "e-graph has no root e-class";
    if (root_ >= classNodes_.size())
        return "root e-class id out of range";
    for (std::size_t j = 0; j < classNodes_.size(); ++j) {
        if (classNodes_[j].empty()) {
            std::ostringstream oss;
            oss << "e-class " << j << " is empty";
            return oss.str();
        }
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (ClassId child : nodes_[i].children) {
            if (child >= classNodes_.size()) {
                std::ostringstream oss;
                oss << "e-node " << i << " references unknown e-class "
                    << child;
                return oss.str();
            }
        }
    }

    classParents_.assign(classNodes_.size(), {});
    std::size_t edges = 0;
    std::size_t leaves = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto& children = nodes_[i].children;
        edges += children.size();
        if (children.empty())
            ++leaves;
        // A node may reference the same child class twice (e.g. x * x);
        // record the parent once per distinct child class.
        std::vector<ClassId> distinct = children;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        for (ClassId child : distinct)
            classParents_[child].push_back(static_cast<NodeId>(i));
    }

    stats_.numNodes = nodes_.size();
    stats_.numClasses = classNodes_.size();
    stats_.numEdges = edges;
    stats_.numLeaves = leaves;
    stats_.avgDegree =
        nodes_.empty() ? 0.0 : static_cast<double>(edges) / nodes_.size();
    stats_.density =
        nodes_.empty() || classNodes_.empty()
            ? 0.0
            : static_cast<double>(edges) /
                  (static_cast<double>(nodes_.size()) * classNodes_.size());
    stats_.maxClassSize = 0;
    for (const auto& members : classNodes_)
        stats_.maxClassSize = std::max(stats_.maxClassSize, members.size());

    finalized_ = true;
    SMOOTHE_DCHECK_OK(checkInvariants());
    return std::nullopt;
}

std::optional<std::string>
EGraph::checkInvariants() const
{
    auto problem = [](const auto&... parts) -> std::optional<std::string> {
        std::ostringstream oss;
        (oss << ... << parts);
        return oss.str();
    };

    // Primary storage sizes must agree.
    if (nodeClass_.size() != nodes_.size())
        return problem("nodeClass index has ", nodeClass_.size(),
                       " entries for ", nodes_.size(), " nodes");

    // Per-node: class in range, children in range, finite cost.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodeClass_[i] >= classNodes_.size())
            return problem("e-node ", i, " claims out-of-range e-class ",
                           nodeClass_[i]);
        for (ClassId child : nodes_[i].children) {
            if (child >= classNodes_.size())
                return problem("e-node ", i,
                               " references out-of-range e-class ", child);
        }
        if (!std::isfinite(nodes_[i].cost))
            return problem("e-node ", i, " has non-finite cost");
    }

    // Membership must be bijective: classNodes_ lists each node exactly
    // once, in the class the node claims.
    std::vector<std::size_t> listed(nodes_.size(), 0);
    for (std::size_t j = 0; j < classNodes_.size(); ++j) {
        for (NodeId nid : classNodes_[j]) {
            if (nid >= nodes_.size())
                return problem("e-class ", j,
                               " lists out-of-range e-node ", nid);
            if (nodeClass_[nid] != j)
                return problem("e-class ", j, " lists e-node ", nid,
                               " which claims e-class ", nodeClass_[nid]);
            ++listed[nid];
        }
    }
    for (std::size_t i = 0; i < listed.size(); ++i) {
        if (listed[i] != 1)
            return problem("e-node ", i, " listed ", listed[i],
                           " times across e-classes");
    }

    if (!finalized_)
        return std::nullopt; // derived indices not built yet

    if (root_ >= classNodes_.size())
        return problem("root e-class ", root_, " out of range");
    for (std::size_t j = 0; j < classNodes_.size(); ++j) {
        if (classNodes_[j].empty())
            return problem("e-class ", j, " is empty");
    }

    // Parent index must match a recomputation (one entry per distinct
    // child class, ascending node ids as built by finalize()).
    if (classParents_.size() != classNodes_.size())
        return problem("parent index has ", classParents_.size(),
                       " entries for ", classNodes_.size(), " classes");
    std::vector<std::vector<NodeId>> expectedParents(classNodes_.size());
    std::size_t edges = 0;
    std::size_t leaves = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto& children = nodes_[i].children;
        edges += children.size();
        if (children.empty())
            ++leaves;
        std::vector<ClassId> distinct = children;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        for (ClassId child : distinct)
            expectedParents[child].push_back(static_cast<NodeId>(i));
    }
    for (std::size_t j = 0; j < classNodes_.size(); ++j) {
        if (classParents_[j] != expectedParents[j])
            return problem("parent index of e-class ", j,
                           " disagrees with recomputation");
    }

    // Cached statistics must match a recount.
    if (stats_.numNodes != nodes_.size() ||
        stats_.numClasses != classNodes_.size() ||
        stats_.numEdges != edges || stats_.numLeaves != leaves)
        return problem("cached stats disagree with recount (nodes ",
                       stats_.numNodes, "/", nodes_.size(), ", classes ",
                       stats_.numClasses, "/", classNodes_.size(),
                       ", edges ", stats_.numEdges, "/", edges, ", leaves ",
                       stats_.numLeaves, "/", leaves, ")");

    return std::nullopt;
}

const std::vector<NodeId>&
EGraph::parents(ClassId cls) const
{
    requireFinalized();
    return classParents_[cls];
}

const EGraphStats&
EGraph::stats() const
{
    requireFinalized();
    return stats_;
}

void
EGraph::requireFinalized() const
{
    if (!finalized_)
        throw std::logic_error("EGraph used before finalize()");
}

std::vector<std::vector<ClassId>>
EGraph::classSccs() const
{
    requireFinalized();
    const std::size_t m = numClasses();

    // Build the class dependency adjacency (deduplicated per class).
    std::vector<std::vector<ClassId>> adj(m);
    for (std::size_t j = 0; j < m; ++j) {
        std::vector<ClassId> out;
        for (NodeId nid : classNodes_[j]) {
            for (ClassId child : nodes_[nid].children)
                out.push_back(child);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        adj[j] = std::move(out);
    }

    // Iterative Tarjan SCC.
    constexpr std::uint32_t unvisited = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> index(m, unvisited);
    std::vector<std::uint32_t> lowlink(m, 0);
    std::vector<bool> onStack(m, false);
    std::vector<ClassId> stack;
    std::vector<std::vector<ClassId>> sccs;
    std::uint32_t counter = 0;

    struct Frame
    {
        ClassId v;
        std::size_t childIdx;
    };
    std::vector<Frame> callStack;

    for (ClassId start = 0; start < m; ++start) {
        if (index[start] != unvisited)
            continue;
        callStack.push_back({start, 0});
        while (!callStack.empty()) {
            Frame& frame = callStack.back();
            const ClassId v = frame.v;
            if (frame.childIdx == 0) {
                index[v] = lowlink[v] = counter++;
                stack.push_back(v);
                onStack[v] = true;
            }
            bool descended = false;
            while (frame.childIdx < adj[v].size()) {
                const ClassId w = adj[v][frame.childIdx++];
                if (index[w] == unvisited) {
                    callStack.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    lowlink[v] = std::min(lowlink[v], index[w]);
            }
            if (descended)
                continue;
            if (lowlink[v] == index[v]) {
                std::vector<ClassId> component;
                while (true) {
                    const ClassId w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    component.push_back(w);
                    if (w == v)
                        break;
                }
                sccs.push_back(std::move(component));
            }
            callStack.pop_back();
            if (!callStack.empty()) {
                Frame& parent = callStack.back();
                lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
            }
        }
    }
    return sccs;
}

bool
EGraph::dependencyGraphIsAcyclic() const
{
    requireFinalized();
    // A class-level self edge (node whose child is its own class) is a
    // 1-cycle; otherwise any SCC with more than one member is a cycle.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (ClassId child : nodes_[i].children) {
            if (child == nodeClass_[i])
                return false;
        }
    }
    for (const auto& scc : classSccs()) {
        if (scc.size() > 1)
            return false;
    }
    return true;
}

std::vector<ClassId>
EGraph::reachableClasses() const
{
    requireFinalized();
    std::vector<bool> seen(numClasses(), false);
    std::vector<ClassId> order;
    std::vector<ClassId> worklist{root_};
    seen[root_] = true;
    while (!worklist.empty()) {
        const ClassId cls = worklist.back();
        worklist.pop_back();
        order.push_back(cls);
        for (NodeId nid : classNodes_[cls]) {
            for (ClassId child : nodes_[nid].children) {
                if (!seen[child]) {
                    seen[child] = true;
                    worklist.push_back(child);
                }
            }
        }
    }
    return order;
}

EGraph
EGraph::pruned() const
{
    requireFinalized();

    // Pass 1: find satisfiable nodes/classes bottom-up. A node is live when
    // every child class has at least one live node; a class is live when it
    // has a live node. Fixed-point iteration (cycles cannot become live
    // through themselves alone, matching extractor feasibility).
    const std::size_t n = numNodes();
    const std::size_t m = numClasses();
    std::vector<bool> nodeLive(n, false);
    std::vector<bool> classLive(m, false);
    std::vector<std::size_t> pendingChildren(n, 0);

    std::vector<NodeId> queue;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<ClassId> distinct = nodes_[i].children;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        pendingChildren[i] = distinct.size();
        if (distinct.empty())
            queue.push_back(static_cast<NodeId>(i));
    }
    while (!queue.empty()) {
        const NodeId nid = queue.back();
        queue.pop_back();
        if (nodeLive[nid])
            continue;
        nodeLive[nid] = true;
        const ClassId cls = nodeClass_[nid];
        if (classLive[cls])
            continue;
        classLive[cls] = true;
        // Class became live: decrement pending count of parents that wait
        // on it.
        for (NodeId parent : classParents_[cls]) {
            if (nodeLive[parent])
                continue;
            if (--pendingChildren[parent] == 0)
                queue.push_back(parent);
        }
    }

    // Pass 2: keep classes reachable from the root through live nodes.
    std::vector<bool> keepClass(m, false);
    if (root_ < m && classLive[root_]) {
        std::vector<ClassId> stack{root_};
        keepClass[root_] = true;
        while (!stack.empty()) {
            const ClassId cls = stack.back();
            stack.pop_back();
            for (NodeId nid : classNodes_[cls]) {
                if (!nodeLive[nid])
                    continue;
                for (ClassId child : nodes_[nid].children) {
                    if (!keepClass[child] && classLive[child]) {
                        keepClass[child] = true;
                        stack.push_back(child);
                    }
                }
            }
        }
    }

    EGraph out;
    std::vector<ClassId> remap(m, kNoClass);
    for (std::size_t j = 0; j < m; ++j) {
        if (keepClass[j])
            remap[j] = out.addClass();
    }
    for (std::size_t j = 0; j < m; ++j) {
        if (!keepClass[j])
            continue;
        for (NodeId nid : classNodes_[j]) {
            if (!nodeLive[nid])
                continue;
            // Drop nodes referencing pruned child classes.
            bool ok = true;
            std::vector<ClassId> children;
            children.reserve(nodes_[nid].children.size());
            for (ClassId child : nodes_[nid].children) {
                if (remap[child] == kNoClass) {
                    ok = false;
                    break;
                }
                children.push_back(remap[child]);
            }
            if (ok)
                out.addNode(remap[j], nodes_[nid].op, std::move(children),
                            nodes_[nid].cost);
        }
    }
    if (root_ < m && remap[root_] != kNoClass)
        out.setRoot(remap[root_]);
    else if (out.numClasses() > 0)
        out.setRoot(0);
    else {
        // Degenerate: no feasible extraction; return a single-class stub so
        // finalize() still succeeds and extractors can report infeasible.
        const ClassId cls = out.addClass();
        out.addNode(cls, "<infeasible>", {}, 0.0);
        out.setRoot(cls);
    }
    const auto err = out.finalize();
    SMOOTHE_ASSERT(!err.has_value(), "pruned e-graph failed finalize: %s",
                   err ? err->c_str() : "");
    return out;
}

} // namespace smoothe::eg
