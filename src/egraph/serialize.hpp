/**
 * @file
 * JSON (de)serialization for e-graphs.
 *
 * The on-disk format is compatible with the extraction-gym corpus
 * (https://github.com/egraphs-good/extraction-gym):
 *
 * @code{.json}
 * {
 *   "nodes": {
 *     "node-id": {
 *       "op": "+",
 *       "children": ["other-node-id", ...],
 *       "eclass": "class-id",
 *       "cost": 2.0
 *     }, ...
 *   },
 *   "root_eclasses": ["class-id"]
 * }
 * @endcode
 *
 * Children reference *node* ids; the child e-class is the e-class of the
 * referenced node (any member works since they are equivalent).
 */

#ifndef SMOOTHE_EGRAPH_SERIALIZE_HPP
#define SMOOTHE_EGRAPH_SERIALIZE_HPP

#include <optional>
#include <string>

#include "egraph/egraph.hpp"

namespace smoothe::eg {

/** Serializes a finalized e-graph into the extraction-gym JSON format. */
std::string toJson(const EGraph& graph, bool pretty = false);

/**
 * Parses an e-graph from extraction-gym JSON.
 * @param text the JSON document
 * @param error receives a message on failure (may be null)
 * @return a finalized e-graph, or std::nullopt on malformed input
 */
std::optional<EGraph> fromJson(const std::string& text,
                               std::string* error = nullptr);

/** Loads an e-graph from a JSON file. */
std::optional<EGraph> loadFromFile(const std::string& path,
                                   std::string* error = nullptr);

/** Saves an e-graph to a JSON file. Returns false on I/O error. */
bool saveToFile(const EGraph& graph, const std::string& path);

} // namespace smoothe::eg

#endif // SMOOTHE_EGRAPH_SERIALIZE_HPP
