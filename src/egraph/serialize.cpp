#include "egraph/serialize.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "check/contracts.hpp"
#include "util/json.hpp"

namespace smoothe::eg {

using util::Json;

std::string
toJson(const EGraph& graph, bool pretty)
{
    Json nodes = Json::makeObject();
    // Use one representative node id per class so children can reference
    // node ids as the gym format requires.
    std::vector<NodeId> representative(graph.numClasses(), kNoNode);
    for (ClassId cls = 0; cls < graph.numClasses(); ++cls)
        representative[cls] = graph.nodesInClass(cls).front();

    for (NodeId nid = 0; nid < graph.numNodes(); ++nid) {
        const ENode& node = graph.node(nid);
        Json entry = Json::makeObject();
        entry.set("op", node.op);
        Json children = Json::makeArray();
        for (ClassId child : node.children)
            children.push(std::to_string(representative[child]));
        entry.set("children", std::move(children));
        entry.set("eclass", std::to_string(graph.classOf(nid)));
        entry.set("cost", node.cost);
        nodes.set(std::to_string(nid), std::move(entry));
    }

    Json roots = Json::makeArray();
    roots.push(std::to_string(graph.root()));

    Json doc = Json::makeObject();
    doc.set("nodes", std::move(nodes));
    doc.set("root_eclasses", std::move(roots));
    return pretty ? doc.dumpPretty() : doc.dump();
}

namespace {

void
setError(std::string* error, const std::string& message)
{
    if (error && error->empty())
        *error = message;
}

} // namespace

std::optional<EGraph>
fromJson(const std::string& text, std::string* error)
{
    if (error)
        error->clear();
    auto doc = Json::parse(text, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        setError(error, "top-level JSON value must be an object");
        return std::nullopt;
    }
    const Json* nodes = doc->find("nodes");
    if (!nodes || !nodes->isObject()) {
        setError(error, "missing \"nodes\" object");
        return std::nullopt;
    }
    if (nodes->asObject().empty()) {
        setError(error, "e-graph has no nodes");
        return std::nullopt;
    }

    // First pass: assign dense class ids and map node-id -> class-id.
    std::map<std::string, ClassId> classIds;
    std::map<std::string, std::string> nodeToClass;
    EGraph graph;
    for (const auto& [nodeKey, entry] : nodes->asObject()) {
        if (!entry.isObject()) {
            setError(error, "node entry must be an object");
            return std::nullopt;
        }
        const Json* eclass = entry.find("eclass");
        if (!eclass || !eclass->isString()) {
            setError(error, "node \"" + nodeKey + "\" missing eclass");
            return std::nullopt;
        }
        const std::string& classKey = eclass->asString();
        if (!classIds.count(classKey))
            classIds[classKey] = graph.addClass();
        nodeToClass[nodeKey] = classKey;
    }

    // Second pass: add nodes, resolving children node-ids to class ids.
    for (const auto& [nodeKey, entry] : nodes->asObject()) {
        const Json* op = entry.find("op");
        const Json* children = entry.find("children");
        const Json* cost = entry.find("cost");
        ENode node;
        node.op = (op && op->isString()) ? op->asString() : "?";
        node.cost = (cost && cost->isNumber()) ? cost->asNumber() : 1.0;
        if (cost && !cost->isNumber()) {
            setError(error,
                     "node \"" + nodeKey + "\" cost must be a number");
            return std::nullopt;
        }
        if (!std::isfinite(node.cost)) {
            setError(error, "node \"" + nodeKey + "\" cost is not finite");
            return std::nullopt;
        }
        if (children) {
            if (!children->isArray()) {
                setError(error, "children must be an array");
                return std::nullopt;
            }
            for (const Json& childRef : children->asArray()) {
                if (!childRef.isString()) {
                    setError(error, "child reference must be a string");
                    return std::nullopt;
                }
                const auto it = nodeToClass.find(childRef.asString());
                if (it == nodeToClass.end()) {
                    setError(error, "child node \"" + childRef.asString() +
                                        "\" not found");
                    return std::nullopt;
                }
                node.children.push_back(classIds[it->second]);
            }
        }
        graph.addNode(classIds[nodeToClass[nodeKey]], std::move(node));
    }

    // Root.
    const Json* roots = doc->find("root_eclasses");
    if (!roots || !roots->isArray() || roots->asArray().empty()) {
        setError(error, "missing \"root_eclasses\"");
        return std::nullopt;
    }
    const Json& rootRef = roots->asArray().front();
    if (!rootRef.isString()) {
        setError(error, "root e-class reference must be a string");
        return std::nullopt;
    }
    std::string rootKey = rootRef.asString();
    // The gym stores either a class id or a node id here; accept both.
    if (classIds.count(rootKey)) {
        graph.setRoot(classIds[rootKey]);
    } else if (nodeToClass.count(rootKey)) {
        graph.setRoot(classIds[nodeToClass[rootKey]]);
    } else {
        setError(error, "root \"" + rootKey + "\" not found");
        return std::nullopt;
    }

    if (auto err = graph.finalize()) {
        setError(error, *err);
        return std::nullopt;
    }
    SMOOTHE_DCHECK_OK(graph.checkInvariants());
    return graph;
}

std::optional<EGraph>
loadFromFile(const std::string& path, std::string* error)
{
    auto text = util::readFile(path);
    if (!text) {
        setError(error, "cannot read file: " + path);
        return std::nullopt;
    }
    return fromJson(*text, error);
}

bool
saveToFile(const EGraph& graph, const std::string& path)
{
    return util::writeFile(path, toJson(graph, /*pretty=*/true));
}

} // namespace smoothe::eg
