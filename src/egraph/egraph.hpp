/**
 * @file
 * The e-graph data structure used throughout the project.
 *
 * This is the *extraction-oriented* view of an e-graph: a fixed set of
 * e-classes, each containing e-nodes; every e-node has an operator symbol,
 * an ordered list of child e-classes, and a per-node cost used by the
 * linear cost model. The equality-saturation engine (smoothe::eqsat) grows
 * e-graphs with a union-find/hashcons representation and exports into this
 * form; dataset generators and the JSON loader build it directly.
 *
 * Terminology follows the paper (Section 2): N e-nodes n_i, M e-classes
 * m_j, ch_i = child e-classes of e-node i, pa_j = parent e-nodes of
 * e-class j, ec(i) = the e-class containing e-node i.
 */

#ifndef SMOOTHE_EGRAPH_EGRAPH_HPP
#define SMOOTHE_EGRAPH_EGRAPH_HPP

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace smoothe::eg {

/** Index of an e-node within an EGraph. */
using NodeId = std::uint32_t;
/** Index of an e-class within an EGraph. */
using ClassId = std::uint32_t;

/** Sentinel for "no e-node". */
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
/** Sentinel for "no e-class". */
constexpr ClassId kNoClass = std::numeric_limits<ClassId>::max();

/** An operator (or value) node inside an e-class. */
struct ENode
{
    /** Operator symbol, e.g. "+", "mul", "conv2d". */
    std::string op;
    /** Ordered child e-classes (operands). Empty for leaves. */
    std::vector<ClassId> children;
    /** Per-node cost consumed by the linear cost model. */
    double cost = 1.0;
};

/** Summary statistics matching the columns of Table 1 in the paper. */
struct EGraphStats
{
    std::size_t numNodes = 0;     ///< N
    std::size_t numClasses = 0;   ///< M
    std::size_t numEdges = 0;     ///< total child edges
    double avgDegree = 0.0;       ///< d(v): average e-node out-degree
    double density = 0.0;         ///< numEdges / (N * M)
    std::size_t maxClassSize = 0; ///< largest e-class cardinality
    std::size_t numLeaves = 0;    ///< e-nodes without children
};

/**
 * An immutable-after-finalize e-graph.
 *
 * Build protocol: addClass() / addNode() / setRoot(), then finalize().
 * finalize() validates all child references, builds the parent index, and
 * computes statistics. Queries that need the parent index assert that
 * finalize() has been called.
 */
class EGraph
{
  public:
    EGraph() = default;

    /** Adds an empty e-class and returns its id. */
    ClassId addClass();

    /**
     * Adds an e-node to the given e-class.
     * Child classes may be forward references (added later), as long as
     * they exist by the time finalize() runs.
     */
    NodeId addNode(ClassId cls, ENode node);

    /** Convenience: adds an e-node from parts. */
    NodeId addNode(ClassId cls, std::string op,
                   std::vector<ClassId> children, double cost = 1.0);

    /** Declares the root e-class (containing the top-level operator). */
    void setRoot(ClassId root) { root_ = root; }

    /**
     * Validates the structure and builds derived indices.
     * @return std::nullopt on success, else a human-readable error.
     */
    std::optional<std::string> finalize();

    /**
     * Deep structural validator (see DESIGN.md "Correctness tooling"):
     * re-derives every index and statistic from the primary node storage
     * and cross-checks — node/class membership is bijective, children and
     * root are in range, the parent index matches a recomputation, stats
     * match a recount, and every cost is finite. O(N + E).
     * @return std::nullopt when healthy, else the first problem found.
     */
    std::optional<std::string> checkInvariants() const;

    /** True once finalize() has succeeded. */
    bool finalized() const { return finalized_; }

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numClasses() const { return classNodes_.size(); }
    ClassId root() const { return root_; }

    /** The e-node with the given id. */
    const ENode& node(NodeId id) const { return nodes_[id]; }

    /** Mutable access to per-node cost (used when re-costing datasets). */
    void setNodeCost(NodeId id, double cost) { nodes_[id].cost = cost; }

    /** ec(i): the e-class containing e-node id. */
    ClassId classOf(NodeId id) const { return nodeClass_[id]; }

    /** The e-nodes inside e-class cls. */
    const std::vector<NodeId>&
    nodesInClass(ClassId cls) const
    {
        return classNodes_[cls];
    }

    /** pa_j: e-nodes that have e-class cls as a child (needs finalize). */
    const std::vector<NodeId>& parents(ClassId cls) const;

    /** Statistics for Table 1 (needs finalize). */
    const EGraphStats& stats() const;

    /**
     * Strongly connected components of the class dependency graph
     * (edge j -> k iff some e-node in class j has child class k).
     * Components are returned in reverse topological order of the
     * condensation. Needs finalize.
     */
    std::vector<std::vector<ClassId>> classSccs() const;

    /**
     * True when the class dependency graph restricted to classes reachable
     * from the root is acyclic (ignoring self-contained alternative
     * choices; this is a structural property of the whole e-graph, not of
     * a particular extraction).
     */
    bool dependencyGraphIsAcyclic() const;

    /**
     * Classes reachable from the root through any e-node choice.
     * Needs finalize.
     */
    std::vector<ClassId> reachableClasses() const;

    /**
     * Removes classes (and their nodes) not reachable from the root and
     * nodes whose children can never be satisfied (dead nodes). Returns a
     * new finalized e-graph. Mirrors the pruning every practical extractor
     * performs before optimization.
     */
    EGraph pruned() const;

  private:
    void requireFinalized() const;

    /** Test-only backdoor used to corrupt state and prove the validator
     *  catches it (tests/test_check.cpp). */
    friend struct EGraphTestPeer;

    std::vector<ENode> nodes_;
    std::vector<ClassId> nodeClass_;            // node id -> class id
    std::vector<std::vector<NodeId>> classNodes_; // class id -> node ids
    std::vector<std::vector<NodeId>> classParents_; // class id -> parent nodes
    ClassId root_ = kNoClass;
    bool finalized_ = false;
    EGraphStats stats_;
};

} // namespace smoothe::eg

#endif // SMOOTHE_EGRAPH_EGRAPH_HPP
