#include "egraph/delta.hpp"

#include <algorithm>
#include <sstream>

namespace smoothe::eg {

bool
GraphDelta::isIdentity() const
{
    if (!dirtyClasses.empty())
        return false;
    if (nodeForward.size() != prevNumNodes ||
        classForward.size() != prevNumClasses)
        return false;
    for (NodeId n = 0; n < nodeForward.size(); ++n) {
        if (nodeForward[n] != n)
            return false;
    }
    for (ClassId c = 0; c < classForward.size(); ++c) {
        if (classForward[c] != c)
            return false;
    }
    return prevNode.size() == prevNumNodes &&
           prevClasses.size() == prevNumClasses;
}

GraphDelta
GraphDelta::identity(const EGraph& graph)
{
    GraphDelta delta;
    delta.prevNumNodes = graph.numNodes();
    delta.prevNumClasses = graph.numClasses();
    delta.nodeForward.resize(delta.prevNumNodes);
    for (NodeId n = 0; n < delta.prevNumNodes; ++n)
        delta.nodeForward[n] = n;
    delta.classForward.resize(delta.prevNumClasses);
    for (ClassId c = 0; c < delta.prevNumClasses; ++c)
        delta.classForward[c] = c;
    delta.deriveReverseMaps(delta.prevNumNodes, delta.prevNumClasses);
    return delta;
}

void
GraphDelta::deriveReverseMaps(std::size_t next_nodes,
                              std::size_t next_classes)
{
    prevNode.assign(next_nodes, kNoNode);
    for (NodeId p = 0; p < nodeForward.size(); ++p) {
        const NodeId n = nodeForward[p];
        if (prevNode[n] == kNoNode)
            prevNode[n] = p;
    }
    prevClasses.assign(next_classes, {});
    for (ClassId p = 0; p < classForward.size(); ++p)
        prevClasses[classForward[p]].push_back(p);
}

std::optional<std::string>
GraphDelta::checkConsistent(const EGraph& next) const
{
    const auto problem = [](auto&&... parts) {
        std::ostringstream oss;
        (oss << ... << parts);
        return std::optional<std::string>(oss.str());
    };

    if (nodeForward.size() != prevNumNodes)
        return problem("nodeForward has ", nodeForward.size(),
                       " entries for ", prevNumNodes, " prev nodes");
    if (classForward.size() != prevNumClasses)
        return problem("classForward has ", classForward.size(),
                       " entries for ", prevNumClasses, " prev classes");
    if (prevNode.size() != next.numNodes())
        return problem("prevNode has ", prevNode.size(), " entries for ",
                       next.numNodes(), " next nodes");
    if (prevClasses.size() != next.numClasses())
        return problem("prevClasses has ", prevClasses.size(),
                       " entries for ", next.numClasses(), " next classes");

    for (NodeId p = 0; p < prevNumNodes; ++p) {
        if (nodeForward[p] >= next.numNodes())
            return problem("nodeForward[", p, "] = ", nodeForward[p],
                           " is out of range");
    }
    for (ClassId p = 0; p < prevNumClasses; ++p) {
        if (classForward[p] >= next.numClasses())
            return problem("classForward[", p, "] = ", classForward[p],
                           " is out of range");
    }
    for (NodeId n = 0; n < prevNode.size(); ++n) {
        if (prevNode[n] == kNoNode)
            continue;
        if (prevNode[n] >= prevNumNodes)
            return problem("prevNode[", n, "] = ", prevNode[n],
                           " is out of range");
        if (nodeForward[prevNode[n]] != n)
            return problem("prevNode[", n, "] = ", prevNode[n],
                           " but nodeForward maps it to ",
                           nodeForward[prevNode[n]]);
    }
    std::vector<char> seen(prevNumClasses, 0);
    for (ClassId c = 0; c < prevClasses.size(); ++c) {
        for (ClassId p : prevClasses[c]) {
            if (p >= prevNumClasses)
                return problem("prevClasses[", c, "] holds out-of-range ",
                               p);
            if (classForward[p] != c)
                return problem("prevClasses[", c, "] holds ", p,
                               " but classForward maps it to ",
                               classForward[p]);
            if (seen[p])
                return problem("prev class ", p,
                               " appears under two next classes");
            seen[p] = 1;
        }
    }

    if (!std::is_sorted(dirtyClasses.begin(), dirtyClasses.end()))
        return problem("dirtyClasses is not sorted");
    std::vector<char> dirty(next.numClasses(), 0);
    for (std::size_t i = 0; i < dirtyClasses.size(); ++i) {
        const ClassId c = dirtyClasses[i];
        if (c >= next.numClasses())
            return problem("dirty class ", c, " is out of range");
        if (dirty[c])
            return problem("dirty class ", c, " is listed twice");
        dirty[c] = 1;
    }
    for (ClassId c = 0; c < next.numClasses(); ++c) {
        if (prevClasses[c].size() != 1 && !dirty[c])
            return problem("class ", c, " was created or merged (",
                           prevClasses[c].size(),
                           " preimages) but is not marked dirty");
    }
    for (NodeId n = 0; n < next.numNodes(); ++n) {
        if (prevNode[n] == kNoNode && !dirty[next.classOf(n)])
            return problem("new node ", n, " joined class ",
                           next.classOf(n),
                           " which is not marked dirty");
    }
    return std::nullopt;
}

} // namespace smoothe::eg
