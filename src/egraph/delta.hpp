/**
 * @file
 * Structural delta between two consecutive exported e-graphs.
 *
 * An equality-saturation loop only ever grows the e-graph: nodes are
 * added and classes are merged, never removed. A GraphDelta captures the
 * resulting mapping between the previous export and the next one so that
 * consumers (the incremental extractors, SmoothE's warm start, the
 * compiled-Program patcher) can carry state forward instead of
 * recomputing from scratch. Produced by
 * eqsat::MutEGraph::exportIncremental, which owns the ground-truth
 * identity of every node and class across epochs.
 */

#ifndef SMOOTHE_EGRAPH_DELTA_HPP
#define SMOOTHE_EGRAPH_DELTA_HPP

#include <optional>
#include <string>
#include <vector>

#include "egraph/egraph.hpp"

namespace smoothe::eg {

/**
 * Mapping between a previous export ("prev") and the next one ("next").
 *
 * Because saturation is grow-only, every prev node and class survives
 * into the next export: `nodeForward` and `classForward` are total maps.
 * The reverse maps are partial — genuinely new nodes and classes have no
 * preimage — and when congruence collapses several prev nodes into one,
 * `prevNode` records the smallest preimage.
 */
struct GraphDelta
{
    std::size_t prevNumNodes = 0;
    std::size_t prevNumClasses = 0;

    /** prev node -> the next node holding the same canonical e-node. */
    std::vector<NodeId> nodeForward;
    /** prev class -> the next class it survived (or merged) into. */
    std::vector<ClassId> classForward;

    /** next node -> smallest prev preimage, or kNoNode if new. */
    std::vector<NodeId> prevNode;
    /** next class -> its prev preimages (empty = created this epoch,
     *  more than one = classes merged this epoch). */
    std::vector<std::vector<ClassId>> prevClasses;

    /**
     * Next classes whose membership changed: created, merged, or with a
     * node set that differs from the single prev preimage. Sorted
     * ascending. Parents of these classes are exactly where incremental
     * cost relaxation must restart.
     */
    std::vector<ClassId> dirtyClasses;

    /** True when nothing changed (every map is the identity). */
    bool isIdentity() const;

    /** The no-op delta for re-extracting an unchanged graph. */
    static GraphDelta identity(const EGraph& graph);

    /** Fills prevNode/prevClasses from the forward maps. */
    void deriveReverseMaps(std::size_t next_nodes, std::size_t next_classes);

    /**
     * Deep validator against the next graph: map sizes and ranges, the
     * forward/reverse maps agree, and every created/merged/new-member
     * class is listed dirty. @return std::nullopt when consistent.
     */
    std::optional<std::string> checkConsistent(const EGraph& next) const;
};

} // namespace smoothe::eg

#endif // SMOOTHE_EGRAPH_DELTA_HPP
