/**
 * @file
 * LP simplex and branch-and-bound ILP extraction tests, including
 * agreement with brute force on small graphs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "datasets/generators.hpp"
#include "datasets/nphard.hpp"
#include "extraction/random_sample.hpp"
#include "ilp/ilp_extractor.hpp"
#include "extraction/validate.hpp"
#include "ilp/lp.hpp"

namespace eg = smoothe::eg;
namespace ex = smoothe::extract;
namespace il = smoothe::ilp;
namespace ds = smoothe::datasets;

namespace {

/** Full certification: structure, status, and the reported-cost check. */
void
expectCertified(const eg::EGraph& g, const ex::ExtractionResult& result)
{
    const auto verdict = ex::validateResult(g, result);
    EXPECT_TRUE(verdict.ok()) << verdict.message;
}

} // namespace

TEST(Simplex, SolvesBasicLp)
{
    // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  -> x=2? No:
    // optimum at (2, 2): obj = -6? x+y<=4, y<=2 -> best y=2, x=2: -6.
    il::LinearProgram lp;
    const auto x = lp.addVariable(-1.0, 3.0);
    const auto y = lp.addVariable(-2.0, 2.0);
    il::Constraint c;
    c.terms = {{x, 1.0}, {y, 1.0}};
    c.sense = il::Sense::LessEqual;
    c.rhs = 4.0;
    lp.addConstraint(std::move(c));

    const auto result = il::solveSimplex(lp);
    ASSERT_EQ(result.status, il::LpStatus::Optimal);
    EXPECT_NEAR(result.objective, -6.0, 1e-7);
    EXPECT_NEAR(result.values[x], 2.0, 1e-7);
    EXPECT_NEAR(result.values[y], 2.0, 1e-7);
}

TEST(Simplex, EqualityAndGreaterConstraints)
{
    // min x + y s.t. x + y >= 3, x - y = 1  ->  x=2, y=1.
    il::LinearProgram lp;
    const auto x = lp.addVariable(1.0);
    const auto y = lp.addVariable(1.0);
    il::Constraint ge;
    ge.terms = {{x, 1.0}, {y, 1.0}};
    ge.sense = il::Sense::GreaterEqual;
    ge.rhs = 3.0;
    lp.addConstraint(std::move(ge));
    il::Constraint eq;
    eq.terms = {{x, 1.0}, {y, -1.0}};
    eq.sense = il::Sense::Equal;
    eq.rhs = 1.0;
    lp.addConstraint(std::move(eq));

    const auto result = il::solveSimplex(lp);
    ASSERT_EQ(result.status, il::LpStatus::Optimal);
    EXPECT_NEAR(result.objective, 3.0, 1e-7);
    EXPECT_NEAR(result.values[x], 2.0, 1e-7);
    EXPECT_NEAR(result.values[y], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible)
{
    il::LinearProgram lp;
    const auto x = lp.addVariable(1.0, 1.0);
    il::Constraint c;
    c.terms = {{x, 1.0}};
    c.sense = il::Sense::GreaterEqual;
    c.rhs = 5.0;
    lp.addConstraint(std::move(c));
    EXPECT_EQ(il::solveSimplex(lp).status, il::LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded)
{
    il::LinearProgram lp;
    lp.addVariable(-1.0); // min -x, x >= 0, no upper bound
    EXPECT_EQ(il::solveSimplex(lp).status, il::LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization)
{
    // min x s.t. -x <= -2  (i.e. x >= 2).
    il::LinearProgram lp;
    const auto x = lp.addVariable(1.0);
    il::Constraint c;
    c.terms = {{x, -1.0}};
    c.sense = il::Sense::LessEqual;
    c.rhs = -2.0;
    lp.addConstraint(std::move(c));
    const auto result = il::solveSimplex(lp);
    ASSERT_EQ(result.status, il::LpStatus::Optimal);
    EXPECT_NEAR(result.values[x], 2.0, 1e-7);
}

TEST(Simplex, MatchesVertexEnumerationOnRandomLps)
{
    // Property: on random bounded 2-variable LPs, the simplex optimum
    // equals the best vertex of the feasible polygon (vertices =
    // pairwise constraint/bound intersections).
    smoothe::util::Rng rng(2024);
    int solved = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const double ub0 = rng.uniform(0.5, 4.0);
        const double ub1 = rng.uniform(0.5, 4.0);
        const double c0 = rng.uniform(-3.0, 3.0);
        const double c1 = rng.uniform(-3.0, 3.0);

        il::LinearProgram lp;
        lp.addVariable(c0, ub0);
        lp.addVariable(c1, ub1);
        struct Row
        {
            double a0, a1, rhs;
        };
        std::vector<Row> rows;
        const int numRows = 1 + static_cast<int>(rng.uniformIndex(3));
        for (int r = 0; r < numRows; ++r) {
            Row row{rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0),
                    rng.uniform(0.5, 4.0)};
            rows.push_back(row);
            il::Constraint constraint;
            constraint.terms = {{0, row.a0}, {1, row.a1}};
            constraint.sense = il::Sense::LessEqual;
            constraint.rhs = row.rhs;
            lp.addConstraint(std::move(constraint));
        }

        // Vertex enumeration: all intersections of the boundary lines
        // a0 x + a1 y = rhs, x in {0, ub0}, y in {0, ub1}.
        struct Line
        {
            double a0, a1, rhs;
        };
        std::vector<Line> lines;
        for (const Row& row : rows)
            lines.push_back({row.a0, row.a1, row.rhs});
        lines.push_back({1.0, 0.0, 0.0});
        lines.push_back({1.0, 0.0, ub0});
        lines.push_back({0.0, 1.0, 0.0});
        lines.push_back({0.0, 1.0, ub1});

        auto feasible = [&](double x, double y) {
            if (x < -1e-7 || y < -1e-7 || x > ub0 + 1e-7 || y > ub1 + 1e-7)
                return false;
            for (const Row& row : rows) {
                if (row.a0 * x + row.a1 * y > row.rhs + 1e-7)
                    return false;
            }
            return true;
        };

        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < lines.size(); ++i) {
            for (std::size_t j = i + 1; j < lines.size(); ++j) {
                const double det = lines[i].a0 * lines[j].a1 -
                                   lines[j].a0 * lines[i].a1;
                if (std::fabs(det) < 1e-9)
                    continue;
                const double x = (lines[i].rhs * lines[j].a1 -
                                  lines[j].rhs * lines[i].a1) /
                                 det;
                const double y = (lines[i].a0 * lines[j].rhs -
                                  lines[j].a0 * lines[i].rhs) /
                                 det;
                if (feasible(x, y))
                    best = std::min(best, c0 * x + c1 * y);
            }
        }

        const auto result = il::solveSimplex(lp);
        if (best == std::numeric_limits<double>::infinity()) {
            EXPECT_EQ(result.status, il::LpStatus::Infeasible)
                << "trial " << trial;
            continue;
        }
        ASSERT_EQ(result.status, il::LpStatus::Optimal) << "trial " << trial;
        EXPECT_NEAR(result.objective, best, 1e-6) << "trial " << trial;
        ++solved;
    }
    EXPECT_GE(solved, 20); // most random instances are feasible
}

TEST(ExtractionLp, RelaxationLowerBoundsOptimum)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    const il::LinearProgram lp = il::buildExtractionLp(g);
    const auto result = il::solveSimplex(lp);
    ASSERT_EQ(result.status, il::LpStatus::Optimal);
    EXPECT_LE(result.objective, 19.0 + 1e-6);
    EXPECT_GT(result.objective, 0.0);
}

TEST(Ilp, OptimalOnPaperGraph)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    for (const il::IlpPreset preset :
         {il::IlpPreset::Strong, il::IlpPreset::Medium,
          il::IlpPreset::Weak}) {
        il::IlpExtractor extractor(preset);
        const auto result = extractor.extract(g, {});
        ASSERT_EQ(result.status, ex::SolveStatus::Optimal)
            << il::presetName(preset);
        EXPECT_DOUBLE_EQ(result.cost, 19.0) << il::presetName(preset);
        expectCertified(g, result);
    }
}

TEST(Ilp, BeatsHeuristicExactlyOnSharedSubexpressions)
{
    // ILP finds 19 where the tree heuristic stops at 27 — the Figure 2
    // story.
    const eg::EGraph g = ds::paperExampleEGraph();
    il::IlpExtractor ilp(il::IlpPreset::Strong);
    const auto result = ilp.extract(g, {});
    EXPECT_DOUBLE_EQ(result.cost, 19.0);
}

TEST(Ilp, HandlesCyclesCorrectly)
{
    // Choosing the cycle would be free but invalid; ILP must pay for the
    // escape node.
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 0.0);
    g.addNode(a, "fab", {b}, 0.0);
    g.addNode(a, "leafA", {}, 7.0);
    g.addNode(b, "gba", {a}, 0.0);
    g.addNode(b, "leafB", {}, 3.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    il::IlpExtractor extractor(il::IlpPreset::Strong);
    const auto result = extractor.extract(g, {});
    ASSERT_EQ(result.status, ex::SolveStatus::Optimal);
    // Optimal: a -> fab, b -> leafB: cost 3 (no cycle).
    EXPECT_DOUBLE_EQ(result.cost, 3.0);
    expectCertified(g, result);
}

TEST(Ilp, InfeasibleGraph)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "self", {root}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    const auto result = extractor.extract(g, {});
    EXPECT_EQ(result.status, ex::SolveStatus::Infeasible);
    expectCertified(g, result); // infeasible must not smuggle a solution
}

TEST(Ilp, MatchesBruteForceOnRandomSmallGraphs)
{
    // Exhaustive check: enumerate all selections on tiny random graphs
    // and compare with the BnB optimum.
    smoothe::util::Rng rng(123);
    for (int trial = 0; trial < 8; ++trial) {
        ds::FamilyParams params = ds::flexcParams();
        params.numClasses = 8;
        params.nodesPerClass = 2.0;
        params.cycleFraction = trial % 2 ? 0.1 : 0.0;
        const eg::EGraph g = ds::generateStructured(params, rng.next());

        // Brute force over per-class choices (product of class sizes).
        std::size_t combos = 1;
        bool tooBig = false;
        for (eg::ClassId cls = 0; cls < g.numClasses(); ++cls) {
            combos *= g.nodesInClass(cls).size();
            if (combos > 200000) {
                tooBig = true;
                break;
            }
        }
        if (tooBig)
            continue;

        double best = std::numeric_limits<double>::infinity();
        std::vector<std::size_t> pick(g.numClasses(), 0);
        while (true) {
            ex::Selection sel = ex::Selection::empty(g);
            for (eg::ClassId cls = 0; cls < g.numClasses(); ++cls)
                sel.choice[cls] = g.nodesInClass(cls)[pick[cls]];
            // Restrict to needed classes to satisfy the validator.
            const auto needed = ex::neededClasses(g, sel);
            if (needed) {
                ex::Selection trimmed = ex::Selection::empty(g);
                for (eg::ClassId cls : *needed)
                    trimmed.choice[cls] = sel.choice[cls];
                if (ex::validate(g, trimmed).ok())
                    best = std::min(best, ex::dagCost(g, trimmed));
            }
            // Increment the mixed-radix counter.
            std::size_t idx = 0;
            while (idx < g.numClasses()) {
                if (++pick[idx] < g.nodesInClass(idx).size())
                    break;
                pick[idx] = 0;
                ++idx;
            }
            if (idx == g.numClasses())
                break;
        }

        il::IlpExtractor extractor(il::IlpPreset::Strong);
        const auto result = extractor.extract(g, {});
        ASSERT_EQ(result.status, ex::SolveStatus::Optimal);
        EXPECT_NEAR(result.cost, best, 1e-9) << "trial " << trial;
    }
}

TEST(Ilp, SetCoverReductionMatchesBruteForce)
{
    smoothe::util::Rng rng(7);
    const auto instance = ds::randomSetCover(20, 8, 3.0, rng);
    const eg::EGraph g = ds::setCoverToEGraph(instance);
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    const auto result = extractor.extract(g, {});
    ASSERT_EQ(result.status, ex::SolveStatus::Optimal);
    EXPECT_NEAR(result.cost, ds::bruteForceSetCover(instance), 1e-9);
}

TEST(Ilp, MaxSatReductionMatchesBruteForce)
{
    smoothe::util::Rng rng(11);
    auto instance = ds::randomMaxSat(8, 20, 3, rng);
    const eg::EGraph g = ds::maxSatToEGraph(instance);
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    const auto result = extractor.extract(g, {});
    ASSERT_EQ(result.status, ex::SolveStatus::Optimal);
    EXPECT_NEAR(result.cost, ds::bruteForceMaxSatCost(instance), 1e-9);
}

TEST(Ilp, TimeLimitYieldsBestEffort)
{
    ds::FamilyParams params = ds::roverParams();
    params.numClasses = 150;
    const eg::EGraph g = ds::generateStructured(params, 99);
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    ex::ExtractOptions options;
    options.timeLimitSeconds = 0.2;
    const auto result = extractor.extract(g, options);
    // Either it solved in time (Optimal) or returned a warm incumbent.
    EXPECT_TRUE(result.status == ex::SolveStatus::Optimal ||
                result.status == ex::SolveStatus::Feasible);
    if (result.ok()) {
        EXPECT_TRUE(ex::validate(g, result.selection).ok());
    }
}

TEST(Ilp, PresetOrderingOnQuality)
{
    // Under a tight budget, Strong should never be worse than Weak.
    ds::FamilyParams params = ds::roverParams();
    params.numClasses = 100;
    const eg::EGraph g = ds::generateStructured(params, 4242);
    ex::ExtractOptions options;
    options.timeLimitSeconds = 0.5;
    il::IlpExtractor strong(il::IlpPreset::Strong);
    il::IlpExtractor weak(il::IlpPreset::Weak);
    const auto strongResult = strong.extract(g, options);
    const auto weakResult = weak.extract(g, options);
    if (strongResult.ok() && weakResult.ok()) {
        EXPECT_LE(strongResult.cost, weakResult.cost + 1e-9);
    }
}

TEST(Ilp, RootRelaxationIsLowerBound)
{
    const eg::EGraph g = ds::paperExampleEGraph();
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    const double bound = extractor.rootRelaxation(g);
    ASSERT_FALSE(std::isnan(bound));
    EXPECT_LE(bound, 19.0 + 1e-6);
}

TEST(Ilp, RecordsAnytimeTrace)
{
    ds::FamilyParams params = ds::flexcParams();
    params.numClasses = 60;
    const eg::EGraph g = ds::generateStructured(params, 31);
    il::IlpExtractor extractor(il::IlpPreset::Strong);
    ex::ExtractOptions options;
    options.recordTrace = true;
    options.timeLimitSeconds = 2.0;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result.trace.empty());
    for (std::size_t i = 1; i < result.trace.size(); ++i)
        EXPECT_LE(result.trace[i].cost, result.trace[i - 1].cost + 1e-9);
}
