/**
 * @file
 * Tests for solutions/validation/costs, the bottom-up heuristics, random
 * sampling, and the genetic extractor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "datasets/generators.hpp"
#include "extraction/bottom_up.hpp"
#include "extraction/genetic.hpp"
#include "extraction/greedy_dag.hpp"
#include "extraction/random_sample.hpp"
#include "extraction/solution.hpp"
#include "extraction/validate.hpp"

namespace eg = smoothe::eg;
namespace ex = smoothe::extract;
namespace ds = smoothe::datasets;

namespace {

/** The paper's Figure 2 e-graph (optimal 19, heuristic 27). */
eg::EGraph
paperGraph()
{
    return ds::paperExampleEGraph();
}

/** Full certification: structure, status, and the reported-cost check. */
void
expectCertified(const eg::EGraph& g, const ex::ExtractionResult& result)
{
    const auto verdict = ex::validateResult(g, result);
    EXPECT_TRUE(verdict.ok()) << verdict.message;
}

} // namespace

TEST(Validate, AcceptsPaperOptimal)
{
    const eg::EGraph g = paperGraph();
    // Build the optimal selection by op name.
    ex::Selection sel = ex::Selection::empty(g);
    auto pick = [&](eg::ClassId cls, const std::string& op) {
        for (eg::NodeId nid : g.nodesInClass(cls)) {
            if (g.node(nid).op == op) {
                sel.choice[cls] = nid;
                return;
            }
        }
        FAIL() << "no node " << op;
    };
    // Classes (in creation order): alpha, cos, sec, tan, tan2, one, sec2,
    // root.
    pick(0, "alpha");
    pick(3, "tan");
    pick(4, "square");
    pick(5, "one");
    pick(6, "add");
    pick(7, "add");
    const auto result = ex::validate(g, sel);
    EXPECT_TRUE(result.ok()) << result.message;
    EXPECT_DOUBLE_EQ(ex::dagCost(g, sel), 19.0);
    // Tree cost double-counts the shared tan subtree.
    EXPECT_DOUBLE_EQ(ex::treeCost(g, sel), 29.0);
}

TEST(Validate, RejectsMissingRoot)
{
    const eg::EGraph g = paperGraph();
    ex::Selection sel = ex::Selection::empty(g);
    const auto result = ex::validate(g, sel);
    EXPECT_EQ(result.violation, ex::Violation::RootUnchosen);
}

TEST(Validate, RejectsMissingChild)
{
    const eg::EGraph g = paperGraph();
    ex::Selection sel = ex::Selection::empty(g);
    sel.choice[g.root()] = g.nodesInClass(g.root()).front();
    const auto result = ex::validate(g, sel);
    EXPECT_EQ(result.violation, ex::Violation::MissingChild);
}

TEST(Validate, RejectsWrongClassMembership)
{
    const eg::EGraph g = paperGraph();
    ex::Selection sel = ex::Selection::empty(g);
    sel.choice[0] = g.nodesInClass(1).front(); // node from another class
    const auto result = ex::validate(g, sel);
    EXPECT_EQ(result.violation, ex::Violation::DanglingNode);
}

TEST(Validate, RejectsUnreachableChoice)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto unused = g.addClass();
    g.addNode(root, "x", {}, 1.0);
    g.addNode(unused, "y", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::Selection sel = ex::Selection::empty(g);
    sel.choice[root] = 0;
    sel.choice[unused] = 1;
    EXPECT_EQ(ex::validate(g, sel).violation,
              ex::Violation::UnreachableChoice);
    EXPECT_TRUE(ex::validate(g, sel, /*allow_unreachable=*/true).ok());
}

TEST(Validate, RejectsCycle)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    const auto fa = g.addNode(a, "f", {b}, 1.0);
    g.addNode(a, "leafA", {}, 1.0);
    const auto gb = g.addNode(b, "g", {a}, 1.0);
    g.addNode(b, "leafB", {}, 1.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    ex::Selection sel = ex::Selection::empty(g);
    sel.choice[root] = 0;
    sel.choice[a] = fa;
    sel.choice[b] = gb;
    EXPECT_EQ(ex::validate(g, sel).violation, ex::Violation::Cyclic);
    EXPECT_TRUE(std::isinf(ex::treeCost(g, sel)));
}

TEST(Costs, DagCostCountsSharedOnce)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    const auto shared = g.addClass();
    g.addNode(root, "+", {a, b}, 1.0);
    g.addNode(a, "f", {shared}, 2.0);
    g.addNode(b, "g", {shared}, 3.0);
    g.addNode(shared, "x", {}, 10.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::Selection sel = ex::Selection::empty(g);
    for (eg::ClassId cls = 0; cls < 4; ++cls)
        sel.choice[cls] = g.nodesInClass(cls).front();
    EXPECT_DOUBLE_EQ(ex::dagCost(g, sel), 16.0);  // shared counted once
    EXPECT_DOUBLE_EQ(ex::treeCost(g, sel), 26.0); // counted twice
}

TEST(Costs, NeededClasses)
{
    const eg::EGraph g = paperGraph();
    smoothe::util::Rng rng(1);
    const auto sel = ex::sampleRandomSelection(g, rng);
    const auto needed = ex::neededClasses(g, sel);
    ASSERT_TRUE(needed.has_value());
    for (eg::ClassId cls : *needed)
        EXPECT_TRUE(sel.chosen(cls));
}

TEST(BottomUp, FindsHeuristicSolutionOnPaperGraph)
{
    const eg::EGraph g = paperGraph();
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    // The heuristic misses the shared tan reuse: cost 27 (Figure 2b).
    EXPECT_DOUBLE_EQ(result.cost, 27.0);
    expectCertified(g, result);
}

TEST(BottomUpPlus, ImprovesViaDagAwareness)
{
    const eg::EGraph g = paperGraph();
    ex::FasterBottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.cost, 27.0);
    expectCertified(g, result);
}

TEST(BottomUp, HandlesCyclicGraph)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "rec", {a}, 0.0);
    g.addNode(a, "base", {}, 5.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 6.0); // must use base, not the cycle
    expectCertified(g, result);
}

TEST(BottomUp, ReportsInfeasible)
{
    eg::EGraph g;
    const auto root = g.addClass();
    g.addNode(root, "self", {root}, 1.0); // only a self-cycle
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    EXPECT_EQ(result.status, ex::SolveStatus::Infeasible);
    expectCertified(g, result); // infeasible must not smuggle a solution
}

TEST(RandomSample, AlwaysValid)
{
    const auto params = ds::flexcParams();
    ds::FamilyParams small = params;
    small.numClasses = 120;
    const eg::EGraph g = ds::generateStructured(small, 77);
    smoothe::util::Rng rng(5);
    for (int i = 0; i < 25; ++i) {
        const auto sel = ex::sampleRandomSelection(g, rng);
        ASSERT_TRUE(sel.chosen(g.root()));
        const auto check = ex::validate(g, sel);
        EXPECT_TRUE(check.ok()) << check.message;
    }
}

TEST(RandomSample, ProducesDiverseSolutions)
{
    const eg::EGraph g = paperGraph();
    smoothe::util::Rng rng(9);
    const auto samples = ex::sampleRandomSelections(g, 40, rng);
    std::set<double> costs;
    for (const auto& sel : samples)
        costs.insert(ex::dagCost(g, sel));
    EXPECT_GE(costs.size(), 2u);
}

TEST(Genetic, SolvesPaperGraphOptimally)
{
    const eg::EGraph g = paperGraph();
    ex::GeneticConfig config;
    config.populationSize = 32;
    config.generations = 40;
    ex::GeneticExtractor extractor(config);
    ex::ExtractOptions options;
    options.seed = 3;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 19.0);
    expectCertified(g, result);
}

TEST(Genetic, SupportsCustomCost)
{
    const eg::EGraph g = paperGraph();
    // A cost that rewards selecting many nodes (contrived non-linear
    // objective): minimize -(#selected classes).
    ex::GeneticExtractor extractor;
    ex::ExtractOptions options;
    options.seed = 4;
    const auto result = extractor.extractWithCost(
        g,
        [](const eg::EGraph& graph, const ex::Selection& sel) {
            double chosen = 0.0;
            for (eg::ClassId cls = 0; cls < graph.numClasses(); ++cls)
                chosen += sel.chosen(cls) ? 1.0 : 0.0;
            return -chosen;
        },
        options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.cost, -6.0); // the deep solution uses >= 6 classes
}

TEST(Genetic, RecordsTrace)
{
    const eg::EGraph g = paperGraph();
    ex::GeneticExtractor extractor;
    ex::ExtractOptions options;
    options.recordTrace = true;
    options.seed = 5;
    const auto result = extractor.extract(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.trace.empty());
    for (std::size_t i = 1; i < result.trace.size(); ++i)
        EXPECT_LE(result.trace[i].cost, result.trace[i - 1].cost);
}

TEST(GreedyDag, PaperGraphShowsPerClassGreedinessLimit)
{
    // greedy-dag shares within each class's committed set, but commits
    // sec2's local best (square: 15) before the root merge can expose the
    // tan reuse — so it also lands on 27 here, like the gym's greedy-dag.
    // Only global methods (ILP, SmoothE) reach 19 on this graph.
    const eg::EGraph g = ds::paperExampleEGraph();
    ex::GreedyDagExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 27.0);
    expectCertified(g, result);
}

TEST(GreedyDag, SharesWithinPropagatedSets)
{
    // Where the reuse is visible inside one candidate's own children,
    // greedy-dag wins over tree costs: node r = +(A, B) where A and B
    // both use an expensive shared leaf; a rival class R2 = cheap-looking
    // pair without sharing.
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    const auto b = g.addClass();
    const auto shared = g.addClass();
    // Tree cost of "+": 1 + (2+10) + (3+10) = 26; DAG cost 16.
    // Tree cost of "alt": 20; DAG cost 20.
    g.addNode(root, "+", {a, b}, 1.0);
    g.addNode(root, "alt", {}, 20.0);
    g.addNode(a, "f", {shared}, 2.0);
    g.addNode(b, "g", {shared}, 3.0);
    g.addNode(shared, "x", {}, 10.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());

    ex::BottomUpExtractor tree;
    const auto treeResult = tree.extract(g, {});
    ASSERT_TRUE(treeResult.ok());
    EXPECT_DOUBLE_EQ(treeResult.cost, 20.0); // tree costs pick "alt"

    ex::GreedyDagExtractor dag;
    const auto dagResult = dag.extract(g, {});
    ASSERT_TRUE(dagResult.ok());
    EXPECT_DOUBLE_EQ(dagResult.cost, 16.0); // cost sets see the sharing
}

TEST(GreedyDag, ValidAcrossFamilies)
{
    for (const char* family : {"flexc", "rover", "tensat"}) {
        ds::FamilyParams params = ds::familyParams(family);
        params.numClasses = 120;
        const eg::EGraph g = ds::generateStructured(params, 2718);
        ex::GreedyDagExtractor greedyDag;
        ex::FasterBottomUpExtractor heuristicPlus;
        const auto dagResult = greedyDag.extract(g, {});
        const auto plusResult = heuristicPlus.extract(g, {});
        ASSERT_TRUE(dagResult.ok()) << family;
        expectCertified(g, dagResult);
        expectCertified(g, plusResult);
        // Different greedy criteria: no strict dominance either way, but
        // both must stay in the same ballpark on these graphs.
        EXPECT_LE(dagResult.cost, plusResult.cost * 1.6 + 1e-9) << family;
    }
}

TEST(GreedyDag, HandlesCycles)
{
    eg::EGraph g;
    const auto root = g.addClass();
    const auto a = g.addClass();
    g.addNode(root, "r", {a}, 1.0);
    g.addNode(a, "rec", {a}, 0.0);
    g.addNode(a, "base", {}, 5.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::GreedyDagExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 6.0);
    expectCertified(g, result);
}

class HeuristicOrderingTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(HeuristicOrderingTest, PlusNeverWorseThanPlain)
{
    // heuristic+ refines the plain fixed point DAG-aware; on every family
    // its DAG cost must be <= the plain heuristic's.
    const ds::FamilyParams params = ds::familyParams(GetParam());
    ds::FamilyParams scaled = params;
    scaled.numClasses = std::min<std::size_t>(params.numClasses, 250);
    smoothe::util::Rng rng(321);
    for (int trial = 0; trial < 3; ++trial) {
        const eg::EGraph g = ds::generateStructured(scaled, rng.next());
        ex::BottomUpExtractor plain;
        ex::FasterBottomUpExtractor plus;
        const auto plainResult = plain.extract(g, {});
        const auto plusResult = plus.extract(g, {});
        ASSERT_TRUE(plainResult.ok());
        ASSERT_TRUE(plusResult.ok());
        EXPECT_LE(plusResult.cost, plainResult.cost + 1e-9)
            << GetParam() << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HeuristicOrderingTest,
                         ::testing::Values("diospyros", "flexc", "impress",
                                           "rover", "tensat"));

TEST(BottomUp, HandlesRepeatedChildClass)
{
    // x * x: the same child class twice must be handled once in the
    // worklist and twice in tree cost.
    eg::EGraph g;
    const auto root = g.addClass();
    const auto leaf = g.addClass();
    g.addNode(root, "sq", {leaf, leaf}, 1.0);
    g.addNode(leaf, "x", {}, 3.0);
    g.setRoot(root);
    ASSERT_FALSE(g.finalize().has_value());
    ex::BottomUpExtractor extractor;
    const auto result = extractor.extract(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.cost, 4.0);                      // DAG
    EXPECT_DOUBLE_EQ(ex::treeCost(g, result.selection), 7.0); // tree
    expectCertified(g, result);
}

TEST(SolveStatus, Names)
{
    EXPECT_STREQ(ex::toString(ex::SolveStatus::Optimal), "optimal");
    EXPECT_STREQ(ex::toString(ex::SolveStatus::Feasible), "feasible");
    EXPECT_STREQ(ex::toString(ex::SolveStatus::Infeasible), "infeasible");
    EXPECT_STREQ(ex::toString(ex::SolveStatus::Failed), "failed");
}
