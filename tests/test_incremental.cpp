/**
 * @file
 * The incremental-extraction protocol end to end: MutEGraph delta logs
 * replay onto pre-epoch snapshots, exportIncremental stays bit-identical
 * to exportGraph while emitting consistent GraphDeltas, the heuristic
 * incremental extractor matches its from-scratch fixed point, SmoothE's
 * warm-started path is thread-count deterministic and quality-equivalent
 * to scratch, the identity-delta fast path re-emits the cached result,
 * and stale IncrementalStates are rejected.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/contracts.hpp"
#include "datasets/eqsat_grown.hpp"
#include "egraph/serialize.hpp"
#include "eqsat/mut_egraph.hpp"
#include "eqsat/rules.hpp"
#include "extraction/bottom_up.hpp"
#include "obs/metrics.hpp"
#include "smoothe/smoothe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace smoothe;

double
opCost(const std::string& op, std::size_t)
{
    if (op.rfind("v", 0) == 0 || op == "zero" || op == "one" ||
        op == "two" || op == "three" || op == "five")
        return 0.0;
    if (op == "*" || op == "square")
        return 16.0;
    if (op == "+" || op == "-")
        return 4.0;
    if (op == "<<" || op == "neg")
        return 1.0;
    if (op == "min" || op == "max")
        return 2.0;
    return 8.0;
}

/** One saturation epoch under a growing node budget. */
void
runEpoch(eqsat::MutEGraph& mut, const std::vector<eqsat::Rewrite>& rules,
         std::size_t max_nodes)
{
    eqsat::RunLimits limits;
    limits.maxIterations = 2;
    limits.maxNodes = max_nodes;
    limits.maxMatchesPerRule = 300;
    mut.run(rules, limits);
}

/** A small caviar-flavored mutable e-graph with the delta log open. */
eqsat::MutEGraph
seedGraph(std::uint64_t seed, eqsat::Id* root_out)
{
    util::Rng rng(seed);
    const eqsat::TermPtr term = eqsat::app(
        "+", {datasets::randomTerm(datasets::TermFlavor::Caviar, 4, 3, rng),
              datasets::randomTerm(datasets::TermFlavor::Caviar, 3, 3, rng)});
    eqsat::MutEGraph mut;
    *root_out = mut.addTerm(*term);
    mut.enableDeltaLog(true);
    return mut;
}

TEST(IncrementalDelta, ReplayMatchesRebuildAcrossEpochs)
{
    eqsat::Id root = 0;
    eqsat::MutEGraph mut = seedGraph(7, &root);
    const auto& phases = eqsat::caviarRulePhases();
    for (std::size_t epoch = 0; epoch < 4; ++epoch) {
        eqsat::MutEGraph snapshot = mut;
        runEpoch(mut, phases[epoch % phases.size()], 80 * (epoch + 1));
        ASSERT_EQ(mut.checkInvariants(), std::nullopt);

        const eqsat::Delta delta = mut.drainDelta();
        snapshot.applyDelta(delta);
        EXPECT_EQ(snapshot.structurallyEquals(mut), std::nullopt)
            << "epoch " << epoch;
        EXPECT_EQ(mut.structurallyEquals(snapshot), std::nullopt);
    }
}

TEST(IncrementalDelta, ExportIncrementalMatchesExportGraph)
{
    eqsat::Id root = 0;
    eqsat::MutEGraph mut = seedGraph(11, &root);
    const auto& phases = eqsat::caviarRulePhases();
    eqsat::ExportState state;
    std::size_t prevNodes = 0;
    std::size_t prevClasses = 0;
    for (std::size_t epoch = 0; epoch < 3; ++epoch) {
        runEpoch(mut, phases[epoch % phases.size()], 60 * (epoch + 1));
        const auto exported =
            mut.exportIncremental(mut.find(root), opCost, state);
        const eg::EGraph full = mut.exportGraph(mut.find(root), opCost);
        EXPECT_EQ(eg::toJson(exported.graph), eg::toJson(full))
            << "epoch " << epoch;
        EXPECT_EQ(exported.delta.checkConsistent(exported.graph),
                  std::nullopt);
        EXPECT_EQ(exported.delta.prevNumNodes, prevNodes);
        EXPECT_EQ(exported.delta.prevNumClasses, prevClasses);
        prevNodes = exported.graph.numNodes();
        prevClasses = exported.graph.numClasses();
    }
}

TEST(IncrementalExtract, HeuristicMatchesScratchEveryEpoch)
{
    eqsat::Id root = 0;
    eqsat::MutEGraph mut = seedGraph(13, &root);
    const auto& phases = eqsat::caviarRulePhases();
    eqsat::ExportState exportState;
    extract::IncrementalState state;
    extract::BottomUpExtractor incremental;
    extract::BottomUpExtractor scratch;
    extract::ExtractOptions options;
    for (std::size_t epoch = 0; epoch < 4; ++epoch) {
        runEpoch(mut, phases[epoch % phases.size()], 70 * (epoch + 1));
        const auto exported =
            mut.exportIncremental(mut.find(root), opCost, exportState);
        const auto inc = incremental.extractIncremental(
            exported.graph, exported.delta, state, options);
        const auto ref = scratch.extract(exported.graph, options);
        ASSERT_TRUE(inc.ok());
        ASSERT_TRUE(ref.ok());
        // The incremental relaxation restarts from dirty classes only
        // but must land on the same fixed point as a full pass.
        EXPECT_DOUBLE_EQ(inc.cost, ref.cost) << "epoch " << epoch;
    }
    EXPECT_EQ(state.epoch(), 4u);
}

/** Runs the full warm-started SmoothE epoch sequence at a given thread
 *  count and returns the per-epoch costs. */
std::vector<double>
smootheEpochCosts(std::size_t threads)
{
    eqsat::Id root = 0;
    eqsat::MutEGraph mut = seedGraph(17, &root);
    const auto& phases = eqsat::caviarRulePhases();
    core::SmoothEConfig config;
    config.numSeeds = 4;
    config.maxIterations = 60;
    config.patience = 10;
    config.numThreads = threads;
    core::SmoothEExtractor extractor(config);
    eqsat::ExportState exportState;
    extract::IncrementalState state;
    extract::ExtractOptions options;
    options.seed = 3;
    std::vector<double> costs;
    for (std::size_t epoch = 0; epoch < 3; ++epoch) {
        runEpoch(mut, phases[epoch % phases.size()], 60 * (epoch + 1));
        const auto exported =
            mut.exportIncremental(mut.find(root), opCost, exportState);
        const auto result = extractor.extractIncremental(
            exported.graph, exported.delta, state, options);
        EXPECT_TRUE(result.ok());
        costs.push_back(result.cost);
    }
    return costs;
}

TEST(IncrementalExtract, SmoothEWarmStartIsThreadCountDeterministic)
{
    const std::vector<double> one = smootheEpochCosts(1);
    const std::vector<double> four = smootheEpochCosts(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_EQ(one[i], four[i]) << "epoch " << i; // bitwise, not approx
}

TEST(IncrementalExtract, SmoothEQualityTracksScratchOnGrownGraphs)
{
    eqsat::Id root = 0;
    eqsat::MutEGraph mut = seedGraph(19, &root);
    const auto& phases = eqsat::caviarRulePhases();
    core::SmoothEConfig config;
    config.numSeeds = 4;
    config.maxIterations = 120;
    config.patience = 20;
    core::SmoothEExtractor incremental(config);
    core::SmoothEExtractor scratch(config);
    eqsat::ExportState exportState;
    extract::IncrementalState state;
    extract::ExtractOptions options;
    options.seed = 5;
    double incBest = 0.0;
    double scratchBest = 0.0;
    for (std::size_t epoch = 0; epoch < 4; ++epoch) {
        runEpoch(mut, phases[epoch % phases.size()], 60 * (epoch + 1));
        const auto exported =
            mut.exportIncremental(mut.find(root), opCost, exportState);
        const auto inc = incremental.extractIncremental(
            exported.graph, exported.delta, state, options);
        const auto ref = scratch.extract(exported.graph, options);
        ASSERT_TRUE(inc.ok());
        ASSERT_TRUE(ref.ok());
        if (epoch == 0) {
            incBest = inc.cost;
            scratchBest = ref.cost;
        } else {
            incBest = std::min(incBest, inc.cost);
            scratchBest = std::min(scratchBest, ref.cost);
        }
    }
    // Anytime incumbents: the warm-started track must keep pace with
    // from-scratch re-extraction (1% tolerance, matching the CI gate).
    EXPECT_LE(incBest, scratchBest * 1.01);
}

TEST(IncrementalExtract, IdentityDeltaReemitsCachedResult)
{
    util::Rng rng(23);
    const eg::EGraph graph =
        datasets::growEGraph(datasets::TermFlavor::Caviar, 4, 150, rng);
    const eg::GraphDelta identity = eg::GraphDelta::identity(graph);
    core::SmoothEConfig config;
    config.numSeeds = 4;
    config.maxIterations = 60;
    config.patience = 10;
    core::SmoothEExtractor extractor(config);
    extract::IncrementalState state;
    extract::ExtractOptions options;
    options.seed = 9;
    const auto cold =
        extractor.extractIncremental(graph, identity, state, options);
    ASSERT_TRUE(cold.ok());
    const auto skipsBefore =
        obs::counter("smoothe.identity_skips").get();
    const auto warm =
        extractor.extractIncremental(graph, identity, state, options);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.cost, cold.cost); // cached result, bitwise
    EXPECT_EQ(warm.selection.choice, cold.selection.choice);
    EXPECT_EQ(obs::counter("smoothe.identity_skips").get(),
              skipsBefore + 1);
}

TEST(IncrementalExtract, StaleStateIsRejected)
{
    check::ScopedFailureMode mode(check::FailureMode::Throw);
    util::Rng rng(29);
    const eg::EGraph small =
        datasets::growEGraph(datasets::TermFlavor::Caviar, 3, 60, rng);
    const eg::EGraph big =
        datasets::growEGraph(datasets::TermFlavor::Arithmetic, 4, 150, rng);
    ASSERT_NE(small.numNodes(), big.numNodes());

    extract::BottomUpExtractor heuristic;
    extract::ExtractOptions options;
    extract::IncrementalState state;
    heuristic.extractIncremental(small, eg::GraphDelta::identity(small),
                                 state, options);

    // Same state pointed at a different e-graph lineage: the delta's
    // prev counts no longer describe what the state last saw. The
    // misuse is deliberate — it is what this test proves gets caught.
    // smoothe-lint: allow(stale-delta-state)
    EXPECT_THROW(heuristic.extractIncremental(
                     big, eg::GraphDelta::identity(big), state, options),
                 check::ContractViolation);

    // A different extractor instance must not adopt the state either.
    extract::BottomUpExtractor other;
    // smoothe-lint: allow(stale-delta-state)
    EXPECT_THROW(other.extractIncremental(
                     small, eg::GraphDelta::identity(small), state,
                     options),
                 check::ContractViolation)
        << "owner check should fire for a foreign state";

    // reset() forgives both.
    state.reset();
    const auto after = other.extractIncremental(
        big, eg::GraphDelta::identity(big), state, options);
    EXPECT_TRUE(after.ok());
}

} // namespace
